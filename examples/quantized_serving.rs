//! Int8 quantized serving end to end: deploy the same model once in f32
//! and once quantized, stream identical images through both, and report
//! what quantization buys — int8 GEMM kernels on every device, ~4× less
//! resident weight memory, and q8 activation frames on the wire — while
//! the logits stay within the documented 5%-of-range tolerance of the
//! single-device f32 reference.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quantized_serving
//! ```

use cnn_model::exec::{deterministic_input, run_full, ModelWeights, PackedModelWeights, QuantSpec};
use cnn_model::{LayerOp, Model, PartitionScheme, VolumeSplit};
use edge_runtime::session::Runtime;
use edge_runtime::RuntimeOptions;
use edgesim::ExecutionPlan;
use tensor::ops::qkernel_arch;
use tensor::Shape;

const DEVICES: usize = 3;
const IMAGES: u64 = 4;
/// Outputs must stay within this fraction of the reference output range.
const TOLERANCE: f32 = 0.05;

/// A deep-channel model where every conv and the FC head clear the int8
/// routing thresholds (`c_in·f² ≥ 72`, FC inputs ≥ 256).
fn quantizable_model() -> Model {
    Model::new(
        "quantized-serving",
        Shape::new(16, 32, 32),
        &[
            LayerOp::conv(32, 3, 1, 1),
            LayerOp::conv(32, 3, 1, 1),
            LayerOp::pool(2, 2),
            LayerOp::conv(64, 3, 1, 1),
            LayerOp::fc(10),
        ],
    )
    .expect("valid model")
}

fn equal_split_plan(model: &Model, devices: usize) -> ExecutionPlan {
    let scheme = PartitionScheme::single_volume(model);
    let split = VolumeSplit::equal(devices, model.prefix_output().h);
    ExecutionPlan::from_splits(model, &scheme, &[split], devices).expect("valid plan")
}

fn main() {
    let model = quantizable_model();
    let plan = equal_split_plan(&model, DEVICES);
    let weights = ModelWeights::deterministic(&model, 77);
    println!(
        "model: {} ({} layers, {:.1} MFLOPs), {DEVICES} providers, int8 kernel arch: {}",
        model.name(),
        model.len(),
        model.total_ops() / 1e6,
        qkernel_arch().label()
    );

    // 1. What the quantized pack saves in resident weight memory.  The
    //    calibration probes the model with deterministic inputs to fix
    //    static per-layer activation scales, so every device quantizes
    //    halo rows identically.
    let spec = QuantSpec::calibrate(&model, &weights).expect("calibration");
    let f32_pack = PackedModelWeights::pack(&model, &weights).expect("f32 pack");
    let q8_pack = PackedModelWeights::pack_with(&model, &weights, Some(&spec)).expect("int8 pack");
    println!(
        "weights: {} of {} layers quantized, resident {:.1} KiB f32 -> {:.1} KiB int8 ({:.2}x)",
        spec.quantized_layer_count(),
        model.len(),
        f32_pack.resident_bytes() as f64 / 1024.0,
        q8_pack.resident_bytes() as f64 / 1024.0,
        f32_pack.resident_bytes() as f64 / q8_pack.resident_bytes() as f64
    );

    // 2. Deploy both precisions over in-process channel fabrics.
    let f32_session =
        Runtime::deploy_in_process(&model, &plan, &weights, &RuntimeOptions::default())
            .expect("f32 deploy");
    let q8_options = RuntimeOptions::default().with_quantized(true);
    let q8_session =
        Runtime::deploy_in_process(&model, &plan, &weights, &q8_options).expect("quantized deploy");
    assert!(q8_session.quantized(), "session negotiated q8 transfer");

    // 3. Stream the same images through both and check the quantized
    //    logits against the single-device f32 reference.
    let mut worst = 0.0f32;
    for seed in 0..IMAGES {
        let input = deterministic_input(&model, seed);
        let reference = run_full(&model, &weights, &input)
            .expect("reference run")
            .pop()
            .expect("model output");

        let t = f32_session.submit(&input).expect("f32 submit");
        let f32_out = f32_session.wait(t).expect("f32 wait");
        let t = q8_session.submit(&input).expect("q8 submit");
        let q8_out = q8_session.wait(t).expect("q8 wait");

        // The distributed f32 path reproduces the reference bit-exactly;
        // the quantized path trades precision for speed and bytes, bounded
        // by TOLERANCE of the reference output range.
        assert_eq!(f32_out.data(), reference.data(), "f32 path is bit-exact");
        let lo = reference
            .data()
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let hi = reference
            .data()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let bound = TOLERANCE * (hi - lo).max(1e-6);
        let err = q8_out
            .data()
            .iter()
            .zip(reference.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            err <= bound,
            "image {seed}: quantized error {err} above bound {bound}"
        );
        worst = worst.max(err / (hi - lo).max(1e-6));
    }
    println!(
        "accuracy: {IMAGES} images, worst quantized deviation {:.2}% of output range (bound {:.0}%)",
        worst * 100.0,
        TOLERANCE * 100.0
    );

    // 4. Drain both sessions and compare the bytes each one moved.
    let f32_report = f32_session.shutdown().expect("f32 shutdown");
    let q8_report = q8_session.shutdown().expect("q8 shutdown");
    let f32_bytes: u64 = f32_report.devices.iter().map(|d| d.bytes_out).sum();
    let q8_bytes: u64 = q8_report.devices.iter().map(|d| d.bytes_out).sum();
    println!(
        "wire: f32 moved {:.1} KiB, int8 moved {:.1} KiB ({:.2}x less)",
        f32_bytes as f64 / 1024.0,
        q8_bytes as f64 / 1024.0,
        f32_bytes as f64 / q8_bytes.max(1) as f64
    );
    println!(
        "\nquantized serving held the {:.0}% tolerance end to end",
        TOLERANCE * 100.0
    );
}
