//! Live adaptation: degrade a shaped link mid-run and watch throughput
//! recover after an **in-place** plan swap — no redeploy, no weight reload.
//!
//! The loop is the paper's §V-F observe → re-plan → apply cycle, closed
//! against the real runtime:
//!
//! 1. plan with LC-PSS/OSDS and deploy a session over a trace-shaped
//!    transport (`DistrEdge::serve_adaptive`),
//! 2. serve a wave, then let device 1's link collapse (its bandwidth trace
//!    steps from 200 Mbps down to 0.5 Mbps),
//! 3. feed the monitored bandwidths to the [`AdaptiveSession`]: the drift
//!    in measured latency triggers a re-plan, and `Session::apply_plan`
//!    hot-swaps the strategy while the cluster stays resident,
//! 4. serve another wave and compare IPS before / during / after.
//!
//! Run with `cargo run --release --example live_adaptation`.

use distredge_suite::cnn_model::exec::{self, deterministic_input, ModelWeights};
use distredge_suite::cnn_model::{LayerOp, Model};
use distredge_suite::device_profile::{DeviceSpec, DeviceType};
use distredge_suite::distredge::{DeployOptions, DistrEdge, DistrEdgeConfig, OnlineConfig};
use distredge_suite::edgesim::Cluster;
use distredge_suite::netsim::{BandwidthTrace, Link, LinkConfig};
use distredge_suite::tensor::Shape;
use std::time::{Duration, Instant};

/// Milliseconds of healthy bandwidth before device 1's link collapses.
const DEGRADE_AT_MS: usize = 1_500;

fn main() {
    let model = Model::new(
        "live-adapt",
        Shape::new(3, 32, 32),
        &[
            LayerOp::conv(8, 3, 1, 1),
            LayerOp::conv(8, 3, 1, 1),
            LayerOp::pool(2, 2),
            LayerOp::conv(16, 3, 1, 1),
            LayerOp::fc(10),
        ],
    )
    .unwrap();

    // Two devices behind shaped links.  Device 1's trace steps down hard
    // mid-run: 200 Mbps for the first 1.5 s, 0.5 Mbps for the next minute.
    let mut cluster = Cluster::uniform(
        vec![
            DeviceSpec::new("edge-0", DeviceType::Xavier),
            DeviceSpec::new("edge-1", DeviceType::Xavier),
        ],
        LinkConfig::constant(200.0),
    );
    let interval_ms = 100.0;
    let healthy = DEGRADE_AT_MS / interval_ms as usize;
    let mut samples = vec![200.0; healthy];
    samples.extend(std::iter::repeat_n(0.5, 600));
    cluster.set_link(
        1,
        Link::new(BandwidthTrace::from_samples(samples, interval_ms), 0.1),
    );

    // Plan for the healthy conditions and deploy the adaptive session over
    // the trace-shaped transport (its clock starts at deploy).
    let mut cfg = DistrEdgeConfig::fast(2).with_episodes(30).with_seed(7);
    cfg.osds.ddpg.actor_hidden = [24, 16, 12];
    cfg.osds.ddpg.critic_hidden = [24, 16, 12, 12];
    println!("planning on the healthy cluster ...");
    let planning = DistrEdge::plan(&model, &cluster, &cfg).unwrap();
    let mut online = OnlineConfig::standard(2);
    online.distredge = cfg;
    online.finetune_episodes = 20;
    online.significant_change = 0.5;
    let opts = DeployOptions::default().with_shaped(true);
    let mut adaptive =
        DistrEdge::serve_adaptive(&model, &cluster, &planning, &online, &opts).unwrap();
    let weights = ModelWeights::deterministic(&model, opts.weight_seed);
    let deployed_at = Instant::now();

    let serve_wave = |adaptive: &distredge_suite::distredge::AdaptiveSession,
                      label: &str,
                      base: u64,
                      images: u64|
     -> f64 {
        let session = adaptive.session();
        let t0 = Instant::now();
        for i in 0..images {
            let img = deterministic_input(&model, base + i);
            let out = session.wait(session.submit(&img).unwrap()).unwrap();
            let reference = exec::run_full(&model, &weights, &img).unwrap();
            assert_eq!(
                &out,
                reference.last().unwrap(),
                "outputs must stay bit-exact"
            );
        }
        let ips = images as f64 / t0.elapsed().as_secs_f64();
        println!(
            "  [{label}] {images} images, {ips:7.1} IPS (epoch {})",
            session.epoch()
        );
        ips
    };

    println!("\nphase 1 — healthy links:");
    let healthy_ips = serve_wave(&adaptive, "healthy ", 100, 10);
    let tick = adaptive.adapt().unwrap(); // Calibrates the drift baseline.
    assert!(!tick.swapped());

    // Let device 1's link collapse, then serve through the degradation.
    let elapsed = deployed_at.elapsed();
    let degrade_at = Duration::from_millis(DEGRADE_AT_MS as u64 + 100);
    if elapsed < degrade_at {
        std::thread::sleep(degrade_at - elapsed);
    }
    println!("\nphase 2 — device 1's link collapsed to 0.5 Mbps:");
    let degraded_ips = serve_wave(&adaptive, "degraded", 200, 6);

    // The controller's monitor sees the new conditions; the measured-drift
    // decision re-plans and applies the strategy in place.
    adaptive.update_link_estimates(Cluster::new(
        cluster.devices().to_vec(),
        &[LinkConfig::constant(200.0), LinkConfig::constant(0.5)],
    ));
    let tick = adaptive.adapt().unwrap();
    match &tick.swap {
        Some(swap) => println!(
            "\nre-planned: drift {:.0}% -> hot swap to epoch {} \
             (drain gap {:.1} ms, {} delta bytes shipped, {} reused)",
            tick.decision.drift * 100.0,
            swap.epoch,
            swap.drain_ms,
            swap.total_delta_bytes(),
            swap.total_reused_bytes(),
        ),
        None => println!(
            "\nno swap (drift {:.0}% below threshold)",
            tick.decision.drift * 100.0
        ),
    }

    println!("\nphase 3 — same degraded links, swapped strategy:");
    let recovered_ips = serve_wave(&adaptive, "adapted ", 300, 10);

    println!(
        "\nIPS: healthy {healthy_ips:.1}  ->  degraded {degraded_ips:.1}  ->  adapted {recovered_ips:.1}"
    );
    if tick.swapped() && recovered_ips > degraded_ips {
        println!(
            "the in-place swap recovered {:.0}% of the lost throughput",
            100.0 * (recovered_ips - degraded_ips) / (healthy_ips - degraded_ips).max(1e-9)
        );
    }

    let report = adaptive.shutdown().unwrap();
    println!(
        "served {} images total across {} epoch(s), zero loss",
        report.images,
        report.epoch + 1
    );
}
