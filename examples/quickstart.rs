//! Quickstart: plan a DistrEdge distribution strategy for VGG-16 on a small
//! heterogeneous edge cluster and compare it against single-device offload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use distredge::{
    evaluate::{evaluate_method, evaluate_strategy},
    DistrEdge, DistrEdgeConfig, Method, Scenario,
};
use edgesim::SimOptions;

fn main() {
    // 1. The CNN to serve: VGG-16 from the model zoo (layer configurations
    //    only — weights are irrelevant to the distribution decision).
    let model = cnn_model::zoo::vgg16();
    println!(
        "model: {} ({} layers, {:.1} GFLOPs, {:.1} M parameters)",
        model.name(),
        model.len(),
        model.total_ops() / 1e9,
        model.parameter_count() as f64 / 1e6
    );

    // 2. The edge cluster: Table I's Group DB (2×Xavier + 2×Nano) behind
    //    200 Mbps shaped WiFi.
    let scenario = Scenario::group_db(200.0);
    let cluster = scenario.build(7);
    println!(
        "cluster: {} providers: {}",
        cluster.len(),
        cluster
            .devices()
            .iter()
            .map(|d| d.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 3. Plan with DistrEdge (LC-PSS + OSDS).  The `fast` configuration keeps
    //    this example to a few seconds; `DistrEdgeConfig::paper(4)` runs the
    //    full 4000-episode training of the paper.
    let config = DistrEdgeConfig::fast(cluster.len())
        .with_episodes(120)
        .with_seed(7);
    let outcome = DistrEdge::plan(&model, &cluster, &config).expect("planning failed");
    println!(
        "\nDistrEdge strategy: {} layer-volumes, partition boundaries {:?}",
        outcome.strategy.num_volumes(),
        outcome.strategy.scheme.boundaries()
    );
    println!(
        "per-device row shares: {:?}",
        outcome.strategy.row_shares(&model)
    );

    // 4. Measure it with the ground-truth simulator and compare to offload.
    let options = SimOptions {
        num_images: 50,
        start_ms: 0.0,
    };
    let distredge_report =
        evaluate_strategy(&model, &cluster, &outcome.strategy, options).expect("simulation failed");
    let offload = evaluate_method(Method::Offload, &model, &cluster, &config, options)
        .expect("offload failed");

    println!("\n{:<12}{:>10}{:>18}", "method", "IPS", "mean latency (ms)");
    println!(
        "{:<12}{:>10.2}{:>18.1}",
        "DistrEdge", distredge_report.ips, distredge_report.mean_latency_ms
    );
    println!(
        "{:<12}{:>10.2}{:>18.1}",
        "Offload", offload.ips, offload.mean_latency_ms
    );
    println!(
        "\nDistrEdge speedup over offloading to the best single device: {:.2}x",
        distredge_report.ips / offload.ips
    );
}
