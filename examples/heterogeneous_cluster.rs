//! Compare all eight distribution methods on the most heterogeneous device
//! group of the paper (Table I, Group DC: Xavier + TX2 + Nano + Pi3) — the
//! case where equal-split and linear-ratio baselines suffer most.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use distredge::{evaluate::compare_methods, DistrEdgeConfig, Method, Scenario};
use edgesim::SimOptions;

fn main() {
    let model = cnn_model::zoo::vgg16();
    let scenario = Scenario::group_dc(50.0);
    let cluster = scenario.build(11);

    println!("Group DC @ 50 Mbps:");
    for (device, bw) in cluster.devices().iter().zip(&scenario.bandwidths_mbps) {
        println!("  {:<14} {:>6.0} Mbps", device.name, bw);
    }

    let config = DistrEdgeConfig::fast(cluster.len())
        .with_episodes(120)
        .with_seed(3);
    let options = SimOptions {
        num_images: 30,
        start_ms: 0.0,
    };
    let results = compare_methods(&Method::ALL, &model, &cluster, &config, options)
        .expect("method comparison failed");

    println!(
        "\n{:<14}{:>8}{:>14}{:>16}{:>16}{:>10}",
        "method", "IPS", "latency (ms)", "max trans (ms)", "max comp (ms)", "volumes"
    );
    for r in &results {
        println!(
            "{:<14}{:>8.2}{:>14.1}{:>16.1}{:>16.1}{:>10}",
            r.method,
            r.ips,
            r.mean_latency_ms,
            r.max_transmission_ms,
            r.max_compute_ms,
            r.num_volumes
        );
    }
    if let Some(speedup) = distredge::evaluate::distredge_speedup(&results) {
        println!("\nDistrEdge speedup over the best baseline: {speedup:.2}x");
    }
    println!(
        "\nNote how the layer-by-layer methods (CoEdge/MoDNN/MeDNN) pay in transmission\n\
         latency while the equal-split methods (DeepThings/DeeperThings) pay in compute\n\
         imbalance on the slow Pi3 — the two failure modes Fig. 15 of the paper shows."
    );
}
