//! End-to-end trace capture: serve a burst through the gateway over a
//! shaped 3-device cluster, dump the Chrome trace-event JSON, and read the
//! per-image critical path.
//!
//! One link is throttled hard (device 2 sits behind ~8 Mbps), so the trace
//! should show the wire — scatter into or tx out of the slow device — as
//! the dominant stage of every image's critical path, exactly what the
//! Perfetto view makes visible as long gaps on dev2's tracks.
//!
//! Run with `cargo run --release --example trace_capture`; the trace lands
//! in `trace.json` (load it at <https://ui.perfetto.dev>).

use distredge_suite::cnn_model::exec::{self, deterministic_input, ModelWeights};
use distredge_suite::cnn_model::{LayerOp, Model, PartitionScheme, VolumeSplit};
use distredge_suite::device_profile::{DeviceSpec, DeviceType};
use distredge_suite::edge_gateway::{Gateway, GatewayConfig};
use distredge_suite::edge_runtime::{ChannelTransport, Runtime, RuntimeOptions, ShapedTransport};
use distredge_suite::edge_telemetry::Telemetry;
use distredge_suite::edgesim::{Cluster, ExecutionPlan};
use distredge_suite::netsim::LinkConfig;
use distredge_suite::tensor::Shape;
use serde::json::Value;
use std::time::Duration;

const DEVICES: usize = 3;
const IMAGES: u64 = 10;

fn main() {
    let model = Model::new(
        "trace-capture",
        Shape::new(3, 32, 32),
        &[
            LayerOp::conv(8, 3, 1, 1),
            LayerOp::conv(8, 3, 1, 1),
            LayerOp::pool(2, 2),
            LayerOp::conv(16, 3, 1, 1),
            LayerOp::fc(10),
        ],
    )
    .unwrap();

    // Two layer-volumes split 3 ways, so the trace shows per-volume compute
    // spans and the inter-volume halo exchange on the wire.
    let scheme = PartitionScheme::new(&model, vec![0, 2, 4]).unwrap();
    let splits: Vec<VolumeSplit> = scheme
        .volumes()
        .iter()
        .map(|v| VolumeSplit::equal(DEVICES, v.last_output_height(&model)))
        .collect();
    let plan = ExecutionPlan::from_splits(&model, &scheme, &splits, DEVICES).unwrap();

    // Device 2 sits behind a throttled ~8 Mbps link; the other links are
    // healthy.  The wire to and from dev2 becomes the bottleneck the
    // critical-path report should name.
    let mut cluster = Cluster::uniform(
        (0..DEVICES)
            .map(|i| DeviceSpec::new(format!("edge-{i}"), DeviceType::Xavier))
            .collect(),
        LinkConfig::constant(200.0),
    );
    cluster.set_link(2, LinkConfig::constant(8.0).build());

    let telemetry = Telemetry::new();
    let weights = ModelWeights::deterministic(&model, 42);
    let mut transport = ShapedTransport::new(ChannelTransport::new(DEVICES), &cluster);
    let session = Runtime::deploy_traced(
        &model,
        &plan,
        &weights,
        &mut transport,
        &RuntimeOptions::default().with_max_in_flight(4),
        &telemetry,
    )
    .unwrap();
    let gateway = Gateway::over_traced(
        session,
        GatewayConfig::default()
            .with_max_batch(4)
            .with_max_linger(Duration::from_millis(1)),
        &telemetry,
    )
    .unwrap();

    // Serve a burst and verify every output bit-exact against the
    // single-device reference.
    println!("serving {IMAGES} images through the traced gateway ...");
    let client = gateway.client();
    let images: Vec<_> = (0..IMAGES)
        .map(|i| deterministic_input(&model, i))
        .collect();
    let responses: Vec<_> = images.iter().map(|img| client.infer(img)).collect();
    for (img, response) in images.iter().zip(responses) {
        let out = response.wait().expect("no request may be lost");
        let reference = exec::run_full(&model, &weights, img).unwrap();
        assert_eq!(&out, reference.last().unwrap(), "output differs");
    }
    let metrics = gateway.shutdown().unwrap();
    assert_eq!(metrics.completed, IMAGES);

    // --- Export and validate the Chrome trace.
    let report = telemetry.collect();
    let json = report.to_chrome_trace();
    std::fs::write("trace.json", &json).unwrap();
    let parsed: Value = serde_json::from_str(&json).expect("the exported trace must be valid JSON");
    let events = match &parsed {
        Value::Object(o) => match o.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, Value::Array(events))) => events.len(),
            _ => panic!("trace.json has no traceEvents array"),
        },
        _ => panic!("trace.json is not a JSON object"),
    };
    println!(
        "wrote trace.json: {events} trace events across {} tracks ({} spans)",
        report.tracks.len(),
        report.span_count()
    );

    // Every image's lifecycle is covered end to end, on every device.
    for image in 0..IMAGES as u32 {
        let devices = report.devices_seen(image);
        assert_eq!(
            devices.len(),
            DEVICES,
            "image {image} must have spans from all {DEVICES} devices, got {devices:?}"
        );
        let stages = report.stages_seen(image);
        for stage in [
            "gateway-queue",
            "submit",
            "scatter",
            "recv",
            "compute",
            "head",
            "tx",
            "respond",
        ] {
            assert!(
                stages.contains(&stage),
                "image {image} is missing stage {stage}: {stages:?}"
            );
        }
    }

    // --- The critical path names the shaped-link bottleneck.
    let path = report.critical_path(0).expect("image 0 was traced");
    println!("\n{}", path.render());
    assert!(
        path.dominant == "tx" || path.dominant == "scatter",
        "with a ~8 Mbps link the wire must dominate, got {}",
        path.dominant
    );

    println!("\nregistry snapshot:");
    for metric in telemetry.metrics() {
        println!("  {:<32} {:>12.0}", metric.name, metric.value);
    }
    println!("\nload trace.json at https://ui.perfetto.dev to explore the tracks");
}
