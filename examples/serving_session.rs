//! Deploy once, serve continuously: a resident `edge-runtime` session fed
//! by several client threads at once.
//!
//! Where `runtime_cluster.rs` runs one-shot batches, this example exercises
//! the serving API the paper's §V-A streaming loop implies: the provider
//! cluster is deployed **once**, then client threads `submit` images
//! against a shared [`edge_runtime::Session`] (credit-gated, so a slow
//! provider throttles clients instead of growing queues), a monitor thread
//! snapshots live `metrics()` mid-stream, and a final `shutdown()` drains
//! the pipeline and reports the measurement.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serving_session
//! ```

use cnn_model::exec::{deterministic_input, ModelWeights};
use cnn_model::{Model, PartitionScheme, VolumeSplit};
use edge_runtime::session::Runtime;
use edge_runtime::RuntimeOptions;
use edgesim::ExecutionPlan;

const CLIENTS: u64 = 3;
const IMAGES_PER_CLIENT: u64 = 8;
const CREDIT_WINDOW: usize = 4;

fn equal_split_plan(model: &Model, devices: usize) -> ExecutionPlan {
    let scheme = PartitionScheme::new(model, vec![0, 6, model.distributable_len()])
        .expect("valid boundaries");
    let splits: Vec<VolumeSplit> = scheme
        .volumes()
        .iter()
        .map(|v| VolumeSplit::equal(devices, v.last_output_height(model)))
        .collect();
    ExecutionPlan::from_splits(model, &scheme, &splits, devices).expect("valid plan")
}

fn main() {
    // 1. A runtime-scale model, split equally across three providers.
    let model = cnn_model::zoo::tiny_vgg();
    let plan = equal_split_plan(&model, 3);
    let weights = ModelWeights::deterministic(&model, 7);
    println!(
        "model: {} ({} layers, {:.1} MFLOPs), 3 providers, credit window {}",
        model.name(),
        model.len(),
        model.total_ops() / 1e6,
        CREDIT_WINDOW
    );

    // 2. Deploy ONCE: the cluster stays resident for the whole run.
    let options = RuntimeOptions::default().with_max_in_flight(CREDIT_WINDOW);
    let session =
        Runtime::deploy_in_process(&model, &plan, &weights, &options).expect("deploy failed");

    // 3. Serve: CLIENTS threads submit concurrently against the shared
    //    session while the main thread samples live metrics.
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let session = &session;
            let model = &model;
            scope.spawn(move || {
                for i in 0..IMAGES_PER_CLIENT {
                    let img = deterministic_input(model, 1000 * client + i);
                    let ticket = session.submit(&img).expect("submit failed");
                    let out = session.wait(ticket).expect("wait failed");
                    assert_eq!(out.shape()[0], 10, "tiny-vgg head emits 10 logits");
                }
                println!("client {client}: {IMAGES_PER_CLIENT} images served");
            });
        }

        // Mid-stream snapshots from the live counters.  Fail fast instead
        // of polling forever if the session breaks or stalls.
        let total = CLIENTS * IMAGES_PER_CLIENT;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        loop {
            std::thread::sleep(std::time::Duration::from_millis(50));
            if let Some(failure) = session.failure() {
                panic!("session failed mid-stream: {failure}");
            }
            let snap = session.metrics();
            println!(
                "monitor: {}/{} images done, {} in flight, mean latency {:.1} ms",
                snap.images,
                total,
                session.in_flight(),
                snap.sim.mean_latency_ms
            );
            if snap.images as u64 >= total {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serving stalled: {}/{} images after 120 s",
                snap.images,
                total
            );
        }
    });

    // 4. Drain and report.
    let report = session.shutdown().expect("shutdown failed");
    println!(
        "\nserved {} images: {:.1} IPS over the wall clock, max {} in flight",
        report.images, report.measured_ips, report.max_in_flight_observed
    );
    println!(
        "{:<12}{:>14}{:>12}{:>12}{:>16}",
        "device", "compute (ms)", "frames in", "frames out", "pipelined imgs"
    );
    for (d, m) in report.devices.iter().enumerate() {
        println!(
            "device-{d:<5}{:>14.1}{:>12}{:>12}{:>16}",
            m.compute_ms, m.frames_in, m.frames_out, m.max_concurrent_images
        );
    }
    assert!(
        report.max_in_flight_observed <= CREDIT_WINDOW,
        "credit window violated"
    );
    println!("\ncredit window held: no more than {CREDIT_WINDOW} images were ever in flight");
}
