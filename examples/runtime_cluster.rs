//! Plan a split with LC-PSS + OSDS, deploy it on the in-process
//! `edge-runtime` with four concurrent providers, and print measured vs
//! predicted IPS side by side.
//!
//! This is the "aha" loop of the runtime: the same `ExecutionPlan` the
//! simulator scores is handed to real worker threads that run real conv /
//! pool / linear kernels, exchange halo rows over the wire format, pipeline
//! several images, and report the same metrics the simulator predicts.
//!
//! Two strategies are deployed: the one OSDS learns (which, for a model
//! this small, correctly concentrates rows on the fastest device — launch
//! overhead dominates tiny workloads, §VI) and a naive equal 4-way split,
//! which exercises real halo exchange and cross-device pipelining.
//!
//! Both deployments are one-shot `DistrEdge::deploy` calls — thin wrappers
//! that open a serving session, stream the batch, and shut it down.  See
//! `serving_session.rs` for the resident-session API (deploy once, submit
//! from many client threads, snapshot metrics mid-stream).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example runtime_cluster
//! ```

use cnn_model::exec::deterministic_input;
use cnn_model::{Model, PartitionScheme, VolumeSplit};
use device_profile::{DeviceSpec, DeviceType};
use distredge::{DeployOptions, Deployment, DistrEdge, DistrEdgeConfig, DistributionStrategy};
use edgesim::Cluster;
use netsim::LinkConfig;
use tensor::Tensor;

/// Deploys `strategy` twice — closed loop (the simulator's stream model, so
/// measured vs predicted compare like for like) and pipelined — and returns
/// both deployments.
fn deploy_both(
    model: &Model,
    cluster: &Cluster,
    strategy: &DistributionStrategy,
    images: &[Tensor],
) -> (Deployment, Deployment) {
    let mut closed = DeployOptions::default();
    closed.runtime.max_in_flight = 1;
    let mut pipelined = DeployOptions::default();
    pipelined.runtime.max_in_flight = 4;
    (
        DistrEdge::deploy(model, cluster, strategy, images, &closed).expect("closed-loop deploy"),
        DistrEdge::deploy(model, cluster, strategy, images, &pipelined).expect("pipelined deploy"),
    )
}

fn print_row(name: &str, closed: &Deployment, pipelined: &Deployment) {
    println!(
        "{:<16}{:>12.1}{:>12.1}{:>10.0}%{:>14.1}{:>16}",
        name,
        closed.report.sim.ips,
        closed.predicted.ips,
        closed.ips_gap().map_or(f64::NAN, |g| g * 100.0),
        pipelined.report.measured_ips,
        pipelined
            .report
            .devices
            .iter()
            .map(|d| d.max_concurrent_images)
            .max()
            .unwrap_or(0)
    );
}

fn main() {
    // 1. A runtime-scale model: the zoo's CIFAR-sized VGG (the paper-scale
    //    models take minutes per image on naive CPU kernels).
    let model = cnn_model::zoo::tiny_vgg();
    println!(
        "model: {} ({} layers, {:.1} MFLOPs)",
        model.name(),
        model.len(),
        model.total_ops() / 1e6
    );

    // 2. Four heterogeneous providers behind 200 Mbps links.
    let cluster = Cluster::uniform(
        vec![
            DeviceSpec::new("xavier-0", DeviceType::Xavier),
            DeviceSpec::new("tx2-0", DeviceType::Tx2),
            DeviceSpec::new("nano-0", DeviceType::Nano),
            DeviceSpec::new("nano-1", DeviceType::Nano),
        ],
        LinkConfig::constant(200.0),
    );
    println!(
        "cluster: {}",
        cluster
            .devices()
            .iter()
            .map(|d| d.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 3. Plan with LC-PSS + OSDS (reduced budget; this is an example, not an
    //    evaluation run).
    let config = DistrEdgeConfig::fast(cluster.len())
        .with_episodes(60)
        .with_seed(7);
    let planned = DistrEdge::plan(&model, &cluster, &config).expect("planning failed");
    println!(
        "planned strategy: {} layer-volumes, boundaries {:?}, row shares {:?}",
        planned.strategy.num_volumes(),
        planned.strategy.scheme.boundaries(),
        planned
            .strategy
            .row_shares(&model)
            .iter()
            .map(|s| format!("{:.2}", s))
            .collect::<Vec<_>>()
    );

    // A naive baseline that genuinely splits: two volumes, equal 4-way rows.
    let scheme = PartitionScheme::new(&model, vec![0, 6, model.distributable_len()])
        .expect("valid boundaries");
    let splits: Vec<VolumeSplit> = scheme
        .volumes()
        .iter()
        .map(|v| VolumeSplit::equal(cluster.len(), v.last_output_height(&model)))
        .collect();
    let equal = DistributionStrategy::new("EqualSplit", scheme, splits, cluster.len())
        .expect("valid strategy");

    // 4. Deploy both strategies on the runtime: 24 images each.
    let images: Vec<Tensor> = (0..24).map(|i| deterministic_input(&model, i)).collect();
    let (planned_closed, planned_piped) = deploy_both(&model, &cluster, &planned.strategy, &images);
    let (equal_closed, equal_piped) = deploy_both(&model, &cluster, &equal, &images);

    // 5. Measured vs predicted, side by side.
    println!(
        "\n{:<16}{:>12}{:>12}{:>11}{:>14}{:>16}",
        "strategy", "meas IPS", "pred IPS", "gap", "pipelined IPS", "imgs in flight"
    );
    print_row("DistrEdge", &planned_closed, &planned_piped);
    print_row("EqualSplit", &equal_closed, &equal_piped);

    println!(
        "\nper-device breakdown of the pipelined EqualSplit run ({} images):",
        equal_piped.report.images
    );
    println!(
        "{:<12}{:>14}{:>12}{:>12}{:>12}{:>16}",
        "device", "compute (ms)", "tx (ms)", "frames in", "frames out", "pipelined imgs"
    );
    for (spec, m) in cluster.devices().iter().zip(&equal_piped.report.devices) {
        println!(
            "{:<12}{:>14.1}{:>12.2}{:>12}{:>12}{:>16}",
            spec.name, m.compute_ms, m.tx_ms, m.frames_in, m.frames_out, m.max_concurrent_images
        );
    }

    println!(
        "\noutputs of every deployment are bit-exact vs single-device inference \
         (verified continuously in tests/runtime_equivalence.rs)"
    );
}
