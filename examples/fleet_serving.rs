//! Fleet serving: one gateway over many replica sessions.
//!
//! Where `gateway_serving.rs` batches traffic into a single resident
//! session, this example puts an [`edge_fleet::FleetServer`] behind the same
//! front-end: two models served concurrently (requests route by model id),
//! each model's replicas executing from **one** shared packed weight copy,
//! least-loaded routing across replicas, and a manual scale-up / drain
//! cycle with zero image loss.
//!
//! Each replica cluster runs over a [`edge_fleet::PacedTransport`] so it
//! has a finite, known service rate — which is what makes the fleet's
//! capacity scaling visible on a single machine.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```

use cnn_model::exec::{self, deterministic_input, ModelWeights};
use cnn_model::{LayerOp, Model};
use edge_fleet::{FleetConfig, FleetServer, ModelSpec, PacedTransport};
use edge_gateway::GatewayConfig;
use edge_runtime::transport::ChannelTransport;
use edge_runtime::RuntimeOptions;
use edgesim::ExecutionPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor::Shape;

const ALPHA_CLIENTS: u64 = 3;
const IMAGES_PER_CLIENT: u64 = 12;
const BETA_IMAGES: u64 = 8;

fn tiny_model(name: &str, head: usize) -> Model {
    Model::new(
        name,
        Shape::new(2, 16, 16),
        &[
            LayerOp::conv(4, 3, 1, 1),
            LayerOp::pool(2, 2),
            LayerOp::fc(head),
        ],
    )
    .expect("valid model")
}

fn spec_for(model: &Model, replicas: usize, pace: Duration) -> ModelSpec {
    let plan = ExecutionPlan::offload(model, 0, 1).expect("valid plan");
    ModelSpec::new(model.name(), model.clone(), plan)
        .with_replicas(replicas)
        .with_runtime(RuntimeOptions::default().with_max_in_flight(4))
        .with_transport(Arc::new(move |n| {
            Box::new(PacedTransport::new(ChannelTransport::new(n), pace))
        }))
}

fn main() {
    // 1. Two models behind one gateway: "alpha" (the default, two
    //    replicas) and "beta" (one replica).  Both paced at 4 ms per
    //    result, so each replica serves ~250 images/s.
    let alpha = tiny_model("alpha", 4);
    let beta = tiny_model("beta", 6);
    let pace = Duration::from_millis(4);
    let fleet = FleetServer::serve(
        vec![spec_for(&alpha, 2, pace), spec_for(&beta, 1, pace)],
        FleetConfig::default()
            .with_min_replicas(1)
            .with_max_replicas(4)
            .with_autoscale(false)
            .with_evaluate_every(Duration::from_millis(10)),
        GatewayConfig::default().with_max_batch(8),
    )
    .expect("fleet deploy failed");
    println!(
        "fleet up: alpha x{} replicas, beta x{} replicas",
        fleet.replica_count("alpha"),
        fleet.replica_count("beta"),
    );

    // Shared-weight tenancy: every replica holds the same packed artifact.
    for tenant in fleet.fleet_metrics().models {
        println!(
            "  model {}: {} replicas share one {}-byte pack ({} refs)",
            tenant.id, tenant.replicas, tenant.resident_bytes, tenant.packed_refs
        );
        assert!(
            tenant.packed_refs > tenant.replicas,
            "replicas must share the registry's pack, not copy it"
        );
    }

    // Oracles for bit-exactness checks below.
    let alpha_weights = ModelWeights::deterministic(&alpha, 7);
    let beta_weights = ModelWeights::deterministic(&beta, 7);

    // 2. Serve both models concurrently; every output is checked against
    //    the single-machine oracle, so routing across replicas is proven
    //    bit-exact.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client_id in 0..ALPHA_CLIENTS {
            let client = fleet.client();
            let (alpha, alpha_weights) = (&alpha, &alpha_weights);
            scope.spawn(move || {
                for i in 0..IMAGES_PER_CLIENT {
                    let seed = 100 * client_id + i;
                    let img = deterministic_input(alpha, seed);
                    let out = client.infer(&img).wait().expect("alpha request failed");
                    let oracle = exec::run_full(alpha, alpha_weights, &img)
                        .expect("oracle run")
                        .pop()
                        .expect("oracle output");
                    assert_eq!(out, oracle, "replica output must be bit-exact");
                }
            });
        }
        let beta_client = fleet.client().with_model("beta");
        let (beta, beta_weights) = (&beta, &beta_weights);
        scope.spawn(move || {
            for i in 0..BETA_IMAGES {
                let img = deterministic_input(beta, 7_000 + i);
                let out = beta_client.infer(&img).wait().expect("beta request failed");
                let oracle = exec::run_full(beta, beta_weights, &img)
                    .expect("oracle run")
                    .pop()
                    .expect("oracle output");
                assert_eq!(out, oracle, "beta must route to beta replicas");
            }
        });
    });
    let total = ALPHA_CLIENTS * IMAGES_PER_CLIENT + BETA_IMAGES;
    println!(
        "served {} images across 2 models in {:.0} ms, all bit-exact",
        total,
        t0.elapsed().as_secs_f64() * 1e3
    );

    // 3. Elastic scale, manually driven: grow alpha to 3 replicas, then
    //    drain back down — the drained replica finishes its outstanding
    //    work before retiring, so nothing is lost.
    let new_id = fleet.scale_up("alpha").expect("scale up failed");
    println!("scaled alpha up: new replica {new_id}");
    assert_eq!(fleet.replica_count("alpha"), 3);
    let victim = fleet
        .scale_down("alpha")
        .expect("scale down failed")
        .expect("above the floor");
    println!("draining alpha replica {victim}");
    let retire_deadline = Instant::now() + Duration::from_secs(30);
    while fleet.fleet_metrics().replicas.len() > 3 {
        assert!(Instant::now() < retire_deadline, "drain never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(fleet.replica_count("alpha"), 2);

    // A post-drain wave proves the fleet still serves correctly.
    let client = fleet.client();
    for i in 0..4 {
        let img = deterministic_input(&alpha, 9_000 + i);
        let out = client.infer(&img).wait().expect("post-drain request");
        let oracle = exec::run_full(&alpha, &alpha_weights, &img)
            .expect("oracle run")
            .pop()
            .expect("oracle output");
        assert_eq!(out, oracle);
    }

    // 4. Per-replica load and the final rollup.
    let fm = fleet.fleet_metrics();
    for r in &fm.replicas {
        println!(
            "  replica {} ({}): {} images, ewma {:.1} ms{}",
            r.id,
            r.model,
            r.images,
            r.ewma_service_ms,
            if r.draining { ", draining" } else { "" }
        );
    }
    println!(
        "fleet: {} images total, {:.1} IPS aggregate, {} scale-up(s), {} drain(s)",
        fm.total_images, fm.fleet_ips, fm.scale_ups, fm.scale_downs
    );
    let m = fleet.shutdown().expect("shutdown failed");
    assert_eq!(m.completed, total + 4, "every request must be answered");
    assert_eq!(m.shed_deadline + m.shed_overload, 0, "nothing shed");
    println!(
        "shutdown clean: {} completed, p50 {:.1} ms / p99 {:.1} ms",
        m.completed, m.p50_ms, m.p99_ms
    );
}
