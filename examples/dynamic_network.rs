//! Online adaptation under a highly dynamic network (paper §V-F): CoEdge,
//! AOFL and DistrEdge re-plan as the monitored bandwidth changes, and their
//! per-image latency is tracked over time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dynamic_network
//! ```

use device_profile::{DeviceSpec, DeviceType};
use distredge::online::{dynamic_cluster, run_dynamic_experiment, OnlineConfig};
use distredge::DistrEdgeConfig;

fn main() {
    let model = cnn_model::zoo::vgg16();
    let devices: Vec<DeviceSpec> = (0..4)
        .map(|i| DeviceSpec::new(format!("nano-{i}"), DeviceType::Nano))
        .collect();
    let cluster = dynamic_cluster(&devices, 21);

    let mut config = OnlineConfig::standard(cluster.len());
    config.duration_minutes = 20.0;
    config.window_minutes = 2.0;
    config.images_per_window = 10;
    config.distredge = DistrEdgeConfig::fast(cluster.len())
        .with_episodes(80)
        .with_seed(21);
    config.finetune_episodes = 20;

    println!(
        "running {} minutes of highly dynamic network conditions…",
        config.duration_minutes
    );
    let results = run_dynamic_experiment(&model, &cluster, &config).expect("experiment failed");

    print!("{:<10}", "minute");
    for r in &results {
        print!("{:>14}", r.method);
    }
    println!();
    for w in 0..results[0].points.len() {
        print!("{:<10.0}", results[0].points[w].minute);
        for r in &results {
            print!("{:>14.1}", r.points[w].latency_ms);
        }
        println!();
    }
    println!("\nmean per-image latency over the run:");
    for r in &results {
        println!("  {:<12} {:>8.1} ms", r.method, r.mean_latency_ms);
    }
}
