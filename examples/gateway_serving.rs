//! One deployment, heavy bursty traffic: the `edge-gateway` front-end over
//! a resident serving session.
//!
//! Where `serving_session.rs` has each client thread talk to the session
//! directly, this example puts the serving stack's top layer in between:
//! six bursty client threads (one high-priority, one deadline-constrained)
//! fire requests at a [`edge_gateway::Gateway`], whose dispatcher forms
//! adaptive batches under `max_batch` / `max_linger`, schedules them over
//! the session's in-flight credit window, sheds what cannot meet its
//! deadline, and publishes p50/p95/p99 latency percentiles live.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example gateway_serving
//! ```

use cnn_model::{Model, PartitionScheme, VolumeSplit};
use device_profile::{DeviceSpec, DeviceType};
use distredge::{DeployOptions, DistrEdge, DistributionStrategy, GatewayOptions};
use edge_gateway::{GatewayConfig, Priority};
use edge_runtime::RuntimeOptions;
use edgesim::Cluster;
use netsim::LinkConfig;
use std::time::Duration;

const CLIENTS: u64 = 6;
const BURSTS: u64 = 3;
const BURST_SIZE: u64 = 3;

fn equal_split_strategy(model: &Model, devices: usize) -> DistributionStrategy {
    let scheme = PartitionScheme::new(model, vec![0, 6, model.distributable_len()])
        .expect("valid boundaries");
    let splits: Vec<VolumeSplit> = scheme
        .volumes()
        .iter()
        .map(|v| VolumeSplit::equal(devices, v.last_output_height(model)))
        .collect();
    DistributionStrategy::new("EqualSplit", scheme, splits, devices).expect("valid strategy")
}

fn main() {
    // 1. A runtime-scale model on three providers behind one gateway.
    let model = cnn_model::zoo::tiny_vgg();
    let cluster = Cluster::uniform(
        vec![
            DeviceSpec::new("xavier", DeviceType::Xavier),
            DeviceSpec::new("tx2", DeviceType::Tx2),
            DeviceSpec::new("nano", DeviceType::Nano),
        ],
        LinkConfig::constant(200.0),
    );
    let strategy = equal_split_strategy(&model, cluster.len());
    let options = GatewayOptions::default()
        .with_deploy(
            DeployOptions::default().with_runtime(RuntimeOptions::default().with_max_in_flight(4)),
        )
        .with_gateway(
            GatewayConfig::default()
                .with_max_batch(4)
                .with_max_linger(Duration::from_millis(2)),
        );
    println!(
        "model: {} on {} providers; gateway: max_batch {}, max_linger {:?}, window 4",
        model.name(),
        cluster.len(),
        options.gateway.max_batch,
        options.gateway.max_linger,
    );

    // 2. Deploy ONCE; the gateway owns the resident session.
    let gateway =
        DistrEdge::serve_gateway(&model, &cluster, &strategy, &options).expect("deploy failed");

    // 3. Serve: bursty clients — each fires a burst of concurrent requests,
    //    waits for all of them, pauses, repeats.  Client 0 runs at high
    //    priority; client 1 attaches a (generous) deadline to every request.
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let client = match client_id {
                0 => gateway.client().with_priority(Priority::High),
                _ => gateway.client(),
            };
            let model = &model;
            scope.spawn(move || {
                for burst in 0..BURSTS {
                    let responses: Vec<_> = (0..BURST_SIZE)
                        .map(|i| {
                            let seed = 1_000 * client_id + 10 * burst + i;
                            let img = cnn_model::exec::deterministic_input(model, seed);
                            if client_id == 1 {
                                client.infer_with_deadline(&img, Duration::from_secs(120))
                            } else {
                                client.infer(&img)
                            }
                        })
                        .collect();
                    for response in responses {
                        let out = response.wait().expect("request failed");
                        assert_eq!(out.shape()[0], 10, "tiny-vgg head emits 10 logits");
                    }
                    std::thread::sleep(Duration::from_millis(3));
                }
                println!("client {client_id}: {} images served", BURSTS * BURST_SIZE);
            });
        }

        // Live monitoring off the gateway's own metrics.
        let total = CLIENTS * BURSTS * BURST_SIZE;
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        loop {
            std::thread::sleep(Duration::from_millis(50));
            let m = gateway.metrics();
            println!(
                "monitor: {}/{} done, queue {}, batches {} (occupancy {:.1}), \
                 p50 {:.1} ms / p95 {:.1} ms / p99 {:.1} ms",
                m.completed,
                total,
                m.queue_depth,
                m.batches,
                m.batch_occupancy,
                m.p50_ms,
                m.p95_ms,
                m.p99_ms
            );
            if m.completed >= total {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serving stalled: {}/{} after 120 s",
                m.completed,
                total
            );
        }
    });

    // 4. Drain and report.
    let total = CLIENTS * BURSTS * BURST_SIZE;
    let m = gateway.shutdown().expect("shutdown failed");
    println!(
        "\nserved {} images in {} batches (mean occupancy {:.2}), 0 lost, {} shed",
        m.completed,
        m.batches,
        m.batch_occupancy,
        m.shed_deadline + m.shed_overload
    );
    println!(
        "latency: p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms; cluster: {:.1} IPS wall-clock",
        m.p50_ms, m.p95_ms, m.p99_ms, m.session.measured_ips
    );
    assert_eq!(m.completed, total, "every request must be answered");
    assert_eq!(
        m.session.images, total as usize,
        "gateway and session must agree on the image count"
    );
    assert!(m.p50_ms <= m.p95_ms && m.p95_ms <= m.p99_ms);
    println!(
        "gateway and session agree: {} images end-to-end",
        m.completed
    );
}
