//! Functional verification of vertical splitting: execute a distribution
//! strategy's split-parts on the real tensor engine and check that the
//! stitched result equals running the whole model on one device.
//!
//! This is the property that lets DistrEdge distribute *existing* models
//! without retraining: the distribution is exact, so accuracy is untouched.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example functional_verification
//! ```

use cnn_model::exec::{deterministic_input, run_full, run_part, ModelWeights};
use cnn_model::{LayerOp, Model};
use device_profile::{DeviceSpec, DeviceType};
use distredge::{DistrEdge, DistrEdgeConfig};
use edgesim::Cluster;
use netsim::LinkConfig;
use tensor::slice::concat_rows;
use tensor::Shape;

fn main() {
    // A small CNN so the (deliberately simple) conv kernels stay fast.
    let model = Model::new(
        "demo-cnn",
        Shape::new(3, 96, 96),
        &[
            LayerOp::conv(16, 3, 1, 1),
            LayerOp::conv(16, 3, 1, 1),
            LayerOp::pool(2, 2),
            LayerOp::conv(32, 3, 1, 1),
            LayerOp::conv(32, 3, 1, 1),
            LayerOp::pool(2, 2),
            LayerOp::conv(64, 3, 1, 1),
            LayerOp::fc(10),
        ],
    )
    .expect("valid model");

    let cluster = Cluster::uniform(
        vec![
            DeviceSpec::new("xavier", DeviceType::Xavier),
            DeviceSpec::new("tx2", DeviceType::Tx2),
            DeviceSpec::new("nano", DeviceType::Nano),
        ],
        LinkConfig::constant(200.0),
    );

    // Plan a strategy with DistrEdge.
    let config = DistrEdgeConfig::fast(cluster.len())
        .with_episodes(60)
        .with_seed(1);
    let outcome = DistrEdge::plan(&model, &cluster, &config).expect("planning failed");
    let plan = outcome
        .strategy
        .to_plan(&model)
        .expect("plan lowering failed");
    println!(
        "strategy: {} volumes, shares {:?}",
        outcome.strategy.num_volumes(),
        outcome.strategy.row_shares(&model)
    );

    // Reference: run the whole model on one "device".
    let weights = ModelWeights::deterministic(&model, 42);
    let input = deterministic_input(&model, 42);
    let reference = run_full(&model, &weights, &input).expect("full run failed");

    // Distributed: execute each volume's split-parts independently (as the
    // providers would) and stitch the bands back together.
    let mut volume_input = input.clone();
    for (v, assignment) in plan.volumes.iter().enumerate() {
        let mut bands = Vec::new();
        for (device, part) in assignment.parts.iter().enumerate() {
            if let Some(out) = run_part(&model, &weights, part, &volume_input).expect("part failed")
            {
                println!(
                    "  volume {v}: device {device} computed output rows {:?}",
                    part.output_rows
                );
                bands.push(out);
            }
        }
        let stitched = concat_rows(&bands).expect("stitch failed");
        let expected = &reference[assignment.parts[0].volume.end - 1];
        let diff = stitched.max_abs_diff(expected).expect("comparable shapes");
        println!("  volume {v}: max |distributed - reference| = {diff:.2e}");
        assert!(
            diff < 1e-4,
            "distributed execution must match the reference"
        );
        volume_input = stitched;
    }
    println!("\nDistributed execution is functionally identical to single-device execution.");
}
