//! Paper-scale end-to-end proof of the packed kernel path: serve **VGG-11
//! at 224×224** (~15 GFLOPs of convolution, ~133 M parameters — the
//! smallest member of the paper's VGG16-class workloads) through the
//! distributed runtime.
//!
//! Under the old direct kernels this model was impractical to execute at
//! all — minutes per image — which capped every runtime benchmark at toy
//! scale.  On the packed im2col + GEMM path the whole demo (deploy with
//! deploy-time weight packing, stream a batch across three in-process
//! providers, verify bit-exactness against the single-device reference)
//! runs in seconds:
//!
//! ```text
//! cargo run --release --example paper_scale
//! ```

use cnn_model::exec::{self, deterministic_input, ModelWeights};
use cnn_model::{zoo, PartitionScheme, VolumeSplit};
use edge_runtime::session::Runtime;
use edge_runtime::RuntimeOptions;
use edgesim::ExecutionPlan;
use std::time::Instant;
use tensor::Tensor;

fn main() {
    let model = zoo::vgg11();
    println!(
        "model: {} ({} layers, {:.1} GFLOPs, {:.0} M params)",
        model.name(),
        model.len(),
        model.total_ops() / 1e9,
        model.parameter_count() as f64 / 1e6
    );

    let t0 = Instant::now();
    let weights = ModelWeights::deterministic(&model, 7);
    println!("weights generated in {:.2?}", t0.elapsed());

    // Split every volume across three providers (uneven shares so halos
    // cross device boundaries), head on one of them.
    let devices = 3;
    let scheme = PartitionScheme::single_volume(&model);
    let splits: Vec<VolumeSplit> = scheme
        .volumes()
        .iter()
        .map(|v| {
            let h = v.last_output_height(&model);
            VolumeSplit::new(vec![h / 2, 3 * h / 4], h)
        })
        .collect();
    let plan = ExecutionPlan::from_splits(&model, &scheme, &splits, devices).unwrap();

    // Deploy: weights are sharded per device and packed into GEMM panels
    // once, before the first frame.
    let t0 = Instant::now();
    let session = Runtime::deploy_in_process(
        &model,
        &plan,
        &weights,
        &RuntimeOptions::default().with_max_in_flight(2),
    )
    .unwrap();
    println!("deployed (sharded + packed) in {:.2?}", t0.elapsed());

    // Stream a small batch through the resident cluster.
    let images: Vec<Tensor> = (0..3)
        .map(|i| deterministic_input(&model, 100 + i))
        .collect();
    let t0 = Instant::now();
    let tickets: Vec<_> = images
        .iter()
        .map(|img| session.submit(img).unwrap())
        .collect();
    let outputs: Vec<Tensor> = tickets
        .into_iter()
        .map(|t| session.wait(t).unwrap())
        .collect();
    let elapsed = t0.elapsed();

    let report = session.shutdown().unwrap();
    println!(
        "streamed {} images in {:.2?} — {:.2} IPS (pipelined), {:.0} ms/image closed-loop mean",
        images.len(),
        elapsed,
        report.measured_ips,
        report.sim.mean_latency_ms
    );
    for (d, dev) in report.devices.iter().enumerate() {
        println!(
            "  device {d}: compute {:.0} ms, {} layers packed at deploy, {:.1} MB in / {:.1} MB out",
            dev.compute_ms,
            dev.layers_packed,
            dev.bytes_in as f64 / 1e6,
            dev.bytes_out as f64 / 1e6
        );
    }

    // The distributed packed path must agree bit-for-bit with the
    // single-device reference (same GEMM kernels, same summation order).
    let t0 = Instant::now();
    let reference = exec::run_full(&model, &weights, &images[0]).unwrap();
    assert_eq!(
        &outputs[0],
        reference.last().unwrap(),
        "distributed VGG-11 output must be bit-exact vs single-device"
    );
    println!(
        "verified bit-exact against single-device reference ({:.2?})",
        t0.elapsed()
    );
}
