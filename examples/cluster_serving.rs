//! Multi-host cluster serving: one model, three `distredge-node`
//! processes, real TCP in between.
//!
//! The coordinator dials every node, ships the plan and that node's
//! weight shard in the bootstrap handshake, then streams images through
//! the cluster exactly as the in-process runtime would — bit-exact
//! against single-device execution.
//!
//! Two ways to run it:
//!
//! ```text
//! # Self-contained (nodes run as threads inside this process, still
//! # over real loopback sockets):
//! cargo run --release --example cluster_serving
//!
//! # Against external node processes: start three nodes, then point the
//! # example at the cluster config they share.
//! cargo run --release --bin distredge-node -- --device 0 --listen 127.0.0.1:7700 &
//! cargo run --release --bin distredge-node -- --device 1 --listen 127.0.0.1:7701 &
//! cargo run --release --bin distredge-node -- --device 2 --listen 127.0.0.1:7702 &
//! DISTREDGE_CLUSTER=cluster.toml cargo run --release --example cluster_serving
//! ```
//!
//! where `cluster.toml` lists the same addresses:
//!
//! ```text
//! [[node]]
//! device = 0
//! addr = "127.0.0.1:7700"
//! # ... one block per node
//! ```

use cnn_model::exec::{deterministic_input, run_full, ModelWeights};
use cnn_model::{Model, PartitionScheme, VolumeSplit};
use distredge::{ClusterOptions, DistrEdge, DistributionStrategy};
use edge_cluster::{run_node, ClusterConfig, NodeConfig, PeerSpec};
use edge_runtime::RuntimeOptions;
use std::net::TcpListener;
use std::time::Instant;

const DEVICES: usize = 3;
const IMAGES: u64 = 12;

fn equal_split_strategy(model: &Model, devices: usize) -> DistributionStrategy {
    let scheme = PartitionScheme::new(model, vec![0, 6, model.distributable_len()])
        .expect("valid boundaries");
    let splits: Vec<VolumeSplit> = scheme
        .volumes()
        .iter()
        .map(|v| VolumeSplit::equal(devices, v.last_output_height(model)))
        .collect();
    DistributionStrategy::new("EqualSplit", scheme, splits, devices).expect("valid strategy")
}

/// Reserves `n` distinct loopback ports.
fn free_addrs(n: usize) -> Vec<String> {
    let holds: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    holds
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect()
}

fn main() {
    let model = cnn_model::zoo::tiny_vgg();
    let strategy = equal_split_strategy(&model, DEVICES);
    let options =
        ClusterOptions::default().with_runtime(RuntimeOptions::default().with_max_in_flight(4));

    // 1. A cluster config: either the file named by DISTREDGE_CLUSTER
    //    (external `distredge-node` processes already listening), or
    //    three in-process node runloops on fresh loopback ports.
    let external = std::env::var("DISTREDGE_CLUSTER").ok();
    let (config, nodes) = match &external {
        Some(path) => {
            println!("cluster : external nodes from {path}");
            let config = ClusterConfig::from_file(path).expect("load cluster config");
            (config, Vec::new())
        }
        None => {
            let addrs = free_addrs(DEVICES);
            println!("cluster : in-process nodes on {}", addrs.join(", "));
            let nodes: Vec<_> = addrs
                .iter()
                .enumerate()
                .map(|(device, addr)| {
                    let cfg = NodeConfig {
                        device,
                        listen: addr.clone(),
                        profile: None,
                    };
                    std::thread::spawn(move || run_node(&cfg))
                })
                .collect();
            let config = ClusterConfig {
                nodes: addrs
                    .iter()
                    .enumerate()
                    .map(|(device, addr)| PeerSpec {
                        device,
                        addr: addr.clone(),
                        profile: None,
                    })
                    .collect(),
            };
            (config, nodes)
        }
    };

    // 2. Bootstrap: dial every node, ship plan + weight shard, deploy.
    let t0 = Instant::now();
    let session =
        DistrEdge::serve_cluster(&model, &strategy, &config, &options).expect("cluster deploy");
    println!(
        "deploy  : {} on {} nodes in {:.1} ms",
        model.name(),
        config.nodes.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // 3. Stream images and verify every output bit-exactly against
    //    single-device execution with the same deterministic weights.
    let weights = ModelWeights::deterministic(&model, options.weight_seed);
    let images: Vec<_> = (0..IMAGES)
        .map(|s| deterministic_input(&model, s))
        .collect();
    let t0 = Instant::now();
    let tickets: Vec<_> = images
        .iter()
        .map(|im| session.submit(im).expect("submit"))
        .collect();
    for (ticket, image) in tickets.into_iter().zip(&images) {
        let output = session.wait(ticket).expect("wait");
        let expected = run_full(&model, &weights, image)
            .expect("reference")
            .pop()
            .unwrap();
        assert_eq!(
            output.data(),
            expected.data(),
            "cluster output must be bit-exact"
        );
    }
    let elapsed = t0.elapsed();
    let ips = IMAGES as f64 / elapsed.as_secs_f64();

    let report = session.shutdown().expect("shutdown");
    println!(
        "serve   : {} images in {:.1} ms — {:.1} IPS, all bit-exact",
        report.images,
        elapsed.as_secs_f64() * 1e3,
        ips
    );

    // 4. In-process nodes halt on the coordinator's Halt frames.
    for node in nodes {
        node.join().expect("node thread").expect("node runloop");
    }
    println!("halt    : all nodes drained cleanly");
}
