//! Int8 quantized GEMM with fused dequantize + bias + activation — the
//! compute core of the quantized convolution and linear paths.
//!
//! The kernel computes
//! `C[r][j] = act(bias[r] + (Σ_k qa[k][j] · qw[r][k]) · s_a · s_w)`
//! over symmetric per-tensor quantizations `qw = round(w / s_w)` and
//! `qa = round(a / s_a)`, both clamped to `[-127, 127]`.  The weight side
//! is prepacked into [`QuantizedFilter`] panels at deploy time; the
//! activation side is produced on the fly by a [`QPanelFill`] — the im2col
//! lowering for convolutions, a straight copy for linear layers.
//!
//! **Unsigned-offset trick.**  The AVX-512 VNNI instruction (`vpdpbusd`)
//! multiplies *unsigned* bytes by signed bytes, so activations are stored
//! offset by +128 (`byte = qa + 128 ∈ [1, 255]`, quantized zero = 128) and
//! the panels are pre-filled with 128 so zero padding costs nothing.  The
//! offset is removed per output row by a pack-time correction term:
//!
//! `Σ (qa+128)·qw = Σ qa·qw + 128·Σ qw`, so `Σ qa·qw = acc − row_corr[r]`
//! with `row_corr[r] = 128·Σ_k qw[r][k]`.
//!
//! **Exactness.**  Every arm accumulates the same products in `i32` —
//! integer addition is associative, so arms are bit-exact against each
//! other *by construction* (the f32 GEMM had to pin its op order to get
//! this).  The worst-case magnitude `255·127·k` stays below `i32::MAX` for
//! `k ≤ 66 000`, enforced at pack time; `vpdpbusd` accumulates into 32-bit
//! lanes without saturation, and the AVX2 arm widens each byte product to
//! 32 bits before adding, so no arm can saturate or wrap.  The f32
//! epilogue `act(bias + (acc − corr) · s_a·s_w)` is one identical
//! expression in every path, so banded outputs stitch bit-exactly — the
//! property the distributed runtime relies on.
//!
//! The same three-level blocking as [`super::gemm`] applies (register
//! tile, [`KC`] K-slices, parallel column tiles / row-panel groups); K
//! runs in quads of 4 bytes (the dot-product granularity), and [`KC`] is a
//! multiple of 4 so quads never straddle a K slice.

use super::activation::Activation;
use super::dispatch::{qkernel_arch, QKernelArch};
use super::gemm::{KC, MR, NR};
use crate::error::TensorError;
use crate::Result;
use rayon::prelude::*;

/// Bytes per dot-product quad — the K granularity of every int8 arm.
pub const QK: usize = 4;

/// Largest shared-dimension length the int8 path accepts: beyond this the
/// worst-case accumulator `255·127·k` could exceed `i32::MAX`.
pub const MAX_QUANT_K: usize = 66_000;

/// The symmetric quantization scale for a tensor: `max|x| / 127`, or `1.0`
/// for an all-zero tensor (any scale reproduces zeros).
pub fn quant_scale(data: &[f32]) -> f32 {
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / 127.0
    }
}

/// Quantizes one value: `round(x / scale)` clamped to `[-127, 127]`.
#[inline]
pub fn quantize_i8(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-127.0, 127.0) as i8
}

/// The unsigned panel byte for one activation value: `quantize + 128`.
/// Quantized zero is byte `128` — what panel buffers are pre-filled with.
#[inline]
pub fn quant_byte(x: f32, scale: f32) -> u8 {
    (quantize_i8(x, scale) as i32 + 128) as u8
}

/// Quantizes a slice against a given scale.
pub fn quantize_slice(src: &[f32], scale: f32) -> Vec<i8> {
    src.iter().map(|&v| quantize_i8(v, scale)).collect()
}

/// Dequantizes a slice: `q · scale`.
pub fn dequantize_slice(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&v| v as f32 * scale).collect()
}

/// A weight matrix `[m][k]` quantized to i8 and repacked into `MR`-row,
/// quad-major panels for the int8 micro-kernel: panel `p` holds rows
/// `p*MR ..`, with `data[((p*kq + qd)*MR + r)*QK + l] = qw[p*MR+r][qd*QK+l]`
/// (`kq = ceil(k/QK)`), zero-padded past `k` and past the row edge so the
/// kernel never branches.  Carries the per-tensor weight scale and the
/// per-row +128 correction term alongside.
///
/// ~4× smaller than the f32 [`super::gemm::PackedFilter`] over the same
/// weights — the resident-memory half of the quantization win.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedFilter {
    m: usize,
    k: usize,
    kq: usize,
    scale: f32,
    data: Vec<i8>,
    row_corr: Vec<i32>,
}

impl QuantizedFilter {
    /// Quantizes and packs a row-major `[m][k]` weight matrix.  The scale
    /// is computed here, from the weight range — packing the same weights
    /// twice yields identical panels.
    pub fn pack(weights: &[f32], m: usize, k: usize) -> Result<Self> {
        if weights.len() != m * k {
            return Err(TensorError::KernelConfig(format!(
                "quantized filter expects {m}x{k} = {} weights, got {}",
                m * k,
                weights.len()
            )));
        }
        if k > MAX_QUANT_K {
            return Err(TensorError::KernelConfig(format!(
                "quantized filter k {k} exceeds the i32 accumulator bound {MAX_QUANT_K}"
            )));
        }
        let scale = quant_scale(weights);
        let panels = m.div_ceil(MR);
        let kq = k.div_ceil(QK);
        let mut data = vec![0i8; panels * kq * MR * QK];
        let mut row_corr = vec![0i32; m];
        for p in 0..panels {
            let rows = (m - p * MR).min(MR);
            let base = p * kq * MR * QK;
            for r in 0..rows {
                let row = &weights[(p * MR + r) * k..(p * MR + r + 1) * k];
                let mut sum = 0i32;
                for (kk, &v) in row.iter().enumerate() {
                    let q = quantize_i8(v, scale);
                    sum += q as i32;
                    data[base + ((kk / QK) * MR + r) * QK + (kk % QK)] = q;
                }
                row_corr[p * MR + r] = 128 * sum;
            }
        }
        Ok(Self {
            m,
            k,
            kq,
            scale,
            data,
            row_corr,
        })
    }

    /// Number of output rows (channels / features).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared dimension length (unquantized element count).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-tensor weight scale `s_w`.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Bytes held by the packed panels plus the correction terms.
    pub fn bytes(&self) -> usize {
        self.data.len() + self.row_corr.len() * std::mem::size_of::<i32>()
    }

    /// The packed panel of rows `p*MR ..`, restricted to quads
    /// `[qd0, qd1)`: a contiguous `(qd1-qd0) × MR × QK` byte block.
    #[inline]
    fn panel(&self, p: usize, qd0: usize, qd1: usize) -> &[i8] {
        let base = p * self.kq * MR * QK;
        &self.data[base + qd0 * MR * QK..base + qd1 * MR * QK]
    }
}

/// A quantized B-panel filler: `fill(k0, k1, j0, j1, buf)` writes offset
/// activation bytes (`quant_byte`) for k rows `[k0, k1)` and output columns
/// `[j0, j1)` into `buf`, laid out in `NR`-column, quad-major panels:
/// `buf[((q*kcq + qd)*NR + jj)*QK + l]` holds `B[k0 + qd*QK + l][j0 + q*NR + jj]`
/// with `kcq = ceil((k1-k0)/QK)`.  `k0` is always a multiple of `QK`.
/// `buf` arrives pre-filled with byte `128` (quantized zero), so fillers
/// only write positions they have data for — zero padding is free, and
/// tail-quad bytes past `k1` are harmless because the weight panel is
/// zero there.
pub trait QPanelFill: Sync {
    /// Writes one k-slice of quantized B panels (see trait docs).
    fn fill(&self, k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [u8]);
}

impl<F> QPanelFill for F
where
    F: Fn(usize, usize, usize, usize, &mut [u8]) + Sync,
{
    fn fill(&self, k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [u8]) {
        self(k0, k1, j0, j1, buf)
    }
}

// Parallel-strategy constants mirroring `super::gemm` exactly, so the
// quantized path has the same tiling behaviour per shape.
const MIN_COLS_FOR_TILING: usize = 4 * NR;
const TASKS_PER_THREAD: usize = 3;
const MAX_TILE_COLS: usize = 256;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Computes `out = act(bias + dequant(Aq·Bq))` into a row-major `[m][n]`
/// f32 buffer, with the weight side prepacked in `a` and the activation
/// side produced by `fill` against the caller-supplied activation scale
/// `scale_a` (see [`QPanelFill`]).
///
/// The integer accumulation is order-independent and the f32 epilogue is
/// one fixed expression, so output bands and column subsets are bit-exact
/// against a full-output call on any dispatch arm.
pub fn qgemm_bias_act_into<F: QPanelFill>(
    a: &QuantizedFilter,
    bias: &[f32],
    act: Activation,
    scale_a: f32,
    n: usize,
    fill: &F,
    out: &mut [f32],
) -> Result<()> {
    let (m, k) = (a.m, a.k);
    if bias.len() != m {
        return Err(TensorError::KernelConfig(format!(
            "qgemm bias length {} != m {m}",
            bias.len()
        )));
    }
    if out.len() != m * n {
        return Err(TensorError::KernelConfig(format!(
            "qgemm output length {} != m*n = {}",
            out.len(),
            m * n
        )));
    }
    if n == 0 || m == 0 {
        return Ok(());
    }
    let arch = qkernel_arch();
    let s = scale_a * a.scale;

    if n >= MIN_COLS_FOR_TILING {
        // Wide output: parallelise over column tiles.  Each task owns a
        // private i32 C tile and u8 B slice, applies the epilogue, and the
        // finished f32 tiles are scattered into `out`.
        let tile = n
            .div_ceil(TASKS_PER_THREAD * num_threads())
            .next_multiple_of(NR)
            .clamp(NR, MAX_TILE_COLS);
        let tiles = n.div_ceil(tile);
        let blocks: Vec<(usize, usize, Vec<f32>)> = (0..tiles)
            .into_par_iter()
            .map(|t| {
                let j0 = t * tile;
                let j1 = (j0 + tile).min(n);
                let tn = j1 - j0;
                let panels = tn.div_ceil(NR);
                let mut ctile = vec![0i32; m * tn];
                let kcq_max = KC.min(k).div_ceil(QK);
                let mut bbuf = vec![0u8; panels * kcq_max * NR * QK];
                for k0 in (0..k).step_by(KC) {
                    let k1 = (k0 + KC).min(k);
                    let kcq = (k1 - k0).div_ceil(QK);
                    let bslice = &mut bbuf[..panels * kcq * NR * QK];
                    bslice.fill(128);
                    fill.fill(k0, k1, j0, j1, bslice);
                    qgemm_block(
                        arch,
                        a,
                        0,
                        m,
                        k0,
                        k1,
                        bslice,
                        kcq,
                        k0 / QK,
                        tn,
                        &mut ctile,
                        tn,
                    );
                }
                let mut ftile = vec![0.0f32; m * tn];
                for r in 0..m {
                    let corr = a.row_corr[r];
                    let b = bias[r];
                    for jj in 0..tn {
                        ftile[r * tn + jj] =
                            act.apply(b + ((ctile[r * tn + jj] - corr) as f32) * s);
                    }
                }
                (j0, j1, ftile)
            })
            .collect();
        for (j0, j1, ftile) in blocks {
            let tn = j1 - j0;
            for r in 0..m {
                out[r * n + j0..r * n + j1].copy_from_slice(&ftile[r * tn..(r + 1) * tn]);
            }
        }
    } else {
        // Narrow output (the FC / GEMV case): one shared whole-k B,
        // parallelise over row-panel groups writing disjoint chunks of
        // `out` in place.
        let panels = n.div_ceil(NR);
        let kq = a.kq;
        let mut bbuf = vec![128u8; panels * kq * NR * QK];
        fill.fill(0, k, 0, n, &mut bbuf);
        let group_rows = m
            .div_ceil(TASKS_PER_THREAD * num_threads())
            .next_multiple_of(MR)
            .min(m.next_multiple_of(MR));
        out.par_chunks_mut(group_rows * n)
            .enumerate()
            .for_each(|(g, chunk)| {
                let r0 = g * group_rows;
                let r1 = (r0 + group_rows).min(m);
                let mut ctile = vec![0i32; (r1 - r0) * n];
                for k0 in (0..k).step_by(KC) {
                    let k1 = (k0 + KC).min(k);
                    qgemm_block(arch, a, r0, r1, k0, k1, &bbuf, kq, 0, n, &mut ctile, n);
                }
                for r in r0..r1 {
                    let corr = a.row_corr[r];
                    let b = bias[r];
                    for jj in 0..n {
                        chunk[(r - r0) * n + jj] =
                            act.apply(b + ((ctile[(r - r0) * n + jj] - corr) as f32) * s);
                    }
                }
            });
    }
    Ok(())
}

/// One K-slice int8 GEMM update over rows `[r0, r1)` (with `r0 % MR == 0`):
/// `C += Aq[:, k0..k1] · Bq[k0..k1]` into the i32 tile `c` (rows `[r0, r1)`
/// with row stride `c_stride`).  `b` holds `ceil(n/NR)` column panels of
/// `b_kq` quads each, starting at quad index `b_qd0`.
#[allow(clippy::too_many_arguments)]
fn qgemm_block(
    arch: QKernelArch,
    a: &QuantizedFilter,
    r0: usize,
    r1: usize,
    k0: usize,
    k1: usize,
    b: &[u8],
    b_kq: usize,
    b_qd0: usize,
    n: usize,
    c: &mut [i32],
    c_stride: usize,
) {
    debug_assert_eq!(r0 % MR, 0);
    debug_assert_eq!(k0 % QK, 0);
    let qd0 = k0 / QK;
    let qd1 = k1.div_ceil(QK);
    let kcq = qd1 - qd0;
    let panels_n = n.div_ceil(NR);
    for q in 0..panels_n {
        let j0 = q * NR;
        let jn = (n - j0).min(NR);
        let start = (q * b_kq + (qd0 - b_qd0)) * NR * QK;
        let bpanel = &b[start..start + kcq * NR * QK];
        let mut p = r0 / MR;
        while p * MR < r1 {
            let rows = (r1 - p * MR).min(MR);
            let mut acc = [[0i32; NR]; MR];
            for r in 0..rows {
                let row = &c[(p * MR + r - r0) * c_stride + j0..][..jn];
                acc[r][..jn].copy_from_slice(row);
            }
            qmicrokernel(arch, a.panel(p, qd0, qd1), bpanel, &mut acc);
            for r in 0..rows {
                let row = &mut c[(p * MR + r - r0) * c_stride + j0..][..jn];
                row.copy_from_slice(&acc[r][..jn]);
            }
            p += 1;
        }
    }
}

/// The int8 register tile: streams one weight panel (`kcq` quads × `MR`
/// rows × `QK` bytes) against one activation panel (`kcq` quads × `NR`
/// columns × `QK` bytes), accumulating `MR × NR` i32 partial sums.  Every
/// arm computes the identical integer sum, so the arms are
/// bit-interchangeable by construction.
#[inline]
fn qmicrokernel(arch: QKernelArch, a: &[i8], b: &[u8], acc: &mut [[i32; NR]; MR]) {
    match arch {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `qkernel_arch()` clamps to CPUID-detected capability, so
        // the required target features are present when these arms are
        // selected.
        QKernelArch::Vnni => unsafe { qmicrokernel_vnni(a, b, acc) },
        #[cfg(target_arch = "x86_64")]
        QKernelArch::Avx2 => unsafe { qmicrokernel_avx2(a, b, acc) },
        _ => qmicrokernel_scalar(a, b, acc),
    }
}

/// Portable int8 micro-kernel — the always-available dispatch floor.
#[inline]
fn qmicrokernel_scalar(a: &[i8], b: &[u8], acc: &mut [[i32; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR * QK).zip(b.chunks_exact(NR * QK)) {
        for r in 0..MR {
            let aw = &av[r * QK..(r + 1) * QK];
            let row = &mut acc[r];
            for (j, bq) in bv.chunks_exact(QK).enumerate() {
                let mut s = 0i32;
                for l in 0..QK {
                    s += (bq[l] as i32) * (aw[l] as i32);
                }
                row[j] += s;
            }
        }
    }
}

/// 256-bit int8 micro-kernel.  `vpmaddubsw` would saturate
/// (`2·255·127 > i16::MAX`), so each of the four quad bytes is extracted
/// into its own 32-bit lane (shift + mask, zero-extending the unsigned
/// activation byte) and multiplied exactly with `vpmulld` against the
/// sign-extended weight byte — every product and sum stays in i32.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2, `a.len() == kcq*MR*QK` and
/// `b.len() == kcq*NR*QK` for the same `kcq`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qmicrokernel_avx2(a: &[i8], b: &[u8], acc: &mut [[i32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len() / (MR * QK), b.len() / (NR * QK));
    let kcq = a.len() / (MR * QK);
    let cp = acc.as_mut_ptr() as *mut i32;
    let mask = _mm256_set1_epi32(0xFF);
    let mut c0 = [_mm256_setzero_si256(); MR];
    let mut c1 = [_mm256_setzero_si256(); MR];
    for r in 0..MR {
        c0[r] = _mm256_loadu_si256(cp.add(r * NR) as *const __m256i);
        c1[r] = _mm256_loadu_si256(cp.add(r * NR + 8) as *const __m256i);
    }
    let mut pa = a.as_ptr();
    let mut pb = b.as_ptr();
    for _ in 0..kcq {
        // Each 32-bit lane of v0/v1 holds one column's 4 activation bytes.
        let v0 = _mm256_loadu_si256(pb as *const __m256i);
        let v1 = _mm256_loadu_si256(pb.add(32) as *const __m256i);
        for l in 0..QK {
            let sh = _mm256_set1_epi32((8 * l) as i32);
            let b0 = _mm256_and_si256(_mm256_srlv_epi32(v0, sh), mask);
            let b1 = _mm256_and_si256(_mm256_srlv_epi32(v1, sh), mask);
            for r in 0..MR {
                let w = _mm256_set1_epi32(*pa.add(r * QK + l) as i32);
                c0[r] = _mm256_add_epi32(c0[r], _mm256_mullo_epi32(w, b0));
                c1[r] = _mm256_add_epi32(c1[r], _mm256_mullo_epi32(w, b1));
            }
        }
        pa = pa.add(MR * QK);
        pb = pb.add(NR * QK);
    }
    for r in 0..MR {
        _mm256_storeu_si256(cp.add(r * NR) as *mut __m256i, c0[r]);
        _mm256_storeu_si256(cp.add(r * NR + 8) as *mut __m256i, c1[r]);
    }
}

/// 512-bit AVX-512 VNNI micro-kernel: one `vpdpbusd` per row per quad —
/// 64 unsigned×signed byte MACs accumulated into 16 i32 lanes, no
/// intermediate rounding or saturation, so the sum is the exact integer
/// sum every other arm computes.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F + AVX-512 VNNI,
/// `a.len() == kcq*MR*QK` and `b.len() == kcq*NR*QK` for the same `kcq`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vnni")]
unsafe fn qmicrokernel_vnni(a: &[i8], b: &[u8], acc: &mut [[i32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len() / (MR * QK), b.len() / (NR * QK));
    let kcq = a.len() / (MR * QK);
    let cp = acc.as_mut_ptr() as *mut i32;
    let mut c = [_mm512_setzero_si512(); MR];
    for (r, cr) in c.iter_mut().enumerate() {
        *cr = _mm512_loadu_si512(cp.add(r * NR) as *const __m512i);
    }
    let mut pa = a.as_ptr();
    let mut pb = b.as_ptr();
    for _ in 0..kcq {
        // One zmm holds the whole NR-column quad block (16 cols × 4 bytes).
        let bv = _mm512_loadu_si512(pb as *const __m512i);
        for (r, cr) in c.iter_mut().enumerate() {
            let wquad = (pa.add(r * QK) as *const i32).read_unaligned();
            *cr = _mm512_dpbusd_epi32(*cr, bv, _mm512_set1_epi32(wquad));
        }
        pa = pa.add(MR * QK);
        pb = pb.add(NR * QK);
    }
    for (r, cr) in c.iter().enumerate() {
        _mm512_storeu_si512(cp.add(r * NR) as *mut __m512i, *cr);
    }
}

#[cfg(test)]
mod tests {
    use super::super::dispatch::set_qkernel_override;
    use super::*;

    fn dense_qfill(bmat: &[f32], n_total: usize, scale: f32) -> impl QPanelFill + '_ {
        move |k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [u8]| {
            let kcq = (k1 - k0).div_ceil(QK);
            for k_abs in k0..k1 {
                let kk = k_abs - k0;
                let (qd, l) = (kk / QK, kk % QK);
                for j in j0..j1 {
                    let jj = j - j0;
                    let (q, lane) = (jj / NR, jj % NR);
                    buf[((q * kcq + qd) * NR + lane) * QK + l] =
                        quant_byte(bmat[k_abs * n_total + j], scale);
                }
            }
        }
    }

    /// Integer reference: quantize both sides with the same scales, do the
    /// dot product in i64 (headroom), apply the identical f32 epilogue.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        scale_a: f32,
        act: Activation,
    ) -> Vec<f32> {
        let scale_w = quant_scale(a);
        let s = scale_a * scale_w;
        let mut out = vec![0.0f32; m * n];
        for r in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    let qw = quantize_i8(a[r * k + kk], scale_w) as i64;
                    let qa = quantize_i8(b[kk * n + j], scale_a) as i64;
                    acc += qw * qa;
                }
                out[r * n + j] = act.apply(bias[r] + (acc as f32) * s);
            }
        }
        out
    }

    fn det(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
                ((v % 512) as f32 / 256.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn scale_and_quantize_round_trip() {
        let data = [-1.0f32, 0.5, 0.25, 1.27];
        let s = quant_scale(&data);
        assert!((s - 1.27 / 127.0).abs() < 1e-9);
        // Re-quantizing a dequantized value with the same scale is lossless.
        for &v in &data {
            let q = quantize_i8(v, s);
            assert_eq!(quantize_i8(q as f32 * s, s), q);
        }
        assert_eq!(quant_scale(&[0.0; 4]), 1.0);
        assert_eq!(quant_byte(0.0, s), 128);
    }

    #[test]
    fn pack_layout_round_trips() {
        let (m, k) = (MR + 1, 6);
        let w: Vec<f32> = (0..m * k).map(|i| (i as f32) - 8.0).collect();
        let packed = QuantizedFilter::pack(&w, m, k).unwrap();
        assert_eq!(packed.m(), m);
        assert_eq!(packed.k(), k);
        let s = packed.scale();
        // Row 0, k 0 lives at panel 0, quad 0, lane 0.
        let p0 = packed.panel(0, 0, packed.kq);
        assert_eq!(p0[0], quantize_i8(w[0], s));
        assert_eq!(p0[1], quantize_i8(w[1], s)); // row 0, k 1
        assert_eq!(p0[QK], quantize_i8(w[k], s)); // row 1, k 0
                                                  // k 4 starts the second quad.
        assert_eq!(p0[MR * QK], quantize_i8(w[4], s));
        // Panel 1 holds row MR plus zero padding.
        let p1 = packed.panel(1, 0, packed.kq);
        assert_eq!(p1[0], quantize_i8(w[MR * k], s));
        assert_eq!(p1[QK], 0); // padding row
        let corr: i32 = (0..k).map(|kk| quantize_i8(w[kk], s) as i32).sum::<i32>() * 128;
        assert_eq!(packed.row_corr[0], corr);
    }

    #[test]
    fn pack_rejects_bad_length_and_giant_k() {
        assert!(QuantizedFilter::pack(&[0.0; 5], 2, 3).is_err());
        let m = 1;
        let k = MAX_QUANT_K + 1;
        assert!(QuantizedFilter::pack(&vec![0.0; m * k], m, k).is_err());
    }

    #[test]
    fn matches_integer_reference_across_shapes() {
        // Exercise both parallel strategies, panel/quad edges and K
        // blocking.  The qgemm output must equal the integer reference
        // *bitwise*: the integer sums are exact and the f32 epilogue is
        // the same expression.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),      // narrow path, row-panel + quad edges
            (4, 300, 9),    // narrow path, K blocking
            (6, 30, 100),   // tiled path, column edges
            (33, 520, 130), // tiled path + K blocking + both edges
            (MR, KC, NR),   // exact tile boundaries
            (MR * 2, KC * 2, NR * 5),
        ] {
            let a = det(m * k, 1);
            let b = det(k * n, 2);
            let bias = det(m, 3);
            let scale_a = quant_scale(&b);
            let packed = QuantizedFilter::pack(&a, m, k).unwrap();
            let mut out = vec![0.0f32; m * n];
            qgemm_bias_act_into(
                &packed,
                &bias,
                Activation::Relu,
                scale_a,
                n,
                &dense_qfill(&b, n, scale_a),
                &mut out,
            )
            .unwrap();
            let want = reference(&a, &b, &bias, m, k, n, scale_a, Activation::Relu);
            assert_eq!(out, want, "({m},{k},{n})");
        }
    }

    #[test]
    fn arms_are_bit_exact_and_subsets_match_full() {
        let (m, k, n) = (13, 515, 96);
        let a = det(m * k, 7);
        let b = det(k * n, 8);
        let bias = det(m, 9);
        let scale_a = quant_scale(&b);
        let packed = QuantizedFilter::pack(&a, m, k).unwrap();
        let run = |n_run: usize, j_off: usize| {
            let fill = |k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [u8]| {
                dense_qfill(&b, n, scale_a).fill(k0, k1, j0 + j_off, j1 + j_off, buf);
            };
            let mut out = vec![0.0f32; m * n_run];
            qgemm_bias_act_into(
                &packed,
                &bias,
                Activation::Tanh,
                scale_a,
                n_run,
                &fill,
                &mut out,
            )
            .unwrap();
            out
        };
        set_qkernel_override(Some(QKernelArch::Scalar));
        let scalar = run(n, 0);
        for arm in [QKernelArch::Avx2, QKernelArch::Vnni] {
            set_qkernel_override(Some(arm));
            if qkernel_arch() != arm {
                continue; // hardware can't run this arm; clamp covered it
            }
            assert_eq!(run(n, 0), scalar, "{} != scalar", arm.label());
        }
        // Column-subset determinism on the auto-selected arm.
        set_qkernel_override(None);
        let full = run(n, 0);
        let (j0, j1) = (17, 63);
        let part = run(j1 - j0, j0);
        for r in 0..m {
            assert_eq!(
                &part[r * (j1 - j0)..(r + 1) * (j1 - j0)],
                &full[r * n + j0..r * n + j1],
                "row {r} differs between subset and full computation"
            );
        }
    }

    #[test]
    fn rejects_mismatched_buffers() {
        let packed = QuantizedFilter::pack(&[1.0; 6], 2, 3).unwrap();
        let fill = dense_qfill(&[0.0; 3], 1, 1.0);
        let mut out = vec![0.0f32; 2];
        assert!(qgemm_bias_act_into(
            &packed,
            &[0.0; 1],
            Activation::None,
            1.0,
            1,
            &fill,
            &mut out
        )
        .is_err());
        let mut wrong = vec![0.0f32; 3];
        assert!(qgemm_bias_act_into(
            &packed,
            &[0.0; 2],
            Activation::None,
            1.0,
            1,
            &fill,
            &mut wrong
        )
        .is_err());
    }
}
