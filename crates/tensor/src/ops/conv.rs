//! Direct 2-D convolution kernels.
//!
//! Two entry points are provided:
//!
//! * [`conv2d`] — convolve a full input tensor.
//! * [`conv2d_rows`] — convolve a *row band*: the input tensor only carries a
//!   band of the original input rows (plus halo), and only a band of output
//!   rows is produced.  Zero padding is applied relative to the *original*
//!   layer geometry so that stitched bands reproduce the full convolution
//!   exactly.  This is the kernel used to execute split-parts.

use super::activation::Activation;
use crate::error::TensorError;
use crate::shape::{conv_out_dim, input_rows_for_output, Shape};
use crate::{Result, Tensor};
use rayon::prelude::*;

/// Length of a weight buffer for a convolution, in `[c_out][c_in][f][f]`
/// layout.
pub const fn im2col_weight_len(c_in: usize, c_out: usize, f: usize) -> usize {
    c_out * c_in * f * f
}

/// Full 2-D convolution over the whole input.
///
/// `weights` is laid out `[c_out][c_in][f][f]`, `bias` has one entry per
/// output channel.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Tensor {
    let h_in = input.height();
    let out_h = conv_out_dim(h_in, f, stride, padding).expect("invalid conv geometry");
    conv2d_rows(
        input, 0, h_in, 0, out_h, weights, bias, c_out, f, stride, padding, act,
    )
    .expect("full conv2d over valid geometry cannot fail")
}

/// Convolution of a row band.
///
/// * `input` holds original input rows `[in_row_offset, in_row_offset + input.height())`.
/// * `orig_h_in` is the height of the *full* layer input; zero padding is
///   applied at rows `< 0` and `>= orig_h_in` only.
/// * Output rows `[out_start, out_end)` (in full-layer coordinates) are
///   produced.
///
/// Returns an error if the input band does not cover every real input row the
/// requested output rows need.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    let [c_in, band_h, w_in] = input.shape();
    if weights.len() != im2col_weight_len(c_in, c_out, f) {
        return Err(TensorError::KernelConfig(format!(
            "conv weights length {} != c_out*c_in*f*f = {}",
            weights.len(),
            im2col_weight_len(c_in, c_out, f)
        )));
    }
    if bias.len() != c_out {
        return Err(TensorError::KernelConfig(format!(
            "conv bias length {} != c_out {}",
            bias.len(),
            c_out
        )));
    }
    let out_h_full = conv_out_dim(orig_h_in, f, stride, padding)
        .ok_or_else(|| TensorError::KernelConfig("convolution does not fit input".into()))?;
    let out_w = conv_out_dim(input.width(), f, stride, padding)
        .ok_or_else(|| TensorError::KernelConfig("convolution does not fit input width".into()))?;
    if out_end > out_h_full || out_start >= out_end {
        return Err(TensorError::InvalidRowRange {
            start: out_start,
            end: out_end,
            rows: out_h_full,
        });
    }
    // Check halo coverage: the real input rows needed must lie inside the band.
    let (need_lo, need_hi) =
        input_rows_for_output(out_start, out_end, f, stride, padding, orig_h_in);
    if need_lo < in_row_offset || need_hi > in_row_offset + band_h {
        return Err(TensorError::KernelConfig(format!(
            "input band rows {}..{} do not cover required rows {}..{}",
            in_row_offset,
            in_row_offset + band_h,
            need_lo,
            need_hi
        )));
    }

    let out_rows = out_end - out_start;
    let plane_in = band_h * w_in;
    let in_data = input.data();
    let pad = padding as isize;

    // One output channel plane per rayon task.
    let planes: Vec<Vec<f32>> = (0..c_out)
        .into_par_iter()
        .map(|oc| {
            let mut plane = vec![0.0f32; out_rows * out_w];
            let w_base = oc * c_in * f * f;
            for (oy_local, oy) in (out_start..out_end).enumerate() {
                let iy0 = oy as isize * stride as isize - pad;
                for ox in 0..out_w {
                    let ix0 = ox as isize * stride as isize - pad;
                    let mut acc = bias[oc];
                    for ic in 0..c_in {
                        let w_ch = w_base + ic * f * f;
                        let in_ch = ic * plane_in;
                        for ky in 0..f {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= orig_h_in as isize {
                                continue;
                            }
                            let band_y = iy as usize - in_row_offset;
                            let row_base = in_ch + band_y * w_in;
                            let w_row = w_ch + ky * f;
                            for kx in 0..f {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w_in as isize {
                                    continue;
                                }
                                acc += in_data[row_base + ix as usize] * weights[w_row + kx];
                            }
                        }
                    }
                    plane[oy_local * out_w + ox] = act.apply(acc);
                }
            }
            plane
        })
        .collect();

    let mut data = Vec::with_capacity(c_out * out_rows * out_w);
    for plane in planes {
        data.extend_from_slice(&plane);
    }
    Tensor::from_vec(Shape::new(c_out, out_rows, out_w), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::input_rows_for_output;
    use crate::slice::{concat_rows, slice_rows};

    fn det_weights(c_in: usize, c_out: usize, f: usize) -> Vec<f32> {
        (0..im2col_weight_len(c_in, c_out, f))
            .map(|i| ((i % 7) as f32 - 3.0) * 0.25)
            .collect()
    }

    fn det_input(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn([c, h, w], |c, y, x| {
            ((c * 31 + y * 7 + x * 3) % 11) as f32 * 0.5 - 2.0
        })
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 conv with identity weights and zero bias copies the input.
        let input = det_input(2, 5, 5);
        let weights = vec![1.0, 0.0, 0.0, 1.0]; // [c_out=2][c_in=2][1][1]
        let bias = vec![0.0, 0.0];
        let out = conv2d(&input, &weights, &bias, 2, 1, 1, 0, Activation::None);
        assert!(out.approx_eq(&input, 1e-6));
    }

    #[test]
    fn bias_only_kernel() {
        let input = Tensor::zeros([1, 4, 4]);
        let weights = vec![0.0; 9];
        let bias = vec![2.5];
        let out = conv2d(&input, &weights, &bias, 1, 3, 1, 1, Activation::None);
        assert!(out.data().iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn output_shape_stride_two() {
        let input = det_input(3, 11, 11);
        let weights = det_weights(3, 4, 3);
        let bias = vec![0.1; 4];
        let out = conv2d(&input, &weights, &bias, 4, 3, 2, 1, Activation::Relu);
        assert_eq!(out.shape(), [4, 6, 6]);
    }

    #[test]
    fn known_small_convolution() {
        // Single channel 3x3 input, 2x2 filter of ones, stride 1, no padding:
        // output[y][x] = sum of the 2x2 window.
        let input = Tensor::from_vec([1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let weights = vec![1.0; 4];
        let bias = vec![0.0];
        let out = conv2d(&input, &weights, &bias, 1, 2, 1, 0, Activation::None);
        assert_eq!(out.shape(), [1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn rows_band_matches_full_conv() {
        let input = det_input(3, 16, 9);
        let weights = det_weights(3, 5, 3);
        let bias = vec![0.05; 5];
        let (f, s, p) = (3, 1, 1);
        let full = conv2d(&input, &weights, &bias, 5, f, s, p, Activation::Relu);

        // Split output rows into 0..6, 6..11, 11..16 and compute each band from
        // the minimal halo slice of the input.
        let cuts = [6usize, 11, 16];
        let mut start = 0usize;
        let mut bands = Vec::new();
        for &end in &cuts {
            let (lo, hi) = input_rows_for_output(start, end, f, s, p, input.height());
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band_out = conv2d_rows(
                &band_in,
                lo,
                input.height(),
                start,
                end,
                &weights,
                &bias,
                5,
                f,
                s,
                p,
                Activation::Relu,
            )
            .unwrap();
            bands.push(band_out);
            start = end;
        }
        let stitched = concat_rows(&bands).unwrap();
        assert!(stitched.approx_eq(&full, 1e-5));
    }

    #[test]
    fn rows_band_rejects_missing_halo() {
        let input = det_input(1, 10, 5);
        let weights = det_weights(1, 1, 3);
        let bias = vec![0.0];
        // Band carries rows 4..6 only but output rows 4..6 need input 3..7.
        let band = slice_rows(&input, 4, 6).unwrap();
        let r = conv2d_rows(
            &band,
            4,
            10,
            4,
            6,
            &weights,
            &bias,
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_bad_weight_length() {
        let input = det_input(2, 5, 5);
        let r = conv2d_rows(
            &input,
            0,
            5,
            0,
            5,
            &[0.0; 10],
            &[0.0],
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(matches!(r, Err(TensorError::KernelConfig(_))));
    }

    #[test]
    fn rejects_bad_bias_length() {
        let input = det_input(2, 5, 5);
        let weights = det_weights(2, 3, 3);
        let r = conv2d_rows(
            &input,
            0,
            5,
            0,
            5,
            &weights,
            &[0.0; 2],
            3,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(matches!(r, Err(TensorError::KernelConfig(_))));
    }

    #[test]
    fn rejects_out_of_range_output_rows() {
        let input = det_input(1, 8, 8);
        let weights = det_weights(1, 1, 3);
        let r = conv2d_rows(
            &input,
            0,
            8,
            0,
            9,
            &weights,
            &[0.0],
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(r.is_err());
    }
}
