//! 2-D convolution kernels.
//!
//! Three implementations share one geometry/validation layer:
//!
//! * the **packed im2col + GEMM path** — the general production kernel.
//!   The input band is lowered on the fly into cache-sized column panels
//!   (the im2col B matrix, built k-slice by k-slice so it never
//!   materialises whole) and multiplied by the [`PackedFilter`] weight
//!   panels through the blocked GEMM in [`super::gemm`], with bias and
//!   activation fused into the last K block.
//! * the **Winograd F(2×2,3×3) path** ([`super::winograd`]) — the shortcut
//!   for stride-1 3×3 convolutions, which routes ~2.25× fewer multiplies
//!   through the very same GEMM micro-kernel.
//! * the **direct path** ([`conv2d_direct`] / [`conv2d_rows_direct`]) — the
//!   clarity-first 6-deep loop nest, kept as the test oracle the fast paths
//!   are validated against (within `1e-4` for GEMM, a relative `1e-3` for
//!   Winograd, whose summation order differs by construction).
//!
//! [`pack_conv_filter`] builds a [`PackedConvFilter`] carrying the GEMM
//! panels plus, when the geometry is Winograd-eligible, the transformed
//! Winograd panels; [`conv2d_rows_packed`] then routes each call by layer
//! geometry alone.  [`conv2d_rows`] / [`conv2d`] pack per call and take the
//! identical route, so prepacked and per-call execution stay bit-identical.
//!
//! All paths implement the same *row band* contract: the input tensor may
//! carry only a band of the original input rows (plus halo), zero padding
//! is applied relative to the original layer geometry, and a band of output
//! rows is produced — so stitched bands reproduce the full convolution
//! exactly.  Per-element accumulation order is independent of banding and
//! tiling on every path (see the `gemm` and `winograd` module docs), which
//! is what keeps distributed execution bit-exact against single-device
//! runs.

use super::activation::Activation;
use super::gemm::{gemm_bias_act_into, PackedFilter, NR};
use super::qgemm::{qgemm_bias_act_into, quant_byte, QuantizedFilter, QK};
use super::winograd::{
    conv2d_rows_winograd, winograd_eligible, winograd_preferred, WinogradFilter,
};
use crate::error::TensorError;
use crate::shape::{conv_out_dim, input_rows_for_output, Shape};
use crate::{Result, Tensor};
use rayon::prelude::*;

/// Length of a weight buffer for a convolution, in `[c_out][c_in][f][f]`
/// layout.
pub const fn im2col_weight_len(c_in: usize, c_out: usize, f: usize) -> usize {
    c_out * c_in * f * f
}

/// A convolution filter prepacked for the kernel path chosen for its
/// layer: the f32 im2col GEMM panels (plus the Winograd-transformed panels
/// when the layer is stride-1 3×3, see [`winograd_eligible`]), **or** the
/// int8 quantized panels when the deploy opted the layer into the
/// quantized path — quantized layers carry *only* the i8 panels, which is
/// what drops resident weight bytes ~4×.
///
/// Built once at deploy time by [`pack_conv_filter`] /
/// [`pack_conv_filter_with`]; consumed per frame by
/// [`conv2d_rows_packed`], which routes on what was packed — so every band
/// of a layer, on any device, takes the same path.
#[derive(Debug, Clone)]
pub struct PackedConvFilter {
    c_out: usize,
    gemm: Option<PackedFilter>,
    wino: Option<WinogradFilter>,
    quant: Option<QuantizedFilter>,
    scale_in: f32,
    f: usize,
    stride: usize,
}

impl PackedConvFilter {
    /// Number of output channels.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// The f32 im2col GEMM panels (absent on quantized-only packs).
    pub fn gemm(&self) -> Option<&PackedFilter> {
        self.gemm.as_ref()
    }

    /// The Winograd-transformed panels, if the geometry is eligible.
    pub fn winograd(&self) -> Option<&WinogradFilter> {
        self.wino.as_ref()
    }

    /// The int8 quantized panels, if this layer was packed quantized.
    pub fn quant(&self) -> Option<&QuantizedFilter> {
        self.quant.as_ref()
    }

    /// The calibrated input-activation scale the quantized panels expect
    /// (`1.0` on f32 packs).
    pub fn scale_in(&self) -> f32 {
        self.scale_in
    }

    /// Bytes resident across every packed form.
    pub fn bytes(&self) -> usize {
        self.gemm.as_ref().map_or(0, PackedFilter::bytes)
            + self.wino.as_ref().map_or(0, WinogradFilter::bytes)
            + self.quant.as_ref().map_or(0, QuantizedFilter::bytes)
    }
}

/// Packs `[c_out][c_in][f][f]` convolution weights into every f32 panel
/// form the layer geometry can use (see [`PackedConvFilter`]).
///
/// This is the deploy-time half of the packed conv path: the result drops
/// into [`conv2d_rows_packed`] for every subsequent frame.
pub fn pack_conv_filter(
    weights: &[f32],
    c_in: usize,
    c_out: usize,
    f: usize,
    stride: usize,
) -> Result<PackedConvFilter> {
    pack_conv_filter_with(weights, c_in, c_out, f, stride, None)
}

/// Packs convolution weights, choosing the panel form from the quantization
/// decision: `quant_scale_in: Some(s_in)` packs **only** the int8 panels
/// (against the calibrated input-activation scale `s_in`), `None` packs the
/// f32 forms exactly like [`pack_conv_filter`].  What gets packed here is
/// what [`conv2d_rows_packed`] routes to.
pub fn pack_conv_filter_with(
    weights: &[f32],
    c_in: usize,
    c_out: usize,
    f: usize,
    stride: usize,
    quant_scale_in: Option<f32>,
) -> Result<PackedConvFilter> {
    if weights.len() != im2col_weight_len(c_in, c_out, f) {
        return Err(TensorError::KernelConfig(format!(
            "conv weights length {} != c_out*c_in*f*f = {}",
            weights.len(),
            im2col_weight_len(c_in, c_out, f)
        )));
    }
    if let Some(scale_in) = quant_scale_in {
        let quant = QuantizedFilter::pack(weights, c_out, c_in * f * f)?;
        return Ok(PackedConvFilter {
            c_out,
            gemm: None,
            wino: None,
            quant: Some(quant),
            scale_in,
            f,
            stride,
        });
    }
    let gemm = PackedFilter::pack(weights, c_out, c_in * f * f)?;
    let wino = if winograd_eligible(f, stride) {
        Some(WinogradFilter::pack(weights, c_in, c_out)?)
    } else {
        None
    };
    Ok(PackedConvFilter {
        c_out,
        gemm: Some(gemm),
        wino,
        quant: None,
        scale_in: 1.0,
        f,
        stride,
    })
}

/// Validated geometry of one banded convolution call.
pub(super) struct BandGeometry {
    pub(super) c_in: usize,
    pub(super) band_h: usize,
    pub(super) w_in: usize,
    pub(super) out_w: usize,
}

/// Shared validation for every kernel path: weight/bias lengths, output row
/// range, and halo coverage of the input band.
#[allow(clippy::too_many_arguments)]
pub(super) fn validate_band(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    bias_len: usize,
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
) -> Result<BandGeometry> {
    let [c_in, band_h, w_in] = input.shape();
    if bias_len != c_out {
        return Err(TensorError::KernelConfig(format!(
            "conv bias length {bias_len} != c_out {c_out}"
        )));
    }
    let out_h_full = conv_out_dim(orig_h_in, f, stride, padding)
        .ok_or_else(|| TensorError::KernelConfig("convolution does not fit input".into()))?;
    let out_w = conv_out_dim(w_in, f, stride, padding)
        .ok_or_else(|| TensorError::KernelConfig("convolution does not fit input width".into()))?;
    if out_end > out_h_full || out_start >= out_end {
        return Err(TensorError::InvalidRowRange {
            start: out_start,
            end: out_end,
            rows: out_h_full,
        });
    }
    // Check halo coverage: the real input rows needed must lie inside the band.
    let (need_lo, need_hi) =
        input_rows_for_output(out_start, out_end, f, stride, padding, orig_h_in);
    if need_lo < in_row_offset || need_hi > in_row_offset + band_h {
        return Err(TensorError::KernelConfig(format!(
            "input band rows {}..{} do not cover required rows {}..{}",
            in_row_offset,
            in_row_offset + band_h,
            need_lo,
            need_hi
        )));
    }
    Ok(BandGeometry {
        c_in,
        band_h,
        w_in,
        out_w,
    })
}

/// Full 2-D convolution over the whole input (packed im2col + GEMM path,
/// packing the filter per call).
///
/// `weights` is laid out `[c_out][c_in][f][f]`, `bias` has one entry per
/// output channel.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Tensor {
    let h_in = input.height();
    let out_h = conv_out_dim(h_in, f, stride, padding).expect("invalid conv geometry");
    conv2d_rows(
        input, 0, h_in, 0, out_h, weights, bias, c_out, f, stride, padding, act,
    )
    .expect("full conv2d over valid geometry cannot fail")
}

/// Convolution of a row band (packed im2col + GEMM path, packing the filter
/// per call).
///
/// * `input` holds original input rows `[in_row_offset, in_row_offset + input.height())`.
/// * `orig_h_in` is the height of the *full* layer input; zero padding is
///   applied at rows `< 0` and `>= orig_h_in` only.
/// * Output rows `[out_start, out_end)` (in full-layer coordinates) are
///   produced.
///
/// Returns an error if the input band does not cover every real input row
/// the requested output rows need.  Bit-identical to
/// [`conv2d_rows_packed`] over a filter packed with [`pack_conv_filter`] —
/// packing is pure data movement and the routing decision is the same.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    let filter = pack_conv_filter(weights, input.channels(), c_out, f, stride)?;
    conv2d_rows_packed(
        input,
        in_row_offset,
        orig_h_in,
        out_start,
        out_end,
        &filter,
        bias,
        f,
        stride,
        padding,
        act,
    )
}

/// Convolution of a row band over a prepacked filter — the per-frame hot
/// path.  Routes by what deploy packed: int8 panels take the quantized
/// GEMM path, otherwise stride-1 3×3 layers with enough channels to
/// amortise the transforms (see
/// [`winograd_preferred`](super::winograd::winograd_preferred)) take the
/// Winograd F(2×2,3×3) path, everything else the f32 im2col GEMM path.
///
/// Because the route depends only on the pack — never on the band shape —
/// every band of a layer takes the same path on every device, and banded
/// outputs stitch bit-exactly against a full-input call.
///
/// `filter` must come from [`pack_conv_filter`] /
/// [`pack_conv_filter_with`] with matching geometry.  Band semantics are
/// identical to [`conv2d_rows`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows_packed(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    filter: &PackedConvFilter,
    bias: &[f32],
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    if f != filter.f || stride != filter.stride {
        return Err(TensorError::KernelConfig(format!(
            "conv call geometry (f={f}, stride={stride}) != packed filter geometry (f={}, stride={})",
            filter.f, filter.stride
        )));
    }
    if let Some(quant) = filter.quant() {
        return conv2d_rows_q8(
            input,
            in_row_offset,
            orig_h_in,
            out_start,
            out_end,
            quant,
            filter.scale_in,
            bias,
            f,
            stride,
            padding,
            act,
        );
    }
    if let Some(wino) = filter
        .winograd()
        .filter(|w| winograd_preferred(w.c_in(), w.c_out()))
    {
        return conv2d_rows_winograd(
            input,
            in_row_offset,
            orig_h_in,
            out_start,
            out_end,
            wino,
            bias,
            padding,
            act,
        );
    }
    let gemm = filter.gemm().ok_or_else(|| {
        TensorError::KernelConfig("packed filter carries no f32 GEMM panels".into())
    })?;
    conv2d_rows_gemm(
        input,
        in_row_offset,
        orig_h_in,
        out_start,
        out_end,
        gemm,
        bias,
        f,
        stride,
        padding,
        act,
    )
}

/// Convolution of a row band on the im2col GEMM path over prepacked GEMM
/// panels: no packing, no im2col materialisation beyond one cache-sized
/// panel slice per tile.
///
/// This is the unconditional-GEMM entry [`conv2d_rows_packed`] routes
/// non-Winograd layers to; benches and equivalence tests also call it
/// directly to pin the path.  `filter.k()` must equal `c_in·f·f`
/// (`filter.m()` is `c_out`).  Band semantics are identical to
/// [`conv2d_rows`].
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows_gemm(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    filter: &PackedFilter,
    bias: &[f32],
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    let c_out = filter.m();
    let geom = validate_band(
        input,
        in_row_offset,
        orig_h_in,
        out_start,
        out_end,
        bias.len(),
        c_out,
        f,
        stride,
        padding,
    )?;
    if filter.k() != geom.c_in * f * f {
        return Err(TensorError::KernelConfig(format!(
            "packed filter k {} != c_in*f*f = {}",
            filter.k(),
            geom.c_in * f * f
        )));
    }
    let out_rows = out_end - out_start;
    let out_w = geom.out_w;
    let n = out_rows * out_w;
    let (band_h, w_in) = (geom.band_h, geom.w_in);
    let in_data = input.data();
    let ff = f * f;

    // The im2col panel filler: writes B[k][j] = input value under filter
    // tap k at output pixel j, for one k-slice and one column tile.  The
    // interior is copied with no per-element bounds checks — for each
    // (output row, filter tap) pair the valid column interval is computed
    // once and only it is written; everything outside stays at the zero the
    // driver pre-cleared (that is the zero padding).
    let fill = move |k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [f32]| {
        let kc = k1 - k0;
        for k_abs in k0..k1 {
            let kk = k_abs - k0;
            let ic = k_abs / ff;
            let ky = (k_abs % ff) / f;
            let kx = k_abs % f;
            // Valid output-column interval for this kx: 0 <= ox*s + kx - p < w_in.
            let ox_lo = padding.saturating_sub(kx).div_ceil(stride);
            let ox_hi = if w_in + padding > kx {
                ((w_in - 1 + padding - kx) / stride + 1).min(out_w)
            } else {
                0
            };
            let in_plane = ic * band_h * w_in;
            let oy_first = j0 / out_w;
            let oy_last = (j1 - 1) / out_w;
            for oy_local in oy_first..=oy_last {
                let iy = ((out_start + oy_local) * stride + ky) as isize - padding as isize;
                if iy < 0 || iy >= orig_h_in as isize {
                    continue; // zero-padding row: the buffer is already zero
                }
                let band_y = iy as usize - in_row_offset;
                debug_assert!(band_y < band_h, "halo check guarantees coverage");
                let in_row = in_plane + band_y * w_in;
                // Columns of this output row that fall inside the tile.
                let seg0 = j0.max(oy_local * out_w);
                let seg1 = j1.min((oy_local + 1) * out_w);
                let ox_a = (seg0 - oy_local * out_w).max(ox_lo);
                let ox_b = (seg1 - oy_local * out_w).min(ox_hi);
                if ox_a >= ox_b {
                    continue;
                }
                if stride == 1 {
                    // Stride-1 fast path: both the source pixels (consecutive
                    // `ix`) and the destination lanes within one NR panel are
                    // contiguous, so the row copies in `memcpy`-sized runs —
                    // this is what lifts small-K layers (the stem's K=27)
                    // where the per-element scatter's div/mod dominated.
                    let mut jj = oy_local * out_w + ox_a - j0;
                    let jj_end = oy_local * out_w + ox_b - j0;
                    let mut ix = ox_a + kx - padding;
                    while jj < jj_end {
                        let (q, lane) = (jj / NR, jj % NR);
                        let take = (NR - lane).min(jj_end - jj);
                        let dst = (q * kc + kk) * NR + lane;
                        buf[dst..dst + take]
                            .copy_from_slice(&in_data[in_row + ix..in_row + ix + take]);
                        jj += take;
                        ix += take;
                    }
                } else {
                    let mut ix = ox_a * stride + kx - padding;
                    for ox in ox_a..ox_b {
                        let jj = oy_local * out_w + ox - j0;
                        buf[((jj / NR) * kc + kk) * NR + (jj % NR)] = in_data[in_row + ix];
                        ix += stride;
                    }
                }
            }
        }
    };

    let mut data = vec![0.0f32; c_out * n];
    gemm_bias_act_into(filter, bias, act, n, &fill, &mut data)?;
    Tensor::from_vec(Shape::new(c_out, out_rows, out_w), data)
}

/// Convolution of a row band on the **int8 quantized** im2col GEMM path
/// over prepacked i8 panels: the band's activations are quantized against
/// the calibrated `scale_in` on the fly (inside the panel fill, one byte
/// per im2col element), multiplied in i32, and dequantized in the fused
/// epilogue with bias and activation.
///
/// `scale_in` must be the *same* for every band of a layer (it is fixed at
/// deploy-time calibration); together with order-independent integer
/// accumulation and the fixed f32 epilogue this keeps banded outputs
/// bit-exact against a full-input call — on any int8 dispatch arm.
/// Accuracy against the f32 path is bounded by the quantization step
/// (relative ~1/127 per tensor), validated end-to-end in
/// `prop_conv_gemm.rs`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows_q8(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    filter: &QuantizedFilter,
    scale_in: f32,
    bias: &[f32],
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    let c_out = filter.m();
    let geom = validate_band(
        input,
        in_row_offset,
        orig_h_in,
        out_start,
        out_end,
        bias.len(),
        c_out,
        f,
        stride,
        padding,
    )?;
    if filter.k() != geom.c_in * f * f {
        return Err(TensorError::KernelConfig(format!(
            "quantized filter k {} != c_in*f*f = {}",
            filter.k(),
            geom.c_in * f * f
        )));
    }
    let out_rows = out_end - out_start;
    let out_w = geom.out_w;
    let n = out_rows * out_w;
    let (band_h, w_in) = (geom.band_h, geom.w_in);
    let in_data = input.data();
    let ff = f * f;

    // The quantizing im2col filler: same geometry walk as the f32 filler,
    // but each element is quantized to its offset byte as it is written.
    // Padding positions stay at the 128 the driver pre-filled — exactly
    // the quantization of zero under any scale.
    let fill = move |k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [u8]| {
        let kcq = (k1 - k0).div_ceil(QK);
        for k_abs in k0..k1 {
            let kk = k_abs - k0;
            let (qd, l) = (kk / QK, kk % QK);
            let ic = k_abs / ff;
            let ky = (k_abs % ff) / f;
            let kx = k_abs % f;
            let ox_lo = padding.saturating_sub(kx).div_ceil(stride);
            let ox_hi = if w_in + padding > kx {
                ((w_in - 1 + padding - kx) / stride + 1).min(out_w)
            } else {
                0
            };
            let in_plane = ic * band_h * w_in;
            let oy_first = j0 / out_w;
            let oy_last = (j1 - 1) / out_w;
            for oy_local in oy_first..=oy_last {
                let iy = ((out_start + oy_local) * stride + ky) as isize - padding as isize;
                if iy < 0 || iy >= orig_h_in as isize {
                    continue; // zero-padding row: the buffer is already 128
                }
                let band_y = iy as usize - in_row_offset;
                debug_assert!(band_y < band_h, "halo check guarantees coverage");
                let in_row = in_plane + band_y * w_in;
                let seg0 = j0.max(oy_local * out_w);
                let seg1 = j1.min((oy_local + 1) * out_w);
                let ox_a = (seg0 - oy_local * out_w).max(ox_lo);
                let ox_b = (seg1 - oy_local * out_w).min(ox_hi);
                if ox_a >= ox_b {
                    continue;
                }
                let mut ix = ox_a * stride + kx - padding;
                for ox in ox_a..ox_b {
                    let jj = oy_local * out_w + ox - j0;
                    buf[(((jj / NR) * kcq + qd) * NR + (jj % NR)) * QK + l] =
                        quant_byte(in_data[in_row + ix], scale_in);
                    ix += stride;
                }
            }
        }
    };

    let mut data = vec![0.0f32; c_out * n];
    qgemm_bias_act_into(filter, bias, act, scale_in, n, &fill, &mut data)?;
    Tensor::from_vec(Shape::new(c_out, out_rows, out_w), data)
}

/// Full 2-D convolution on the direct (loop-nest) path — the test oracle.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_direct(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Tensor {
    let h_in = input.height();
    let out_h = conv_out_dim(h_in, f, stride, padding).expect("invalid conv geometry");
    conv2d_rows_direct(
        input, 0, h_in, 0, out_h, weights, bias, c_out, f, stride, padding, act,
    )
    .expect("full conv2d over valid geometry cannot fail")
}

/// Direct (loop-nest) convolution of a row band — the test oracle the GEMM
/// path is validated against.  Same band semantics as [`conv2d_rows`].
///
/// Parallelised over output channels, each rayon task writing its channel
/// plane directly into one pre-sized output buffer.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows_direct(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    weights: &[f32],
    bias: &[f32],
    c_out: usize,
    f: usize,
    stride: usize,
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    let geom = validate_band(
        input,
        in_row_offset,
        orig_h_in,
        out_start,
        out_end,
        bias.len(),
        c_out,
        f,
        stride,
        padding,
    )?;
    let (c_in, w_in) = (geom.c_in, geom.w_in);
    if weights.len() != im2col_weight_len(c_in, c_out, f) {
        return Err(TensorError::KernelConfig(format!(
            "conv weights length {} != c_out*c_in*f*f = {}",
            weights.len(),
            im2col_weight_len(c_in, c_out, f)
        )));
    }

    let out_rows = out_end - out_start;
    let out_w = geom.out_w;
    let plane_in = geom.band_h * w_in;
    let in_data = input.data();
    let pad = padding as isize;

    // One output channel plane per rayon task, written in place.
    let mut data = vec![0.0f32; c_out * out_rows * out_w];
    data.par_chunks_mut(out_rows * out_w)
        .enumerate()
        .for_each(|(oc, plane)| {
            let w_base = oc * c_in * f * f;
            for (oy_local, oy) in (out_start..out_end).enumerate() {
                let iy0 = oy as isize * stride as isize - pad;
                for ox in 0..out_w {
                    let ix0 = ox as isize * stride as isize - pad;
                    let mut acc = bias[oc];
                    for ic in 0..c_in {
                        let w_ch = w_base + ic * f * f;
                        let in_ch = ic * plane_in;
                        for ky in 0..f {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= orig_h_in as isize {
                                continue;
                            }
                            let band_y = iy as usize - in_row_offset;
                            let row_base = in_ch + band_y * w_in;
                            let w_row = w_ch + ky * f;
                            for kx in 0..f {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w_in as isize {
                                    continue;
                                }
                                acc += in_data[row_base + ix as usize] * weights[w_row + kx];
                            }
                        }
                    }
                    plane[oy_local * out_w + ox] = act.apply(acc);
                }
            }
        });
    Tensor::from_vec(Shape::new(c_out, out_rows, out_w), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::input_rows_for_output;
    use crate::slice::{concat_rows, slice_rows};

    fn det_weights(c_in: usize, c_out: usize, f: usize) -> Vec<f32> {
        (0..im2col_weight_len(c_in, c_out, f))
            .map(|i| ((i % 7) as f32 - 3.0) * 0.25)
            .collect()
    }

    fn det_input(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn([c, h, w], |c, y, x| {
            ((c * 31 + y * 7 + x * 3) % 11) as f32 * 0.5 - 2.0
        })
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 conv with identity weights and zero bias copies the input.
        let input = det_input(2, 5, 5);
        let weights = vec![1.0, 0.0, 0.0, 1.0]; // [c_out=2][c_in=2][1][1]
        let bias = vec![0.0, 0.0];
        let out = conv2d(&input, &weights, &bias, 2, 1, 1, 0, Activation::None);
        assert!(out.approx_eq(&input, 1e-6));
    }

    #[test]
    fn bias_only_kernel() {
        let input = Tensor::zeros([1, 4, 4]);
        let weights = vec![0.0; 9];
        let bias = vec![2.5];
        let out = conv2d(&input, &weights, &bias, 1, 3, 1, 1, Activation::None);
        assert!(out.data().iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn output_shape_stride_two() {
        let input = det_input(3, 11, 11);
        let weights = det_weights(3, 4, 3);
        let bias = vec![0.1; 4];
        let out = conv2d(&input, &weights, &bias, 4, 3, 2, 1, Activation::Relu);
        assert_eq!(out.shape(), [4, 6, 6]);
    }

    #[test]
    fn known_small_convolution() {
        // Single channel 3x3 input, 2x2 filter of ones, stride 1, no padding:
        // output[y][x] = sum of the 2x2 window.
        let input = Tensor::from_vec([1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let weights = vec![1.0; 4];
        let bias = vec![0.0];
        let out = conv2d(&input, &weights, &bias, 1, 2, 1, 0, Activation::None);
        assert_eq!(out.shape(), [1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    /// Per-element relative closeness: `|a-b| <= rel * (1 + max(|a|,|b|))` —
    /// the tolerance shape the Winograd path is validated under (its
    /// summation order differs from the direct oracle by construction).
    fn assert_close_rel(fast: &Tensor, oracle: &Tensor, rel: f32, ctx: &str) {
        assert_eq!(fast.shape(), oracle.shape(), "{ctx}");
        for (i, (&a, &b)) in fast.data().iter().zip(oracle.data()).enumerate() {
            let tol = rel * (1.0 + a.abs().max(b.abs()));
            assert!((a - b).abs() <= tol, "{ctx}: [{i}] {a} vs {b}");
        }
    }

    #[test]
    fn fast_paths_match_direct_oracle() {
        // Representative geometries: odd channel counts (panel edges),
        // stride 2, 1x1 and 7x7 filters, asymmetric padding effects.  These
        // channel counts all route to the GEMM path (Winograd needs
        // `winograd_preferred` channel counts and is pinned directly by its
        // own tests); held to 1e-4 against the oracle.
        for &(c_in, c_out, h, w, f, s, p) in &[
            (2usize, 4usize, 20usize, 16usize, 3usize, 1usize, 1usize),
            (3, 5, 17, 13, 3, 2, 1),
            (4, 7, 12, 12, 1, 1, 0),
            (3, 6, 23, 23, 7, 2, 3),
            (1, 1, 8, 8, 5, 1, 2),
            (5, 33, 9, 7, 3, 1, 1),
            (2, 3, 10, 9, 3, 1, 0),
        ] {
            let input = det_input(c_in, h, w);
            let weights = det_weights(c_in, c_out, f);
            let bias: Vec<f32> = (0..c_out).map(|i| (i as f32) * 0.01 - 0.05).collect();
            let fast = conv2d(&input, &weights, &bias, c_out, f, s, p, Activation::Relu);
            let oracle = conv2d_direct(&input, &weights, &bias, c_out, f, s, p, Activation::Relu);
            let ctx = format!("({c_in},{c_out},{h},{w},f{f},s{s},p{p})");
            assert!(
                !(winograd_eligible(f, s) && winograd_preferred(c_in, c_out)),
                "{ctx}: shape list is meant to pin the GEMM route"
            );
            assert_eq!(fast.shape(), oracle.shape());
            assert!(
                fast.approx_eq(&oracle, 1e-4),
                "{ctx}: max diff {}",
                fast.max_abs_diff(&oracle).unwrap()
            );
        }
    }

    #[test]
    fn preferred_channels_route_to_winograd() {
        // A stride-1 3×3 layer with `winograd_preferred` channel counts
        // must take the Winograd route through the packed entry and still
        // match the direct oracle within the relative tolerance.
        let (c_in, c_out, h, w) = (128usize, 128usize, 10usize, 9usize);
        assert!(winograd_preferred(c_in, c_out));
        let input = det_input(c_in, h, w);
        let weights = det_weights(c_in, c_out, 3);
        let bias: Vec<f32> = (0..c_out).map(|i| (i as f32) * 0.01 - 0.05).collect();
        let filter = pack_conv_filter(&weights, c_in, c_out, 3, 1).unwrap();
        let routed = conv2d_rows_packed(
            &input,
            0,
            h,
            0,
            h,
            &filter,
            &bias,
            3,
            1,
            1,
            Activation::Relu,
        )
        .unwrap();
        // The routed output is the Winograd path's output, bitwise.
        let wino = conv2d_rows_winograd(
            &input,
            0,
            h,
            0,
            h,
            filter.winograd().unwrap(),
            &bias,
            1,
            Activation::Relu,
        )
        .unwrap();
        assert_eq!(routed, wino, "preferred channels must route to Winograd");
        let oracle = conv2d_direct(&input, &weights, &bias, c_out, 3, 1, 1, Activation::Relu);
        assert_close_rel(&routed, &oracle, 1e-3, "routed winograd c128");
    }

    #[test]
    fn quantized_pack_routes_tracks_oracle_and_stitches() {
        use super::super::qgemm::quant_scale;
        let (c_in, c_out, h, w, f, s, p) = (8usize, 10usize, 12usize, 11usize, 3, 1, 1);
        let input = det_input(c_in, h, w);
        let weights = det_weights(c_in, c_out, f);
        let bias: Vec<f32> = (0..c_out).map(|i| (i as f32) * 0.01 - 0.05).collect();
        let scale_in = quant_scale(input.data());
        let filter = pack_conv_filter_with(&weights, c_in, c_out, f, s, Some(scale_in)).unwrap();
        assert!(filter.quant().is_some() && filter.gemm().is_none());
        let routed = conv2d_rows_packed(
            &input,
            0,
            h,
            0,
            h,
            &filter,
            &bias,
            f,
            s,
            p,
            Activation::Relu,
        )
        .unwrap();

        // Analytic quantization error bound per output element:
        // |Δout| ≤ s_w/2·Σ|a| + s_a/2·Σ|w| + K·s_a·s_w/4 (ReLU is
        // 1-Lipschitz), where Σ|a| is the receptive-field L1 of the input.
        let oracle = conv2d_direct(&input, &weights, &bias, c_out, f, s, p, Activation::Relu);
        let scale_w = filter.quant().unwrap().scale();
        let abs_in = Tensor::from_fn(input.shape(), |c, y, x| input.get(c, y, x).abs());
        let ones = vec![1.0; im2col_weight_len(c_in, 1, f)];
        let a_l1 = conv2d_direct(&abs_in, &ones, &[0.0], 1, f, s, p, Activation::None);
        let k = c_in * f * f;
        for oc in 0..c_out {
            let w_l1: f32 = weights[oc * k..(oc + 1) * k].iter().map(|v| v.abs()).sum();
            for oy in 0..routed.height() {
                for ox in 0..routed.width() {
                    let bound = 0.5 * scale_w * a_l1.get(0, oy, ox)
                        + 0.5 * scale_in * w_l1
                        + 0.25 * (k as f32) * scale_in * scale_w
                        + 1e-3 * (1.0 + oracle.get(oc, oy, ox).abs());
                    let diff = (routed.get(oc, oy, ox) - oracle.get(oc, oy, ox)).abs();
                    assert!(
                        diff <= bound,
                        "[{oc},{oy},{ox}] diff {diff} > bound {bound}"
                    );
                }
            }
        }

        // Bands computed with the same deploy-time scale stitch bit-exactly.
        let full = routed;
        let cuts = [4usize, 9, 12];
        let mut start = 0usize;
        let mut bands = Vec::new();
        for &end in &cuts {
            let (lo, hi) = input_rows_for_output(start, end, f, s, p, h);
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = conv2d_rows_packed(
                &band_in,
                lo,
                h,
                start,
                end,
                &filter,
                &bias,
                f,
                s,
                p,
                Activation::Relu,
            )
            .unwrap();
            bands.push(band);
            start = end;
        }
        let stitched = concat_rows(&bands).unwrap();
        assert_eq!(stitched, full, "quantized bands must stitch bit-exactly");
    }

    #[test]
    fn packed_path_is_bit_identical_to_per_call_packing() {
        let input = det_input(3, 14, 10);
        let weights = det_weights(3, 5, 3);
        let bias = vec![0.05; 5];
        let per_call = conv2d_rows(
            &input,
            0,
            14,
            2,
            12,
            &weights,
            &bias,
            5,
            3,
            1,
            1,
            Activation::Relu,
        )
        .unwrap();
        let filter = pack_conv_filter(&weights, 3, 5, 3, 1).unwrap();
        let prepacked = conv2d_rows_packed(
            &input,
            0,
            14,
            2,
            12,
            &filter,
            &bias,
            3,
            1,
            1,
            Activation::Relu,
        )
        .unwrap();
        assert_eq!(per_call, prepacked);
    }

    #[test]
    fn rows_band_matches_full_conv() {
        let input = det_input(3, 16, 9);
        let weights = det_weights(3, 5, 3);
        let bias = vec![0.05; 5];
        let (f, s, p) = (3, 1, 1);
        let full = conv2d(&input, &weights, &bias, 5, f, s, p, Activation::Relu);

        // Split output rows into 0..6, 6..11, 11..16 and compute each band from
        // the minimal halo slice of the input.  Bands must be *bit-exact*
        // against the full output on the GEMM path — the property the
        // distributed runtime relies on.
        let cuts = [6usize, 11, 16];
        let mut start = 0usize;
        let mut bands = Vec::new();
        for &end in &cuts {
            let (lo, hi) = input_rows_for_output(start, end, f, s, p, input.height());
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band_out = conv2d_rows(
                &band_in,
                lo,
                input.height(),
                start,
                end,
                &weights,
                &bias,
                5,
                f,
                s,
                p,
                Activation::Relu,
            )
            .unwrap();
            bands.push(band_out);
            start = end;
        }
        let stitched = concat_rows(&bands).unwrap();
        assert_eq!(stitched, full, "stitched bands must be bit-exact");
    }

    #[test]
    fn direct_rows_band_matches_direct_full() {
        let input = det_input(2, 12, 8);
        let weights = det_weights(2, 3, 3);
        let bias = vec![0.1; 3];
        let full = conv2d_direct(&input, &weights, &bias, 3, 3, 1, 1, Activation::Relu);
        let (lo, hi) = input_rows_for_output(4, 9, 3, 1, 1, 12);
        let band_in = slice_rows(&input, lo, hi).unwrap();
        let band = conv2d_rows_direct(
            &band_in,
            lo,
            12,
            4,
            9,
            &weights,
            &bias,
            3,
            3,
            1,
            1,
            Activation::Relu,
        )
        .unwrap();
        let full_band = slice_rows(&full, 4, 9).unwrap();
        assert_eq!(band, full_band);
    }

    #[test]
    fn rows_band_rejects_missing_halo() {
        let input = det_input(1, 10, 5);
        let weights = det_weights(1, 1, 3);
        let bias = vec![0.0];
        // Band carries rows 4..6 only but output rows 4..6 need input 3..7.
        let band = slice_rows(&input, 4, 6).unwrap();
        let r = conv2d_rows(
            &band,
            4,
            10,
            4,
            6,
            &weights,
            &bias,
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(r.is_err());
        let rd = conv2d_rows_direct(
            &band,
            4,
            10,
            4,
            6,
            &weights,
            &bias,
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(rd.is_err());
    }

    #[test]
    fn rejects_bad_weight_length() {
        let input = det_input(2, 5, 5);
        let r = conv2d_rows(
            &input,
            0,
            5,
            0,
            5,
            &[0.0; 10],
            &[0.0],
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(matches!(r, Err(TensorError::KernelConfig(_))));
    }

    #[test]
    fn rejects_mismatched_packed_filter() {
        // Filter packed for c_in=2 used on a 3-channel input.
        let weights = det_weights(2, 4, 3);
        let filter = pack_conv_filter(&weights, 2, 4, 3, 1).unwrap();
        let input = det_input(3, 6, 6);
        let r = conv2d_rows_packed(
            &input,
            0,
            6,
            0,
            6,
            &filter,
            &[0.0; 4],
            3,
            1,
            1,
            Activation::None,
        );
        assert!(matches!(r, Err(TensorError::KernelConfig(_))));
    }

    #[test]
    fn rejects_bad_bias_length() {
        let input = det_input(2, 5, 5);
        let weights = det_weights(2, 3, 3);
        let r = conv2d_rows(
            &input,
            0,
            5,
            0,
            5,
            &weights,
            &[0.0; 2],
            3,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(matches!(r, Err(TensorError::KernelConfig(_))));
    }

    #[test]
    fn rejects_out_of_range_output_rows() {
        let input = det_input(1, 8, 8);
        let weights = det_weights(1, 1, 3);
        let r = conv2d_rows(
            &input,
            0,
            8,
            0,
            9,
            &weights,
            &[0.0],
            1,
            3,
            1,
            1,
            Activation::None,
        );
        assert!(r.is_err());
    }
}
