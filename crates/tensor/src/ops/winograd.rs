//! Winograd F(2×2,3×3) convolution — the fast path for stride-1 3×3 layers.
//!
//! Each 2×2 block of output pixels is produced from a 4×4 input tile in the
//! transform domain: `Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A`, which spends 16
//! multiplies per 2×2×(3×3) block where the direct form spends 36 — 2.25×
//! fewer.  The element-wise products across channels are batched into 16
//! GEMMs (one per tile position, `c_out × c_in × n_tiles`) that run through
//! the same packed micro-kernel as the im2col path, so Winograd inherits
//! the register tiling, K-blocking and runtime SIMD dispatch for free.
//!
//! The transform matrices (entries are 0, ±1, ±½ — every multiply exact in
//! binary floating point):
//!
//! ```text
//! Bᵀ = [1  0 -1  0]   G = [ 1    0    0 ]   Aᵀ = [1 1  1  0]
//!      [0  1  1  0]       [ ½    ½    ½ ]        [0 1 -1 -1]
//!      [0 -1  1  0]       [ ½   -½    ½ ]
//!      [0  1  0 -1]       [ 0    0    1 ]
//! ```
//!
//! # Banding and bit-exactness
//!
//! The row-band contract of [`super::conv`] holds *bitwise*: a band of
//! output rows computed here is identical to the same rows of a full-input
//! call.  This rests on a dataflow property of Bᵀ/Aᵀ visible above: output
//! row 0 of a tile is built exclusively from input tile rows 0–2 (`Aᵀ`
//! row 0 ignores `m₃`, and Bᵀ rows 0–2 ignore `d₃`), and output row 1
//! exclusively from input tile rows 1–3 (`Aᵀ` row 1 ignores `m₀`, Bᵀ rows
//! 1–3 ignore `d₀`).  An input row the band does not carry can therefore
//! only feed *discarded* output rows of an edge tile, so loading it as
//! zero — exactly what the loader does for any row outside the band —
//! cannot perturb a kept row.  Tiles are anchored on the full-layer output
//! grid (never the band), every per-element summation has a fixed order
//! (GEMM contract over `c_in`; fixed left-to-right adds in the
//! transforms), and chunking only groups whole tiles, so banding, tiling
//! and threading are all invisible in the output bits.
//!
//! Winograd is *not* bit-identical to the im2col GEMM path (the summation
//! order differs by construction), which is why route selection in
//! [`super::conv::conv2d_rows_packed`] depends only on layer geometry:
//! every band of a layer takes the same path on every device.

use super::activation::Activation;
use super::conv::validate_band;
use super::gemm::{gemm_bias_act_into, PackedFilter, NR};
use crate::error::TensorError;
use crate::shape::Shape;
use crate::{Result, Tensor};
use rayon::prelude::*;

/// Whether a conv layer geometry *can* take the Winograd path (the
/// transform is defined for stride-1 3×3 only).
pub const fn winograd_eligible(f: usize, stride: usize) -> bool {
    f == 3 && stride == 1
}

/// Whether the Winograd path is *profitable* for an eligible layer.
///
/// The 2.25× multiply saving has to amortise the input/inverse transforms,
/// whose cost is linear in `c_in + c_out` while the GEMM stage scales with
/// `c_in · c_out` — so thin layers (the RGB stem above all, where the
/// GEMMs are K=3 slivers) run *slower* than im2col GEMM.  Channel counts
/// are layer geometry, never band shape, so routing on them preserves the
/// band-stitch bit-exactness contract: every band of a layer takes the
/// same path on every device.  The threshold comes from the kernel bench
/// (`BENCH_kernels.json`): the crossover sits near 128 channels per side.
pub const fn winograd_preferred(c_in: usize, c_out: usize) -> bool {
    c_in >= 128 && c_out >= 128
}

/// Per-chunk scratch budget in floats (V + M buffers, ~2 MiB) — bounds how
/// many tiles are in flight so the transform-domain matrices stay
/// cache-resident between the transform, GEMM and inverse stages.
const SCRATCH_FLOATS: usize = 512 * 1024;

/// A 3×3 filter bank transformed into the Winograd domain and packed for
/// the GEMM micro-kernel: `u[t]` holds the `c_out × c_in` matrix of
/// `U = G g Gᵀ` values at tile position `t = 4·r + c`.
///
/// Built once at deploy time (inside
/// [`super::conv::pack_conv_filter`]); ~16/9 the resident bytes of the
/// im2col panels for the same layer.
#[derive(Debug, Clone)]
pub struct WinogradFilter {
    c_in: usize,
    u: Vec<PackedFilter>,
}

impl WinogradFilter {
    /// Transforms `[c_out][c_in][3][3]` weights into 16 packed
    /// `c_out × c_in` tile-position matrices.
    pub fn pack(weights: &[f32], c_in: usize, c_out: usize) -> Result<Self> {
        if weights.len() != c_out * c_in * 9 {
            return Err(TensorError::KernelConfig(format!(
                "winograd weights length {} != c_out*c_in*9 = {}",
                weights.len(),
                c_out * c_in * 9
            )));
        }
        let mut mats = vec![vec![0.0f32; c_out * c_in]; 16];
        for oc in 0..c_out {
            for ic in 0..c_in {
                let g = &weights[(oc * c_in + ic) * 9..][..9];
                // t = G·g (4×3): rows g₀ ; ½(g₀+g₁+g₂) ; ½(g₀−g₁+g₂) ; g₂.
                let mut t = [[0.0f32; 3]; 4];
                for j in 0..3 {
                    let (g0, g1, g2) = (g[j], g[3 + j], g[6 + j]);
                    t[0][j] = g0;
                    t[1][j] = 0.5 * (g0 + g1 + g2);
                    t[2][j] = 0.5 * (g0 - g1 + g2);
                    t[3][j] = g2;
                }
                // U = t·Gᵀ (4×4): the same pattern across each row's columns.
                for r in 0..4 {
                    let (t0, t1, t2) = (t[r][0], t[r][1], t[r][2]);
                    let u = [t0, 0.5 * (t0 + t1 + t2), 0.5 * (t0 - t1 + t2), t2];
                    for (c, &v) in u.iter().enumerate() {
                        mats[r * 4 + c][oc * c_in + ic] = v;
                    }
                }
            }
        }
        let u = mats
            .iter()
            .map(|m| PackedFilter::pack(m, c_out, c_in))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { c_in, u })
    }

    /// Number of output channels.
    pub fn c_out(&self) -> usize {
        self.u[0].m()
    }

    /// Number of input channels.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Bytes held by the 16 packed tile-position matrices.
    pub fn bytes(&self) -> usize {
        self.u.iter().map(PackedFilter::bytes).sum()
    }
}

/// Winograd convolution of a row band — band semantics identical to
/// [`super::conv::conv2d_rows`] with `f = 3`, `stride = 1`.
///
/// Public so equivalence tests and benches can pin this path directly;
/// production code goes through [`super::conv::conv2d_rows_packed`], which
/// routes here only when [`winograd_preferred`] says the layer is big
/// enough to win.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_rows_winograd(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    filter: &WinogradFilter,
    bias: &[f32],
    padding: usize,
    act: Activation,
) -> Result<Tensor> {
    let c_out = filter.c_out();
    let geom = validate_band(
        input,
        in_row_offset,
        orig_h_in,
        out_start,
        out_end,
        bias.len(),
        c_out,
        3,
        1,
        padding,
    )?;
    if filter.c_in != geom.c_in {
        return Err(TensorError::KernelConfig(format!(
            "winograd filter c_in {} != input channels {}",
            filter.c_in, geom.c_in
        )));
    }
    let (c_in, band_h, w_in, out_w) = (geom.c_in, geom.band_h, geom.w_in, geom.out_w);
    let out_rows = out_end - out_start;
    let in_data = input.data();
    let pad = padding as isize;

    // Tile grid in *full-layer* coordinates: tile (ty, tx) produces output
    // rows 2ty..2ty+2 and columns 2tx..2tx+2.  The band covers tile rows
    // [ty0, ty1); edge tiles may stick out of the band (rows discarded).
    let tiles_x = out_w.div_ceil(2);
    let ty0 = out_start / 2;
    let ty1 = (out_end - 1) / 2 + 1;

    // Whole tile rows per chunk, sized to the scratch budget.
    let nt_cap = (SCRATCH_FLOATS / (16 * (c_in + c_out))).max(tiles_x);
    let chunk_ty = (nt_cap / tiles_x).max(1);
    let nt_max = chunk_ty.min(ty1 - ty0) * tiles_x;

    // Interior tile-column range: every load `ix = 2·tx − pad + c`,
    // `c ∈ 0..4`, lands inside `[0, w_in)` — no bounds checks needed.
    let tx_int_lo = padding.div_ceil(2).min(tiles_x);
    let tx_int_hi = if w_in + padding >= 4 {
        (((w_in + padding - 4) / 2) + 1).clamp(tx_int_lo, tiles_x)
    } else {
        tx_int_lo
    };

    let zero_bias = vec![0.0f32; c_out];
    let mut data = vec![0.0f32; c_out * out_rows * out_w];
    // V / M scratch reused across chunks (the budget keeps both ~1 MiB).
    let mut v = vec![0.0f32; c_in * 16 * nt_max];
    let mut m = vec![0.0f32; 16 * c_out * nt_max];

    let mut cy0 = ty0;
    while cy0 < ty1 {
        let cy1 = (cy0 + chunk_ty).min(ty1);
        let nt = (cy1 - cy0) * tiles_x;

        // Stage 1 — input transform, parallel over input-channel planes:
        // V[ic][t][j] = (Bᵀ d B) at tile position t for tile j.
        v[..c_in * 16 * nt]
            .par_chunks_mut(16 * nt)
            .enumerate()
            .for_each(|(ic, vplane)| {
                let plane = &in_data[ic * band_h * w_in..(ic + 1) * band_h * w_in];
                // Generic tile: anything outside the band (zero padding *or*
                // halo rows this band does not carry — see the module docs)
                // reads as zero.
                let edge_tile = |vplane: &mut [f32], ti: usize, tyi: usize, tx: usize| {
                    let mut d = [[0.0f32; 4]; 4];
                    let iy_base = 2 * tyi as isize - pad;
                    let ix_base = 2 * tx as isize - pad;
                    for (r, dr) in d.iter_mut().enumerate() {
                        let iy = iy_base + r as isize;
                        if iy < in_row_offset as isize || iy >= (in_row_offset + band_h) as isize {
                            continue;
                        }
                        let row = &plane[(iy as usize - in_row_offset) * w_in..];
                        for (c, dv) in dr.iter_mut().enumerate() {
                            let ix = ix_base + c as isize;
                            if ix >= 0 && ix < w_in as isize {
                                *dv = row[ix as usize];
                            }
                        }
                    }
                    // Bᵀ·d (rows), then ·B (columns) — fixed add order.
                    let mut t = [[0.0f32; 4]; 4];
                    for j in 0..4 {
                        t[0][j] = d[0][j] - d[2][j];
                        t[1][j] = d[1][j] + d[2][j];
                        t[2][j] = d[2][j] - d[1][j];
                        t[3][j] = d[1][j] - d[3][j];
                    }
                    for (r, tr) in t.iter().enumerate() {
                        let vr = [tr[0] - tr[2], tr[1] + tr[2], tr[2] - tr[1], tr[1] - tr[3]];
                        for (c, &vv) in vr.iter().enumerate() {
                            vplane[(r * 4 + c) * nt + ti] = vv;
                        }
                    }
                };
                for tyi in cy0..cy1 {
                    let row0 = (tyi - cy0) * tiles_x;
                    let iy_base = 2 * tyi as isize - pad;
                    let interior_rows = iy_base >= in_row_offset as isize
                        && iy_base + 3 < (in_row_offset + band_h) as isize;
                    if !interior_rows {
                        for tx in 0..tiles_x {
                            edge_tile(vplane, row0 + tx, tyi, tx);
                        }
                        continue;
                    }
                    for tx in 0..tx_int_lo {
                        edge_tile(vplane, row0 + tx, tyi, tx);
                    }
                    // Interior fast path: four in-bounds row slices, no
                    // per-element checks.  Same expression tree as
                    // `edge_tile` — bitwise identical results.
                    let base = (iy_base as usize - in_row_offset) * w_in;
                    let rows: [&[f32]; 4] =
                        std::array::from_fn(|r| &plane[base + r * w_in..base + r * w_in + w_in]);
                    for tx in tx_int_lo..tx_int_hi {
                        let ti = row0 + tx;
                        let ix = 2 * tx - padding;
                        let mut t = [[0.0f32; 4]; 4];
                        for (c, j) in (ix..ix + 4).enumerate() {
                            let (d0, d1, d2, d3) = (rows[0][j], rows[1][j], rows[2][j], rows[3][j]);
                            t[0][c] = d0 - d2;
                            t[1][c] = d1 + d2;
                            t[2][c] = d2 - d1;
                            t[3][c] = d1 - d3;
                        }
                        for (r, tr) in t.iter().enumerate() {
                            let o = (r * 4) * nt + ti;
                            vplane[o] = tr[0] - tr[2];
                            vplane[o + nt] = tr[1] + tr[2];
                            vplane[o + 2 * nt] = tr[2] - tr[1];
                            vplane[o + 3 * nt] = tr[1] - tr[3];
                        }
                    }
                    for tx in tx_int_hi..tiles_x {
                        edge_tile(vplane, row0 + tx, tyi, tx);
                    }
                }
            });

        // Stage 2 — 16 batched GEMMs through the packed micro-kernel:
        // M[t] = U[t] · V[t], each `c_out × c_in × nt`.
        for (t, mt) in m[..16 * c_out * nt].chunks_mut(c_out * nt).enumerate() {
            let vt = &v;
            let fill = move |k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [f32]| {
                let kc = k1 - k0;
                for kk in 0..kc {
                    let src = &vt[((k0 + kk) * 16 + t) * nt + j0..][..j1 - j0];
                    let mut jj = 0usize;
                    while jj < src.len() {
                        let take = NR.min(src.len() - jj);
                        let dst = ((jj / NR) * kc + kk) * NR;
                        buf[dst..dst + take].copy_from_slice(&src[jj..jj + take]);
                        jj += take;
                    }
                }
            };
            gemm_bias_act_into(&filter.u[t], &zero_bias, Activation::None, nt, &fill, mt)?;
        }

        // Stage 3 — inverse transform + bias + activation, parallel over
        // output-channel planes, scattering 2×2 blocks into place.
        let oy_lo = out_start.max(2 * cy0);
        let oy_hi = out_end.min(2 * cy1);
        // Tile columns whose 2×2 block is entirely inside the output width.
        let tx_full = out_w / 2;
        let mslice = &m[..16 * c_out * nt];
        data.par_chunks_mut(out_rows * out_w)
            .enumerate()
            .for_each(|(oc, oplane)| {
                let b = bias[oc];
                // The 16 tile-position planes of this output channel.
                let mp: [&[f32]; 16] =
                    std::array::from_fn(|t| &mslice[(t * c_out + oc) * nt..][..nt]);
                // Generic tile: per-row/per-column clipping against the band
                // and the output width.
                let edge_tile = |oplane: &mut [f32], ti: usize, tyi: usize, tx: usize| {
                    let mut m4 = [[0.0f32; 4]; 4];
                    for (r, mr) in m4.iter_mut().enumerate() {
                        for (c, mv) in mr.iter_mut().enumerate() {
                            *mv = mp[r * 4 + c][ti];
                        }
                    }
                    // s = Aᵀ·m, then y = s·A — fixed add order again.
                    let mut s = [[0.0f32; 4]; 2];
                    for j in 0..4 {
                        s[0][j] = m4[0][j] + m4[1][j] + m4[2][j];
                        s[1][j] = (m4[1][j] - m4[2][j]) - m4[3][j];
                    }
                    for (r, sr) in s.iter().enumerate() {
                        let oy = 2 * tyi + r;
                        if oy < oy_lo || oy >= oy_hi {
                            continue;
                        }
                        let y = [sr[0] + sr[1] + sr[2], (sr[1] - sr[2]) - sr[3]];
                        let orow = (oy - out_start) * out_w;
                        for (dx, &yv) in y.iter().enumerate() {
                            let ox = 2 * tx + dx;
                            if ox < out_w {
                                oplane[orow + ox] = act.apply(b + yv);
                            }
                        }
                    }
                };
                for tyi in cy0..cy1 {
                    let row0 = (tyi - cy0) * tiles_x;
                    let oy = 2 * tyi;
                    if oy < oy_lo || oy + 1 >= oy_hi {
                        for tx in 0..tiles_x {
                            edge_tile(oplane, row0 + tx, tyi, tx);
                        }
                        continue;
                    }
                    // Interior fast path: both output rows and both columns
                    // land in the band — no clipping.  Same expression tree
                    // as `edge_tile` — bitwise identical results.
                    let orow = (oy - out_start) * out_w;
                    for tx in 0..tx_full {
                        let ti = row0 + tx;
                        let mut s = [[0.0f32; 4]; 2];
                        for j in 0..4 {
                            let (m0, m1, m2, m3) =
                                (mp[j][ti], mp[4 + j][ti], mp[8 + j][ti], mp[12 + j][ti]);
                            s[0][j] = m0 + m1 + m2;
                            s[1][j] = (m1 - m2) - m3;
                        }
                        let o = orow + 2 * tx;
                        oplane[o] = act.apply(b + (s[0][0] + s[0][1] + s[0][2]));
                        oplane[o + 1] = act.apply(b + ((s[0][1] - s[0][2]) - s[0][3]));
                        oplane[o + out_w] = act.apply(b + (s[1][0] + s[1][1] + s[1][2]));
                        oplane[o + out_w + 1] = act.apply(b + ((s[1][1] - s[1][2]) - s[1][3]));
                    }
                    for tx in tx_full..tiles_x {
                        edge_tile(oplane, row0 + tx, tyi, tx);
                    }
                }
            });

        cy0 = cy1;
    }
    Tensor::from_vec(Shape::new(c_out, out_rows, out_w), data)
}

#[cfg(test)]
mod tests {
    use super::super::conv::{conv2d_direct, conv2d_rows, im2col_weight_len};
    use super::*;
    use crate::shape::input_rows_for_output;
    use crate::slice::{concat_rows, slice_rows};

    fn det_weights(c_in: usize, c_out: usize) -> Vec<f32> {
        (0..im2col_weight_len(c_in, c_out, 3))
            .map(|i| ((i % 7) as f32 - 3.0) * 0.25)
            .collect()
    }

    fn det_input(c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_fn([c, h, w], |c, y, x| {
            ((c * 31 + y * 7 + x * 3) % 11) as f32 * 0.5 - 2.0
        })
    }

    #[test]
    fn eligibility_is_stride1_3x3_only() {
        assert!(winograd_eligible(3, 1));
        assert!(!winograd_eligible(3, 2));
        assert!(!winograd_eligible(1, 1));
        assert!(!winograd_eligible(5, 1));
    }

    #[test]
    fn filter_transform_of_ones_matches_hand_computation() {
        // g = all ones: G·g·Gᵀ has rows (1, 3/2, 1/2, 1) scaled by the same
        // column pattern — U[0][0]=1, U[1][1]=9/4, U[3][3]=1, U[0][1]=3/2.
        let f = WinogradFilter::pack(&[1.0; 9], 1, 1).unwrap();
        // A 1×1-channel matrix packs its single value at panel slot 0.
        let at = |t: usize| f.u[t].panel(0, 0, 1)[0];
        assert_eq!(at(0), 1.0);
        assert_eq!(at(1), 1.5);
        assert_eq!(at(5), 2.25);
        assert_eq!(at(15), 1.0);
    }

    #[test]
    fn matches_direct_oracle_within_relative_tolerance() {
        for &(c_in, c_out, h, w, p) in &[
            (1usize, 1usize, 6usize, 6usize, 1usize),
            (3, 5, 13, 11, 1),
            (2, 4, 9, 16, 0),
            (4, 3, 7, 7, 1),
        ] {
            let input = det_input(c_in, h, w);
            let weights = det_weights(c_in, c_out);
            let bias: Vec<f32> = (0..c_out).map(|i| (i as f32) * 0.1 - 0.2).collect();
            let filter = WinogradFilter::pack(&weights, c_in, c_out).unwrap();
            let got = conv2d_rows_winograd(
                &input,
                0,
                h,
                0,
                h + 2 * p - 2,
                &filter,
                &bias,
                p,
                Activation::Relu,
            )
            .unwrap();
            let want = conv2d_direct(&input, &weights, &bias, c_out, 3, 1, p, Activation::Relu);
            assert_eq!(got.shape(), want.shape());
            for (i, (&a, &b)) in got.data().iter().zip(want.data()).enumerate() {
                let tol = 1e-3 * (1.0 + a.abs().max(b.abs()));
                assert!(
                    (a - b).abs() <= tol,
                    "({c_in},{c_out},{h},{w},p{p})[{i}]: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn bands_stitch_bit_exactly_including_odd_cuts() {
        // Odd band boundaries split 2×2 output tiles across bands — the
        // hardest case for the zero-fill halo argument in the module docs.
        let (c_in, c_out, h, w, p) = (3, 4, 17, 13, 1);
        let input = det_input(c_in, h, w);
        let weights = det_weights(c_in, c_out);
        let bias = vec![0.05; c_out];
        let full = conv2d_rows(
            &input,
            0,
            h,
            0,
            h,
            &weights,
            &bias,
            c_out,
            3,
            1,
            p,
            Activation::Relu,
        )
        .unwrap();

        let cuts = [5usize, 8, 13, 17];
        let mut start = 0usize;
        let mut bands = Vec::new();
        for &end in &cuts {
            let (lo, hi) = input_rows_for_output(start, end, 3, 1, p, h);
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = conv2d_rows(
                &band_in,
                lo,
                h,
                start,
                end,
                &weights,
                &bias,
                c_out,
                3,
                1,
                p,
                Activation::Relu,
            )
            .unwrap();
            bands.push(band);
            start = end;
        }
        assert_eq!(concat_rows(&bands).unwrap(), full);
    }

    #[test]
    fn rejects_channel_mismatch() {
        let filter = WinogradFilter::pack(&det_weights(2, 3), 2, 3).unwrap();
        let input = det_input(3, 6, 6);
        let r = conv2d_rows_winograd(&input, 0, 6, 0, 6, &filter, &[0.0; 3], 1, Activation::None);
        assert!(matches!(r, Err(TensorError::KernelConfig(_))));
    }

    #[test]
    fn rejects_bad_weight_length() {
        assert!(WinogradFilter::pack(&[0.0; 10], 1, 1).is_err());
    }
}
