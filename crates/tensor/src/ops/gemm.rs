//! Cache-blocked, register-tiled f32 GEMM with fused bias + activation —
//! the compute core of the packed convolution and linear paths.
//!
//! The kernel computes `C[r][j] = act(bias[r] + Σ_k A[r][k] · B[k][j])`
//! where `A` is a weight matrix prepacked into [`PackedFilter`] row panels
//! (ideally once, at deploy time) and `B` is produced on the fly in column
//! panels by a caller-supplied filler — the im2col lowering for
//! convolutions, a trivial copy for linear layers.
//!
//! Three levels of blocking:
//!
//! * **register tile** — the micro-kernel holds an `MR × NR` accumulator
//!   block in registers and streams one A panel against one B panel;
//! * **K blocking** — the shared dimension is processed in slices of at
//!   most [`KC`], so one B slice (≤ `KC × tile` floats) stays cache-hot
//!   while every A panel streams over it;
//! * **parallel tiles** — wide outputs are split into *column tiles* (for
//!   convolutions these are row bands of the output image) processed by
//!   rayon tasks; narrow outputs (the FC head, where `n` is 1) parallelise
//!   over row-panel groups instead, because column tiling would starve
//!   every core but one.
//!
//! Numerical contract: for a given output element, additions happen in
//! exactly the order `bias, k=0, 1, …, K-1` — a single accumulator, never
//! split across `k`, each step a separate IEEE multiply then add (never a
//! fused multiply-add) — regardless of tile sizes, thread counts, whether
//! the columns were computed in one call or many, or which micro-kernel
//! arm ([`super::dispatch`]) executed it.  This is what makes the packed
//! path deterministic: a band computed on a provider is bit-identical to
//! the same rows of a full-output call even across machines with different
//! SIMD capability, so the runtime's bit-exactness guarantees survive the
//! fast path.

use super::activation::Activation;
use super::dispatch::{kernel_arch, KernelArch};
use crate::error::TensorError;
use crate::Result;
use rayon::prelude::*;

/// Rows per register tile (output channels / features per micro-kernel).
/// Six rows × sixteen columns fills the 256-bit register file: twelve
/// `ymm` accumulators plus two B-panel vectors and one broadcast leave one
/// register spare.
pub const MR: usize = 6;
/// Columns per register tile (output pixels per micro-kernel).
pub const NR: usize = 16;
/// K-dimension block: one B slice is at most `KC × tile` floats.
pub const KC: usize = 256;

/// A weight matrix `[m][k]` repacked into `MR`-row panels for the
/// micro-kernel: panel `p` holds rows `p*MR ..`, stored k-major
/// (`data[(p*k + kk)*MR + r] = w[p*MR + r][kk]`), zero-padded to a full
/// panel so the kernel never branches on the row edge.
///
/// Packing is pure data movement — no arithmetic — so a GEMM over a
/// prepacked filter is bit-identical to one that packs on the fly.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFilter {
    m: usize,
    k: usize,
    data: Vec<f32>,
}

impl PackedFilter {
    /// Packs a row-major `[m][k]` weight matrix into micro-kernel panels.
    pub fn pack(weights: &[f32], m: usize, k: usize) -> Result<Self> {
        if weights.len() != m * k {
            return Err(TensorError::KernelConfig(format!(
                "packed filter expects {m}x{k} = {} weights, got {}",
                m * k,
                weights.len()
            )));
        }
        let panels = m.div_ceil(MR);
        let mut data = vec![0.0f32; panels * k * MR];
        for p in 0..panels {
            let rows = (m - p * MR).min(MR);
            let base = p * k * MR;
            // Row-outer order: each source row is read contiguously and the
            // panel written at stride MR — cache-friendly for the ~100 M
            // element FC matrices packed at deploy.
            for r in 0..rows {
                let row = &weights[(p * MR + r) * k..(p * MR + r + 1) * k];
                for (kk, &v) in row.iter().enumerate() {
                    data[base + kk * MR + r] = v;
                }
            }
        }
        Ok(Self { m, k, data })
    }

    /// Number of output rows (channels / features).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Shared dimension length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Bytes held by the packed panels (including row padding).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The packed panel of rows `p*MR ..`, restricted to k slice
    /// `[k0, k1)`: a contiguous `(k1-k0) × MR` block.
    #[inline]
    pub(super) fn panel(&self, p: usize, k0: usize, k1: usize) -> &[f32] {
        let base = p * self.k * MR;
        &self.data[base + k0 * MR..base + k1 * MR]
    }
}

/// A B-panel filler: `fill(k0, k1, j0, j1, buf)` writes B values for k rows
/// `[k0, k1)` and output columns `[j0, j1)` into `buf`, which is laid out in
/// `NR`-column panels (`buf[(q*(k1-k0) + kk)*NR + jj] = B[k0+kk][j0 + q*NR
/// + jj]`).  `buf` arrives zeroed; the filler only writes non-zero entries.
pub trait PanelFill: Sync {
    /// Writes one k-slice of B panels (see trait docs for the layout).
    fn fill(&self, k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [f32]);
}

impl<F> PanelFill for F
where
    F: Fn(usize, usize, usize, usize, &mut [f32]) + Sync,
{
    fn fill(&self, k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [f32]) {
        self(k0, k1, j0, j1, buf)
    }
}

/// Column tiles switch to row-panel parallelism below this width.
const MIN_COLS_FOR_TILING: usize = 4 * NR;
/// Parallel grain target: aim for this many tasks per available thread.
const TASKS_PER_THREAD: usize = 3;
/// Upper bound on a column tile.  Every A row panel re-streams the tile's
/// B slice once per K block, so the slice (`KC × MAX_TILE_COLS` floats,
/// 256 KiB) must stay L2-resident; letting it grow toward L3 costs ~35% on
/// wide layers (56×56 images on few cores reach multi-thousand-column
/// tiles without this cap).
const MAX_TILE_COLS: usize = 256;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Computes `out = act(bias + A·B)` into a row-major `[m][n]` buffer, with
/// `A` prepacked and `B` produced by `fill` (see [`PanelFill`]).
pub fn gemm_bias_act_into<F: PanelFill>(
    a: &PackedFilter,
    bias: &[f32],
    act: Activation,
    n: usize,
    fill: &F,
    out: &mut [f32],
) -> Result<()> {
    let (m, k) = (a.m, a.k);
    if bias.len() != m {
        return Err(TensorError::KernelConfig(format!(
            "gemm bias length {} != m {m}",
            bias.len()
        )));
    }
    if out.len() != m * n {
        return Err(TensorError::KernelConfig(format!(
            "gemm output length {} != m*n = {}",
            out.len(),
            m * n
        )));
    }
    if n == 0 || m == 0 {
        return Ok(());
    }
    // Resolve the micro-kernel arm once per call and pass it down by value:
    // every rayon task inside this call runs the same arm, so a concurrent
    // override flip can never mix arms within one output.
    let arch = kernel_arch();

    if n >= MIN_COLS_FOR_TILING {
        // Wide output: parallelise over column tiles (output row bands for
        // the convolution caller).  Each task owns a private C tile and B
        // slice; tiles are scattered into `out` afterwards.
        let tile = n
            .div_ceil(TASKS_PER_THREAD * num_threads())
            .next_multiple_of(NR)
            .clamp(NR, MAX_TILE_COLS);
        let tiles = n.div_ceil(tile);
        let blocks: Vec<(usize, usize, Vec<f32>)> = (0..tiles)
            .into_par_iter()
            .map(|t| {
                let j0 = t * tile;
                let j1 = (j0 + tile).min(n);
                let tn = j1 - j0;
                let panels = tn.div_ceil(NR);
                let mut ctile = vec![0.0f32; m * tn];
                let mut bbuf = vec![0.0f32; panels * KC.min(k) * NR];
                for k0 in (0..k).step_by(KC) {
                    let k1 = (k0 + KC).min(k);
                    let bslice = &mut bbuf[..panels * (k1 - k0) * NR];
                    bslice.fill(0.0);
                    fill.fill(k0, k1, j0, j1, bslice);
                    gemm_block(
                        arch,
                        a,
                        0,
                        m,
                        k0,
                        k1,
                        bslice,
                        k1 - k0,
                        k0,
                        tn,
                        bias,
                        act,
                        &mut ctile,
                        tn,
                    );
                }
                (j0, j1, ctile)
            })
            .collect();
        for (j0, j1, ctile) in blocks {
            let tn = j1 - j0;
            for r in 0..m {
                out[r * n + j0..r * n + j1].copy_from_slice(&ctile[r * tn..(r + 1) * tn]);
            }
        }
    } else {
        // Narrow output (the FC / GEMV case): one shared B, parallelise
        // over row-panel groups writing disjoint chunks of `out` in place.
        let panels = n.div_ceil(NR);
        let mut bbuf = vec![0.0f32; panels * k * NR];
        // The narrow-path B is laid out whole-k (panel stride k*NR), so
        // fill per slice into a staging view with the sliced layout, then
        // interleave.  With panels == 1 (n <= NR, the common FC case) the
        // layouts coincide and no staging is needed.
        let mut stage = vec![
            0.0f32;
            if panels > 1 {
                panels * KC.min(k) * NR
            } else {
                0
            }
        ];
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            if panels == 1 {
                fill.fill(k0, k1, 0, n, &mut bbuf[k0 * NR..k1 * NR]);
            } else {
                let kc = k1 - k0;
                let slice = &mut stage[..panels * kc * NR];
                slice.fill(0.0);
                fill.fill(k0, k1, 0, n, slice);
                for q in 0..panels {
                    let dst = q * k * NR + k0 * NR;
                    bbuf[dst..dst + kc * NR]
                        .copy_from_slice(&slice[q * kc * NR..(q + 1) * kc * NR]);
                }
            }
        }
        let group_rows = m
            .div_ceil(TASKS_PER_THREAD * num_threads())
            .next_multiple_of(MR)
            .min(m.next_multiple_of(MR));
        out.par_chunks_mut(group_rows * n)
            .enumerate()
            .for_each(|(g, chunk)| {
                let r0 = g * group_rows;
                let r1 = (r0 + group_rows).min(m);
                for k0 in (0..k).step_by(KC) {
                    let k1 = (k0 + KC).min(k);
                    // Re-slice the whole-k B into this k block's panels.
                    gemm_block(arch, a, r0, r1, k0, k1, &bbuf, k, 0, n, bias, act, chunk, n);
                }
            });
    }
    Ok(())
}

/// One K-slice GEMM update over rows `[r0, r1)` (with `r0 % MR == 0`):
/// `C += A[:, k0..k1] · B[k0..k1]`, initialising C from `bias` on the first
/// slice (`k0 == 0`) and applying `act` on the last (`k1 == K`).
///
/// `b` holds `ceil(n/NR)` column panels; each panel stores k rows
/// `[b_k0, b_k0 + b_panel_rows)` — `(k0, kc)` for the per-slice layout the
/// wide path fills, `(0, K)` for the whole-k layout the narrow path shares
/// across row tasks.  `c` covers rows `[r0, r1)` with row stride `c_stride`.
#[allow(clippy::too_many_arguments)]
fn gemm_block(
    arch: KernelArch,
    a: &PackedFilter,
    r0: usize,
    r1: usize,
    k0: usize,
    k1: usize,
    b: &[f32],
    b_panel_rows: usize,
    b_k0: usize,
    n: usize,
    bias: &[f32],
    act: Activation,
    c: &mut [f32],
    c_stride: usize,
) {
    debug_assert_eq!(r0 % MR, 0);
    let kc = k1 - k0;
    let first = k0 == 0;
    let last = k1 == a.k;
    let panels_n = n.div_ceil(NR);
    for q in 0..panels_n {
        let j0 = q * NR;
        let jn = (n - j0).min(NR);
        let start = q * b_panel_rows * NR + (k0 - b_k0) * NR;
        let bpanel = &b[start..start + kc * NR];
        let mut p = r0 / MR;
        while p * MR < r1 {
            let rows = (r1 - p * MR).min(MR);
            let mut acc = [[0.0f32; NR]; MR];
            if first {
                for r in 0..rows {
                    acc[r] = [bias[p * MR + r]; NR];
                }
            } else {
                for r in 0..rows {
                    let row = &c[(p * MR + r - r0) * c_stride + j0..][..jn];
                    acc[r][..jn].copy_from_slice(row);
                }
            }
            microkernel(arch, a.panel(p, k0, k1), bpanel, &mut acc);
            for r in 0..rows {
                let row = &mut c[(p * MR + r - r0) * c_stride + j0..][..jn];
                if last {
                    for (dst, v) in row.iter_mut().zip(acc[r].iter()) {
                        *dst = act.apply(*v);
                    }
                } else {
                    row.copy_from_slice(&acc[r][..jn]);
                }
            }
            p += 1;
        }
    }
}

/// The register tile: streams one A panel (`kc × MR`) against one B panel
/// (`kc × NR`), accumulating `MR × NR` partial sums through the dispatched
/// micro-kernel arm.  Every arm performs the identical per-element op
/// sequence (`acc = acc + a·b`, separate multiply and add, `k` ascending),
/// so the arms are bit-interchangeable — the order every caller relies on.
#[inline]
fn microkernel(arch: KernelArch, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    match arch {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kernel_arch()` clamps to CPUID-detected capability, so
        // the required target features are present when these arms are
        // selected.
        KernelArch::Avx512 => unsafe { microkernel_avx512(a, b, acc) },
        #[cfg(target_arch = "x86_64")]
        KernelArch::Avx2 => unsafe { microkernel_avx2(a, b, acc) },
        _ => microkernel_scalar(a, b, acc),
    }
}

/// Portable micro-kernel — the always-available dispatch floor.  The `j`
/// loop is over independent output elements, so the compiler may vectorise
/// it without reordering the `k` accumulation.
#[inline]
fn microkernel_scalar(a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = av[r];
            let row = &mut acc[r];
            for (j, &bj) in bv.iter().enumerate() {
                row[j] += ar * bj;
            }
        }
    }
}

/// 256-bit explicit micro-kernel: the whole `MR × NR` accumulator tile
/// lives in twelve `ymm` registers (two per row), with one broadcast and
/// two B vectors in flight.  Multiply and add are issued as separate
/// instructions — see [`super::dispatch`] for why fusing is off the table.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2, `a.len() == kc*MR` and
/// `b.len() == kc*NR` for the same `kc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len() / MR, b.len() / NR);
    let kc = a.len() / MR;
    let cp = acc.as_mut_ptr() as *mut f32;
    // Load the accumulator tile: rows r at lanes [0,8) and [8,16).
    let mut c0 = [_mm256_setzero_ps(); MR];
    let mut c1 = [_mm256_setzero_ps(); MR];
    for r in 0..MR {
        c0[r] = _mm256_loadu_ps(cp.add(r * NR));
        c1[r] = _mm256_loadu_ps(cp.add(r * NR + 8));
    }
    let mut pa = a.as_ptr();
    let mut pb = b.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(pb);
        let b1 = _mm256_loadu_ps(pb.add(8));
        for r in 0..MR {
            let ar = _mm256_set1_ps(*pa.add(r));
            c0[r] = _mm256_add_ps(c0[r], _mm256_mul_ps(ar, b0));
            c1[r] = _mm256_add_ps(c1[r], _mm256_mul_ps(ar, b1));
        }
        pa = pa.add(MR);
        pb = pb.add(NR);
    }
    for r in 0..MR {
        _mm256_storeu_ps(cp.add(r * NR), c0[r]);
        _mm256_storeu_ps(cp.add(r * NR + 8), c1[r]);
    }
}

/// 512-bit explicit micro-kernel: one `zmm` register holds a whole
/// `NR`-column accumulator row, six in flight.  Same non-fused op sequence
/// as every other arm.
///
/// # Safety
/// Caller must ensure the CPU supports AVX-512F, `a.len() == kc*MR` and
/// `b.len() == kc*NR` for the same `kc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn microkernel_avx512(a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len() / MR, b.len() / NR);
    let kc = a.len() / MR;
    let cp = acc.as_mut_ptr() as *mut f32;
    let mut c = [_mm512_setzero_ps(); MR];
    for (r, cr) in c.iter_mut().enumerate() {
        *cr = _mm512_loadu_ps(cp.add(r * NR));
    }
    let mut pa = a.as_ptr();
    let mut pb = b.as_ptr();
    for _ in 0..kc {
        let bv = _mm512_loadu_ps(pb);
        for (r, cr) in c.iter_mut().enumerate() {
            let ar = _mm512_set1_ps(*pa.add(r));
            *cr = _mm512_add_ps(*cr, _mm512_mul_ps(ar, bv));
        }
        pa = pa.add(MR);
        pb = pb.add(NR);
    }
    for (r, cr) in c.iter().enumerate() {
        _mm512_storeu_ps(cp.add(r * NR), *cr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_fill(bmat: &[f32], n_total: usize) -> impl PanelFill + '_ {
        move |k0: usize, k1: usize, j0: usize, j1: usize, buf: &mut [f32]| {
            let kc = k1 - k0;
            for kk in 0..kc {
                for j in j0..j1 {
                    let jj = j - j0;
                    let (q, lane) = (jj / NR, jj % NR);
                    buf[(q * kc + kk) * NR + lane] = bmat[(k0 + kk) * n_total + j];
                }
            }
        }
    }

    fn reference(
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        act: Activation,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for r in 0..m {
            for j in 0..n {
                let mut acc = bias[r];
                for kk in 0..k {
                    acc += a[r * k + kk] * b[kk * n + j];
                }
                out[r * n + j] = act.apply(acc);
            }
        }
        out
    }

    fn det(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
                ((v % 512) as f32 / 256.0) - 1.0
            })
            .collect()
    }

    #[test]
    fn pack_layout_round_trips() {
        let (m, k) = (MR + 1, 3);
        let w: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        let packed = PackedFilter::pack(&w, m, k).unwrap();
        assert_eq!(packed.m(), m);
        assert_eq!(packed.k(), k);
        // Panel 0 rows 0..MR, panel 1 holds row MR plus zero padding.
        let p0 = packed.panel(0, 0, k);
        assert_eq!(p0[0], w[0]); // row 0, k 0
        assert_eq!(p0[1], w[k]); // row 1, k 0
        assert_eq!(p0[MR], w[1]); // row 0, k 1
        let p1 = packed.panel(1, 0, k);
        assert_eq!(p1[0], w[MR * k]); // row MR, k 0
        assert_eq!(p1[1], 0.0); // padding row
    }

    #[test]
    fn pack_rejects_bad_length() {
        assert!(PackedFilter::pack(&[0.0; 5], 2, 3).is_err());
    }

    #[test]
    fn matches_reference_across_shapes() {
        // Exercise both parallel strategies, panel edges and K blocking.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),      // narrow path, row-panel edge
            (4, 300, 9),    // narrow path, K blocking
            (6, 30, 100),   // tiled path, column edges
            (33, 520, 130), // tiled path + K blocking + both edges
            (MR, KC, NR),   // exact tile boundaries
            (MR * 2, KC * 2, NR * 5),
        ] {
            let a = det(m * k, 1);
            let b = det(k * n, 2);
            let bias = det(m, 3);
            let packed = PackedFilter::pack(&a, m, k).unwrap();
            let mut out = vec![0.0f32; m * n];
            gemm_bias_act_into(
                &packed,
                &bias,
                Activation::Relu,
                n,
                &dense_fill(&b, n),
                &mut out,
            )
            .unwrap();
            let want = reference(&a, &b, &bias, m, k, n, Activation::Relu);
            for (got, want) in out.iter().zip(&want) {
                assert!((got - want).abs() <= 1e-4, "({m},{k},{n}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn column_subsets_are_bit_identical_to_full_output() {
        // The determinism contract: computing a subset of columns in its own
        // call yields bit-identical values to the same columns of a full
        // call — the property band execution depends on.
        let (m, k, n) = (10, 513, 96);
        let a = det(m * k, 7);
        let b = det(k * n, 8);
        let bias = det(m, 9);
        let packed = PackedFilter::pack(&a, m, k).unwrap();
        let mut full = vec![0.0f32; m * n];
        gemm_bias_act_into(
            &packed,
            &bias,
            Activation::Tanh,
            n,
            &dense_fill(&b, n),
            &mut full,
        )
        .unwrap();

        let (j0, j1) = (17, 63);
        let nn = j1 - j0;
        let shifted_fill = |k0: usize, k1: usize, a0: usize, a1: usize, buf: &mut [f32]| {
            dense_fill(&b, n).fill(k0, k1, a0 + j0, a1 + j0, buf);
        };
        let mut part = vec![0.0f32; m * nn];
        gemm_bias_act_into(
            &packed,
            &bias,
            Activation::Tanh,
            nn,
            &shifted_fill,
            &mut part,
        )
        .unwrap();
        for r in 0..m {
            assert_eq!(
                &part[r * nn..(r + 1) * nn],
                &full[r * n + j0..r * n + j1],
                "row {r} differs between subset and full computation"
            );
        }
    }

    #[test]
    fn rejects_mismatched_buffers() {
        let packed = PackedFilter::pack(&[1.0; 6], 2, 3).unwrap();
        let fill = dense_fill(&[0.0; 3], 1);
        let mut out = vec![0.0f32; 2];
        assert!(
            gemm_bias_act_into(&packed, &[0.0; 1], Activation::None, 1, &fill, &mut out).is_err()
        );
        let mut wrong = vec![0.0f32; 3];
        assert!(
            gemm_bias_act_into(&packed, &[0.0; 2], Activation::None, 1, &fill, &mut wrong).is_err()
        );
    }
}
