//! Compute kernels: convolution, pooling, activation, and linear layers.
//!
//! Convolutions and linear layers route through the packed im2col + blocked
//! GEMM path in [`gemm`]; the direct loop-nest kernels
//! ([`conv2d_direct`] / [`conv2d_rows_direct`] / [`linear_direct`]) remain
//! as the oracles the fast path is validated against.

mod activation;
mod conv;
pub mod gemm;
mod linear;
mod pool;

pub use activation::{apply_activation, Activation};
pub use conv::{
    conv2d, conv2d_direct, conv2d_rows, conv2d_rows_direct, conv2d_rows_packed, im2col_weight_len,
    pack_conv_filter,
};
pub use gemm::PackedFilter;
pub use linear::{linear, linear_direct, linear_packed, pack_linear_filter};
pub use pool::{maxpool2d, maxpool2d_rows};
