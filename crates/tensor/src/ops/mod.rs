//! Compute kernels: convolution, pooling, activation, and linear layers.

mod activation;
mod conv;
mod linear;
mod pool;

pub use activation::{apply_activation, Activation};
pub use conv::{conv2d, conv2d_rows, im2col_weight_len};
pub use linear::linear;
pub use pool::{maxpool2d, maxpool2d_rows};
