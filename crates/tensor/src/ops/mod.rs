//! Compute kernels: convolution, pooling, activation, and linear layers.
//!
//! Convolutions and linear layers route through the packed im2col + blocked
//! GEMM path in [`gemm`] — with stride-1 3×3 convolutions taking the
//! Winograd F(2×2,3×3) shortcut in [`winograd`] — behind the runtime
//! micro-kernel dispatch in [`dispatch`].  The direct loop-nest kernels
//! ([`conv2d_direct`] / [`conv2d_rows_direct`] / [`linear_direct`]) remain
//! as the oracles the fast paths are validated against.

mod activation;
mod conv;
pub mod dispatch;
pub mod gemm;
mod linear;
mod pool;
pub mod qgemm;
pub mod winograd;

pub use activation::{apply_activation, Activation};
pub use conv::{
    conv2d, conv2d_direct, conv2d_rows, conv2d_rows_direct, conv2d_rows_gemm, conv2d_rows_packed,
    conv2d_rows_q8, im2col_weight_len, pack_conv_filter, pack_conv_filter_with, PackedConvFilter,
};
pub use dispatch::{
    kernel_arch, qkernel_arch, quant_env_enabled, set_kernel_override, set_qkernel_override,
    KernelArch, QKernelArch,
};
pub use gemm::PackedFilter;
pub use linear::{linear, linear_direct, linear_packed, linear_q8, pack_linear_filter};
pub use pool::{maxpool2d, maxpool2d_rows};
pub use qgemm::{
    dequantize_slice, quant_byte, quant_scale, quantize_i8, quantize_slice, QuantizedFilter,
};
pub use winograd::{conv2d_rows_winograd, winograd_eligible, winograd_preferred, WinogradFilter};
