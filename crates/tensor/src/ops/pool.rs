//! Max-pooling kernels (full-input and row-band variants).

use crate::error::TensorError;
use crate::shape::{conv_out_dim, input_rows_for_output, Shape};
use crate::{Result, Tensor};

/// Max-pooling over the full input.
pub fn maxpool2d(input: &Tensor, f: usize, stride: usize) -> Tensor {
    let h_in = input.height();
    let out_h = conv_out_dim(h_in, f, stride, 0).expect("invalid pool geometry");
    maxpool2d_rows(input, 0, h_in, 0, out_h, f, stride)
        .expect("full maxpool over valid geometry cannot fail")
}

/// Max-pooling of a row band, mirroring [`crate::ops::conv2d_rows`].
///
/// `input` carries original rows `[in_row_offset, in_row_offset + height)`;
/// output rows `[out_start, out_end)` in full-layer coordinates are produced.
/// Pooling windows are clipped at the bottom edge of the original input (the
/// common "ceil mode off" behaviour with no padding).
pub fn maxpool2d_rows(
    input: &Tensor,
    in_row_offset: usize,
    orig_h_in: usize,
    out_start: usize,
    out_end: usize,
    f: usize,
    stride: usize,
) -> Result<Tensor> {
    let [c, band_h, w_in] = input.shape();
    let out_h_full = conv_out_dim(orig_h_in, f, stride, 0)
        .ok_or_else(|| TensorError::KernelConfig("pool does not fit input".into()))?;
    let out_w = conv_out_dim(w_in, f, stride, 0)
        .ok_or_else(|| TensorError::KernelConfig("pool does not fit input width".into()))?;
    if out_end > out_h_full || out_start >= out_end {
        return Err(TensorError::InvalidRowRange {
            start: out_start,
            end: out_end,
            rows: out_h_full,
        });
    }
    let (need_lo, need_hi) = input_rows_for_output(out_start, out_end, f, stride, 0, orig_h_in);
    if need_lo < in_row_offset || need_hi > in_row_offset + band_h {
        return Err(TensorError::KernelConfig(format!(
            "pool input band rows {}..{} do not cover required rows {}..{}",
            in_row_offset,
            in_row_offset + band_h,
            need_lo,
            need_hi
        )));
    }

    let out_rows = out_end - out_start;
    let mut out = Tensor::zeros(Shape::new(c, out_rows, out_w));
    for ch in 0..c {
        let plane = input.channel(ch);
        for (oy_local, oy) in (out_start..out_end).enumerate() {
            let iy0 = oy * stride;
            for ox in 0..out_w {
                let ix0 = ox * stride;
                let mut best = f32::NEG_INFINITY;
                for ky in 0..f {
                    let iy = iy0 + ky;
                    if iy >= orig_h_in {
                        break;
                    }
                    let band_y = iy - in_row_offset;
                    for kx in 0..f {
                        let ix = ix0 + kx;
                        if ix >= w_in {
                            break;
                        }
                        best = best.max(plane[band_y * w_in + ix]);
                    }
                }
                out.set(ch, oy_local, ox, best);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::input_rows_for_output;
    use crate::slice::{concat_rows, slice_rows};

    #[test]
    fn pool_2x2_known_values() {
        let input = Tensor::from_vec([1, 4, 4], (1..=16).map(|v| v as f32).collect()).unwrap();
        let out = maxpool2d(&input, 2, 2);
        assert_eq!(out.shape(), [1, 2, 2]);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn pool_preserves_channels() {
        let input = Tensor::from_fn([3, 8, 8], |c, y, x| (c * 100 + y * 8 + x) as f32);
        let out = maxpool2d(&input, 2, 2);
        assert_eq!(out.shape(), [3, 4, 4]);
        // Max of each 2x2 block is the bottom-right element.
        assert_eq!(out.get(2, 0, 0), 209.0);
    }

    #[test]
    fn pool_rows_matches_full() {
        let input = Tensor::from_fn([2, 14, 10], |c, y, x| ((c * 13 + y * 5 + x) % 17) as f32);
        let full = maxpool2d(&input, 2, 2);
        let h_out = full.height();
        let cuts = [3usize, h_out];
        let mut start = 0;
        let mut bands = Vec::new();
        for &end in &cuts {
            let (lo, hi) = input_rows_for_output(start, end, 2, 2, 0, input.height());
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = maxpool2d_rows(&band_in, lo, input.height(), start, end, 2, 2).unwrap();
            bands.push(band);
            start = end;
        }
        let stitched = concat_rows(&bands).unwrap();
        assert!(stitched.approx_eq(&full, 0.0));
    }

    #[test]
    fn pool_rows_rejects_missing_rows() {
        let input = Tensor::zeros([1, 4, 4]);
        let band = slice_rows(&input, 0, 2).unwrap();
        // Output row 1 needs input rows 2..4 which the band lacks.
        assert!(maxpool2d_rows(&band, 0, 4, 1, 2, 2, 2).is_err());
    }

    #[test]
    fn pool_rows_rejects_bad_range() {
        let input = Tensor::zeros([1, 4, 4]);
        assert!(maxpool2d_rows(&input, 0, 4, 0, 3, 2, 2).is_err());
        assert!(maxpool2d_rows(&input, 0, 4, 1, 1, 2, 2).is_err());
    }
}
