//! Fully-connected (linear) layer kernel.
//!
//! Routed through the same packed GEMM micro-kernel as the convolutions
//! (with `n = 1`, the driver parallelises over row-panel groups — the FC
//! head of a classification model dominates head-device time, and the old
//! serial dot-product loop left every core but one idle).
//! [`linear_packed`] consumes a filter prepacked at deploy time;
//! [`linear`] packs per call and is bit-identical.  [`linear_direct`] is
//! the serial oracle.

use super::activation::Activation;
use super::gemm::{gemm_bias_act_into, PackedFilter, NR};
use super::qgemm::{qgemm_bias_act_into, quant_byte, QuantizedFilter, QK};
use crate::error::TensorError;
use crate::shape::Shape;
use crate::{Result, Tensor};

fn validate(in_features: usize, w_len: usize, bias_len: usize, out_features: usize) -> Result<()> {
    if w_len != in_features * out_features {
        return Err(TensorError::KernelConfig(format!(
            "linear weights length {w_len} != out*in = {}",
            in_features * out_features
        )));
    }
    if bias_len != out_features {
        return Err(TensorError::KernelConfig(format!(
            "linear bias length {bias_len} != out {out_features}"
        )));
    }
    Ok(())
}

/// Packs `[out][in]` linear weights into GEMM panels (the deploy-time half
/// of the packed FC path).
pub fn pack_linear_filter(
    weights: &[f32],
    in_features: usize,
    out_features: usize,
) -> Result<PackedFilter> {
    if weights.len() != in_features * out_features {
        return Err(TensorError::KernelConfig(format!(
            "linear weights length {} != out*in = {}",
            weights.len(),
            in_features * out_features
        )));
    }
    PackedFilter::pack(weights, out_features, in_features)
}

/// Fully-connected layer: `out[o] = act(bias[o] + sum_i w[o][i] * in[i])`.
///
/// The input tensor is flattened in CHW order; `weights` is laid out
/// `[out][in]`.  The result is a `[out, 1, 1]` tensor.  Packs the weights
/// per call; bit-identical to [`linear_packed`] over a prepacked filter.
pub fn linear(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    act: Activation,
) -> Result<Tensor> {
    // Packing validates the weight length; the GEMM driver validates bias.
    let filter = pack_linear_filter(weights, input.len(), out_features)?;
    linear_packed(input, &filter, bias, act)
}

/// Fully-connected layer over a prepacked filter — the per-frame hot path.
pub fn linear_packed(
    input: &Tensor,
    filter: &PackedFilter,
    bias: &[f32],
    act: Activation,
) -> Result<Tensor> {
    if filter.k() != input.len() {
        return Err(TensorError::KernelConfig(format!(
            "packed linear filter expects {} inputs, got {}",
            filter.k(),
            input.len()
        )));
    }
    let x = input.data();
    // The B matrix is the input vector itself: one column, panel 0.
    let fill = move |k0: usize, k1: usize, _j0: usize, _j1: usize, buf: &mut [f32]| {
        for (kk, &v) in x[k0..k1].iter().enumerate() {
            buf[kk * NR] = v;
        }
    };
    let mut out = vec![0.0f32; filter.m()];
    gemm_bias_act_into(filter, bias, act, 1, &fill, &mut out)?;
    Tensor::from_vec(Shape::new(filter.m(), 1, 1), out)
}

/// Fully-connected layer on the **int8 quantized** path over a prepacked
/// [`QuantizedFilter`]: the input vector is quantized against the
/// calibrated `scale_in` as the single B column is filled, multiplied in
/// i32, and dequantized in the fused epilogue.  Same result on every int8
/// dispatch arm; accuracy against [`linear_packed`] is bounded by the
/// quantization step (see `ops::qgemm`).
pub fn linear_q8(
    input: &Tensor,
    filter: &QuantizedFilter,
    scale_in: f32,
    bias: &[f32],
    act: Activation,
) -> Result<Tensor> {
    if filter.k() != input.len() {
        return Err(TensorError::KernelConfig(format!(
            "quantized linear filter expects {} inputs, got {}",
            filter.k(),
            input.len()
        )));
    }
    let x = input.data();
    // One quantized column: element k lives at quad k/QK, byte lane k%QK.
    let fill = move |k0: usize, k1: usize, _j0: usize, _j1: usize, buf: &mut [u8]| {
        for (kk, &v) in x[k0..k1].iter().enumerate() {
            buf[(kk / QK) * NR * QK + (kk % QK)] = quant_byte(v, scale_in);
        }
    };
    let mut out = vec![0.0f32; filter.m()];
    qgemm_bias_act_into(filter, bias, act, scale_in, 1, &fill, &mut out)?;
    Tensor::from_vec(Shape::new(filter.m(), 1, 1), out)
}

/// Serial dot-product linear layer — the test oracle.
pub fn linear_direct(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    act: Activation,
) -> Result<Tensor> {
    let in_features = input.len();
    validate(in_features, weights.len(), bias.len(), out_features)?;
    let x = input.data();
    let mut out = Vec::with_capacity(out_features);
    for o in 0..out_features {
        let row = &weights[o * in_features..(o + 1) * in_features];
        let mut acc = bias[o];
        for (w, v) in row.iter().zip(x) {
            acc += w * v;
        }
        out.push(act.apply(acc));
    }
    Tensor::from_vec(Shape::new(out_features, 1, 1), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix() {
        let input = Tensor::from_vec([3, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let weights = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let out = linear(&input, &weights, &[0.0; 3], 3, Activation::None).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn bias_and_relu() {
        let input = Tensor::from_vec([2, 1, 1], vec![1.0, -1.0]).unwrap();
        // out0 = 1*1 + 1*(-1) - 5 = -5 -> relu 0 ; out1 = 2*1 + 0 + 1 = 3
        let weights = vec![1.0, 1.0, 2.0, 0.0];
        let out = linear(&input, &weights, &[-5.0, 1.0], 2, Activation::Relu).unwrap();
        assert_eq!(out.data(), &[0.0, 3.0]);
    }

    #[test]
    fn flattens_spatial_input() {
        let input = Tensor::filled([2, 2, 2], 1.0);
        let weights = vec![1.0; 8];
        let out = linear(&input, &weights, &[0.0], 1, Activation::None).unwrap();
        assert_eq!(out.data(), &[8.0]);
    }

    #[test]
    fn gemm_path_matches_direct_oracle() {
        // Sizes past the K block and the MR panel edge.
        for &(inf, outf) in &[(7usize, 3usize), (300, 17), (1024, 33)] {
            let input = Tensor::from_vec(
                [inf, 1, 1],
                (0..inf).map(|i| ((i % 13) as f32) * 0.1 - 0.6).collect(),
            )
            .unwrap();
            let weights: Vec<f32> = (0..inf * outf)
                .map(|i| ((i % 19) as f32 - 9.0) * 0.03)
                .collect();
            let bias: Vec<f32> = (0..outf).map(|i| (i as f32) * 0.02 - 0.1).collect();
            let fast = linear(&input, &weights, &bias, outf, Activation::Tanh).unwrap();
            let oracle = linear_direct(&input, &weights, &bias, outf, Activation::Tanh).unwrap();
            assert!(
                fast.approx_eq(&oracle, 1e-4),
                "({inf},{outf}): max diff {}",
                fast.max_abs_diff(&oracle).unwrap()
            );
        }
    }

    #[test]
    fn packed_is_bit_identical_to_per_call_packing() {
        let inf = 520;
        let outf = 21;
        let input = Tensor::from_vec(
            [inf, 1, 1],
            (0..inf).map(|i| ((i % 11) as f32) * 0.2 - 1.0).collect(),
        )
        .unwrap();
        let weights: Vec<f32> = (0..inf * outf)
            .map(|i| ((i % 23) as f32 - 11.0) * 0.01)
            .collect();
        let bias = vec![0.05; outf];
        let per_call = linear(&input, &weights, &bias, outf, Activation::Relu).unwrap();
        let filter = pack_linear_filter(&weights, inf, outf).unwrap();
        let prepacked = linear_packed(&input, &filter, &bias, Activation::Relu).unwrap();
        assert_eq!(per_call, prepacked);
    }

    #[test]
    fn quantized_fc_tracks_oracle_within_bound() {
        use super::super::qgemm::quant_scale;
        for &(inf, outf) in &[(64usize, 9usize), (300, 17), (1024, 33)] {
            let input = Tensor::from_vec(
                [inf, 1, 1],
                (0..inf).map(|i| ((i % 13) as f32) * 0.1 - 0.6).collect(),
            )
            .unwrap();
            let weights: Vec<f32> = (0..inf * outf)
                .map(|i| ((i % 19) as f32 - 9.0) * 0.03)
                .collect();
            let bias: Vec<f32> = (0..outf).map(|i| (i as f32) * 0.02 - 0.1).collect();
            let scale_in = quant_scale(input.data());
            let filter = QuantizedFilter::pack(&weights, outf, inf).unwrap();
            let q = linear_q8(&input, &filter, scale_in, &bias, Activation::None).unwrap();
            let oracle = linear_direct(&input, &weights, &bias, outf, Activation::None).unwrap();
            // |Δ| ≤ s_w/2·Σ|x| + s_a/2·Σ|w| + K·s_a·s_w/4 per output.
            let sx: f32 = input.data().iter().map(|v| v.abs()).sum();
            for o in 0..outf {
                let sw: f32 = weights[o * inf..(o + 1) * inf]
                    .iter()
                    .map(|v| v.abs())
                    .sum();
                let bound = 0.5 * filter.scale() * sx
                    + 0.5 * scale_in * sw
                    + 0.25 * (inf as f32) * scale_in * filter.scale()
                    + 1e-3 * (1.0 + oracle.data()[o].abs());
                let diff = (q.data()[o] - oracle.data()[o]).abs();
                assert!(diff <= bound, "({inf},{outf})[{o}]: {diff} > {bound}");
            }
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::filled([2, 1, 1], 1.0);
        assert!(linear(&input, &[1.0; 3], &[0.0], 2, Activation::None).is_err());
        assert!(linear(&input, &[1.0; 4], &[0.0; 3], 2, Activation::None).is_err());
        let filter = pack_linear_filter(&[1.0; 6], 3, 2).unwrap();
        let wrong = Tensor::filled([2, 1, 1], 1.0);
        assert!(linear_packed(&wrong, &filter, &[0.0; 2], Activation::None).is_err());
    }
}
