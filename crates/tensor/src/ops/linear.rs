//! Fully-connected (linear) layer kernel.

use super::activation::Activation;
use crate::error::TensorError;
use crate::shape::Shape;
use crate::{Result, Tensor};

/// Fully-connected layer: `out[o] = act(bias[o] + sum_i w[o][i] * in[i])`.
///
/// The input tensor is flattened in CHW order; `weights` is laid out
/// `[out][in]`.  The result is a `[out, 1, 1]` tensor.
pub fn linear(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    act: Activation,
) -> Result<Tensor> {
    let in_features = input.len();
    if weights.len() != in_features * out_features {
        return Err(TensorError::KernelConfig(format!(
            "linear weights length {} != out*in = {}",
            weights.len(),
            in_features * out_features
        )));
    }
    if bias.len() != out_features {
        return Err(TensorError::KernelConfig(format!(
            "linear bias length {} != out {}",
            bias.len(),
            out_features
        )));
    }
    let x = input.data();
    let mut out = Vec::with_capacity(out_features);
    for o in 0..out_features {
        let row = &weights[o * in_features..(o + 1) * in_features];
        let mut acc = bias[o];
        for (w, v) in row.iter().zip(x) {
            acc += w * v;
        }
        out.push(act.apply(acc));
    }
    Tensor::from_vec(Shape::new(out_features, 1, 1), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matrix() {
        let input = Tensor::from_vec([3, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let weights = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let out = linear(&input, &weights, &[0.0; 3], 3, Activation::None).unwrap();
        assert_eq!(out.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn bias_and_relu() {
        let input = Tensor::from_vec([2, 1, 1], vec![1.0, -1.0]).unwrap();
        // out0 = 1*1 + 1*(-1) - 5 = -5 -> relu 0 ; out1 = 2*1 + 0 + 1 = 3
        let weights = vec![1.0, 1.0, 2.0, 0.0];
        let out = linear(&input, &weights, &[-5.0, 1.0], 2, Activation::Relu).unwrap();
        assert_eq!(out.data(), &[0.0, 3.0]);
    }

    #[test]
    fn flattens_spatial_input() {
        let input = Tensor::filled([2, 2, 2], 1.0);
        let weights = vec![1.0; 8];
        let out = linear(&input, &weights, &[0.0], 1, Activation::None).unwrap();
        assert_eq!(out.data(), &[8.0]);
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::filled([2, 1, 1], 1.0);
        assert!(linear(&input, &[1.0; 3], &[0.0], 2, Activation::None).is_err());
        assert!(linear(&input, &[1.0; 4], &[0.0; 3], 2, Activation::None).is_err());
    }
}
