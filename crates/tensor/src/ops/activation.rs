//! Element-wise activation functions.

use crate::Tensor;
use serde::{Deserialize, Serialize};

/// Activation applied after a convolution or linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no activation).
    None,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.1 (used by the YOLO family).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Activation::None => v,
            Activation::Relu => v.max(0.0),
            Activation::LeakyRelu => {
                if v >= 0.0 {
                    v
                } else {
                    0.1 * v
                }
            }
            Activation::Tanh => v.tanh(),
        }
    }
}

/// Applies an activation in place over an entire tensor.
pub fn apply_activation(t: &mut Tensor, act: Activation) {
    if act == Activation::None {
        return;
    }
    for v in t.data_mut() {
        *v = act.apply(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn leaky_relu_slope() {
        assert!((Activation::LeakyRelu.apply(-2.0) + 0.2).abs() < 1e-6);
        assert_eq!(Activation::LeakyRelu.apply(2.0), 2.0);
    }

    #[test]
    fn tanh_bounds() {
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
        assert!(Activation::Tanh.apply(-100.0) >= -1.0);
    }

    #[test]
    fn none_is_identity() {
        assert_eq!(Activation::None.apply(-5.5), -5.5);
    }

    #[test]
    fn apply_activation_in_place() {
        let mut t = Tensor::from_vec([1, 1, 4], vec![-1.0, 0.0, 1.0, -2.0]).unwrap();
        apply_activation(&mut t, Activation::Relu);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 0.0]);
    }
}
