//! Runtime micro-kernel dispatch.
//!
//! The GEMM micro-kernel exists in three arms that compute **bit-identical**
//! results (same per-element multiply-then-add sequence, same `k` order —
//! see the numerical contract in [`super::gemm`]):
//!
//! * **Scalar** — the portable Rust loop, always available.  The compiler
//!   auto-vectorises it where it can, but makes no width or layout promises.
//! * **Avx2** — explicit 256-bit `std::arch` kernel: the full `MR × NR`
//!   accumulator tile lives in twelve `ymm` registers.
//! * **Avx512** — explicit 512-bit kernel: one `zmm` register holds a whole
//!   `NR`-column accumulator row.
//!
//! The SIMD arms deliberately use *separate* multiply and add instructions
//! rather than fused FMA: an FMA rounds once where `mul` + `add` round
//! twice, so a fused kernel would not be bit-exact against the scalar
//! fallback — and bit-exactness across dispatch arms is what lets every
//! distributed-equivalence suite in this workspace run unchanged on any
//! mix of machines.  The register-tile widening (and the 512-bit arm)
//! recovers the throughput that fusing would have bought.
//!
//! Selection is per *process*: detected once from CPUID, overridable for
//! tests and benches via [`set_kernel_override`] or the environment
//! (`DISTREDGE_FORCE_SCALAR=1`, or `DISTREDGE_KERNEL=scalar|avx2|avx512`).
//! An override never selects an arm the hardware cannot run: requests are
//! clamped to the detected capability.  An *unrecognised* kernel name in
//! the environment panics with the valid names — a typo in CI must not
//! silently un-pin the kernel under test.
//!
//! The int8 quantized GEMM ([`super::qgemm`]) has its own parallel arm
//! family ([`QKernelArch`]): scalar / AVX2 / AVX-512 VNNI (`vpdpbusd`).
//! Integer accumulation is order-independent, so all int8 arms are
//! bit-exact by construction; the same clamp-to-capability rules apply via
//! `DISTREDGE_QKERNEL=scalar|avx2|vnni` and [`set_qkernel_override`].
//! `DISTREDGE_QUANT=1` opts a whole deployment into the quantized path
//! (see `cnn-model`'s router policy).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One micro-kernel implementation arm, ordered by capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelArch {
    /// Portable Rust loop — always available, the dispatch floor.
    Scalar,
    /// 256-bit `std::arch` kernel (x86-64 with AVX2).
    Avx2,
    /// 512-bit `std::arch` kernel (x86-64 with AVX-512F).
    Avx512,
}

impl KernelArch {
    /// Short lowercase label (`"scalar"`, `"avx2"`, `"avx512"`) for benches
    /// and logs.
    pub fn label(self) -> &'static str {
        match self {
            KernelArch::Scalar => "scalar",
            KernelArch::Avx2 => "avx2",
            KernelArch::Avx512 => "avx512",
        }
    }
}

/// What the hardware supports, detected once per process.
fn detected() -> KernelArch {
    static DETECTED: OnceLock<KernelArch> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return KernelArch::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelArch::Avx2;
            }
        }
        KernelArch::Scalar
    })
}

/// The environment's standing request, read once per process.  An
/// unrecognised `DISTREDGE_KERNEL` value panics: a typo must not silently
/// fall back to auto-detection and un-pin the kernel a CI step meant to
/// test.
fn env_request() -> Option<KernelArch> {
    static ENV: OnceLock<Option<KernelArch>> = OnceLock::new();
    *ENV.get_or_init(|| {
        if let Ok(v) = std::env::var("DISTREDGE_KERNEL") {
            match v.to_ascii_lowercase().as_str() {
                "scalar" => return Some(KernelArch::Scalar),
                "avx2" => return Some(KernelArch::Avx2),
                "avx512" => return Some(KernelArch::Avx512),
                other => panic!(
                    "DISTREDGE_KERNEL={other:?} is not a kernel arm; \
                     valid names: scalar, avx2, avx512"
                ),
            }
        }
        match std::env::var("DISTREDGE_FORCE_SCALAR") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(KernelArch::Scalar),
            _ => None,
        }
    })
}

/// Programmatic override: 0 = none, else `KernelArch as u8 + 1`.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces every subsequent GEMM call in this process onto `arch` (clamped
/// to what the hardware supports), or restores automatic selection with
/// `None`.  Test and bench plumbing — takes precedence over the
/// environment.  The choice is read once per GEMM entry call and passed
/// down, so worker threads inside one call never see a torn switch.
pub fn set_kernel_override(arch: Option<KernelArch>) {
    let v = match arch {
        None => 0,
        Some(KernelArch::Scalar) => 1,
        Some(KernelArch::Avx2) => 2,
        Some(KernelArch::Avx512) => 3,
    };
    OVERRIDE.store(v, Ordering::SeqCst);
}

/// The micro-kernel arm GEMM calls will run right now: the programmatic
/// override if set, else the environment request, else full hardware
/// capability — always clamped to what the hardware can execute.
pub fn kernel_arch() -> KernelArch {
    let requested = match OVERRIDE.load(Ordering::SeqCst) {
        1 => Some(KernelArch::Scalar),
        2 => Some(KernelArch::Avx2),
        3 => Some(KernelArch::Avx512),
        _ => env_request(),
    };
    match requested {
        Some(arch) => arch.min(detected()),
        None => detected(),
    }
}

/// One int8 micro-kernel implementation arm, ordered by capability.
///
/// The int8 GEMM accumulates in `i32`, so every arm computes the identical
/// integer sum — bit-exactness across arms holds by construction, unlike
/// the f32 family where the op sequence had to be pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QKernelArch {
    /// Portable Rust loop — always available, the dispatch floor.
    Scalar,
    /// 256-bit `std::arch` kernel (x86-64 with AVX2), exact 32-bit lane
    /// multiplies.
    Avx2,
    /// 512-bit AVX-512 VNNI kernel (`vpdpbusd` u8×i8→i32 dot product).
    Vnni,
}

impl QKernelArch {
    /// Short lowercase label (`"scalar"`, `"avx2"`, `"vnni"`) for benches
    /// and logs.
    pub fn label(self) -> &'static str {
        match self {
            QKernelArch::Scalar => "scalar",
            QKernelArch::Avx2 => "avx2",
            QKernelArch::Vnni => "vnni",
        }
    }
}

/// What the hardware supports for int8, detected once per process.
fn q_detected() -> QKernelArch {
    static DETECTED: OnceLock<QKernelArch> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vnni")
            {
                return QKernelArch::Vnni;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return QKernelArch::Avx2;
            }
        }
        QKernelArch::Scalar
    })
}

/// The environment's standing int8 request, read once per process.
/// `DISTREDGE_FORCE_SCALAR` forces the int8 scalar arm too, so one CI
/// switch pins every kernel family.  Unrecognised `DISTREDGE_QKERNEL`
/// values panic, same as `DISTREDGE_KERNEL`.
fn q_env_request() -> Option<QKernelArch> {
    static ENV: OnceLock<Option<QKernelArch>> = OnceLock::new();
    *ENV.get_or_init(|| {
        if let Ok(v) = std::env::var("DISTREDGE_QKERNEL") {
            match v.to_ascii_lowercase().as_str() {
                "scalar" => return Some(QKernelArch::Scalar),
                "avx2" => return Some(QKernelArch::Avx2),
                "vnni" => return Some(QKernelArch::Vnni),
                other => panic!(
                    "DISTREDGE_QKERNEL={other:?} is not an int8 kernel arm; \
                     valid names: scalar, avx2, vnni"
                ),
            }
        }
        match std::env::var("DISTREDGE_FORCE_SCALAR") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(QKernelArch::Scalar),
            _ => None,
        }
    })
}

/// Programmatic int8 override: 0 = none, else `QKernelArch as u8 + 1`.
static Q_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces every subsequent int8 GEMM call in this process onto `arch`
/// (clamped to hardware capability), or restores automatic selection with
/// `None`.  Same semantics as [`set_kernel_override`], independent state.
pub fn set_qkernel_override(arch: Option<QKernelArch>) {
    let v = match arch {
        None => 0,
        Some(QKernelArch::Scalar) => 1,
        Some(QKernelArch::Avx2) => 2,
        Some(QKernelArch::Vnni) => 3,
    };
    Q_OVERRIDE.store(v, Ordering::SeqCst);
}

/// The int8 micro-kernel arm quantized GEMM calls will run right now:
/// programmatic override, else environment request, else full hardware
/// capability — always clamped to what the hardware can execute.
pub fn qkernel_arch() -> QKernelArch {
    let requested = match Q_OVERRIDE.load(Ordering::SeqCst) {
        1 => Some(QKernelArch::Scalar),
        2 => Some(QKernelArch::Avx2),
        3 => Some(QKernelArch::Vnni),
        _ => q_env_request(),
    };
    match requested {
        Some(arch) => arch.min(q_detected()),
        None => q_detected(),
    }
}

/// Whether `DISTREDGE_QUANT` opts deployments into the int8 quantized
/// path by default (`1` or `true`).  Read once per process; explicit
/// `RuntimeOptions::quantized` settings take precedence in the runtime.
pub fn quant_env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(std::env::var("DISTREDGE_QUANT"),
                 Ok(v) if v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_clamps_and_restores() {
        // Whatever the hardware, forcing scalar always lands on scalar …
        set_kernel_override(Some(KernelArch::Scalar));
        assert_eq!(kernel_arch(), KernelArch::Scalar);
        // … and a request above capability clamps instead of mis-dispatching.
        set_kernel_override(Some(KernelArch::Avx512));
        assert!(kernel_arch() <= detected());
        set_kernel_override(None);
        assert_eq!(
            kernel_arch(),
            detected().min(env_request().unwrap_or(detected()))
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelArch::Scalar.label(), "scalar");
        assert_eq!(KernelArch::Avx2.label(), "avx2");
        assert_eq!(KernelArch::Avx512.label(), "avx512");
        assert_eq!(QKernelArch::Scalar.label(), "scalar");
        assert_eq!(QKernelArch::Avx2.label(), "avx2");
        assert_eq!(QKernelArch::Vnni.label(), "vnni");
    }

    #[test]
    fn qoverride_clamps_and_restores() {
        set_qkernel_override(Some(QKernelArch::Scalar));
        assert_eq!(qkernel_arch(), QKernelArch::Scalar);
        set_qkernel_override(Some(QKernelArch::Vnni));
        assert!(qkernel_arch() <= q_detected());
        set_qkernel_override(None);
        assert_eq!(
            qkernel_arch(),
            q_detected().min(q_env_request().unwrap_or(q_detected()))
        );
    }
}
