//! CHW shape helpers shared by the tensor type and the kernels.

use serde::{Deserialize, Serialize};

/// A channel-height-width shape.
///
/// All tensors in this crate are rank-3 in CHW order; vectors are represented
/// as `[c, 1, 1]`.  The type is tiny and `Copy`, so it is passed by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Number of channels.
    pub c: usize,
    /// Spatial height (rows).
    pub h: usize,
    /// Spatial width (columns).
    pub w: usize,
}

impl Shape {
    /// Creates a new shape.
    pub const fn new(c: usize, h: usize, w: usize) -> Self {
        Self { c, h, w }
    }

    /// Total number of elements.
    pub const fn volume(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of elements in one channel plane.
    pub const fn plane(&self) -> usize {
        self.h * self.w
    }

    /// Returns the shape as a `[c, h, w]` array.
    pub const fn as_array(&self) -> [usize; 3] {
        [self.c, self.h, self.w]
    }

    /// Output spatial size of a convolution/pooling over this shape.
    ///
    /// Uses the standard formula `(in + 2p - f) / s + 1` independently for
    /// height and width.  Returns `None` if the kernel does not fit.
    pub fn conv_output(&self, f: usize, stride: usize, padding: usize) -> Option<(usize, usize)> {
        conv_out_dim(self.h, f, stride, padding).zip(conv_out_dim(self.w, f, stride, padding))
    }
}

impl From<[usize; 3]> for Shape {
    fn from(a: [usize; 3]) -> Self {
        Shape::new(a[0], a[1], a[2])
    }
}

/// Output size of a convolution along one dimension.
///
/// Returns `None` when the padded input is smaller than the filter or when
/// the stride is zero.
pub fn conv_out_dim(input: usize, f: usize, stride: usize, padding: usize) -> Option<usize> {
    if stride == 0 || f == 0 {
        return None;
    }
    let padded = input + 2 * padding;
    if padded < f {
        return None;
    }
    Some((padded - f) / stride + 1)
}

/// Input rows required to produce output rows `[out_start, out_end)` of a
/// convolution/pooling with filter `f`, stride `s`, padding `p` over an input
/// of height `h_in`.
///
/// The returned range is clipped to `[0, h_in)`; the caller is responsible
/// for zero-padding rows that fall outside the input (the kernels in this
/// crate handle padding internally, so the clipped range is exactly the set
/// of *real* input rows touched).
pub fn input_rows_for_output(
    out_start: usize,
    out_end: usize,
    f: usize,
    s: usize,
    p: usize,
    h_in: usize,
) -> (usize, usize) {
    if out_end <= out_start {
        return (0, 0);
    }
    let lo = (out_start * s).saturating_sub(p);
    let hi_unclipped = (out_end - 1) * s + f;
    let hi = hi_unclipped.saturating_sub(p).min(h_in);
    (lo.min(h_in), hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_plane() {
        let s = Shape::new(3, 4, 5);
        assert_eq!(s.volume(), 60);
        assert_eq!(s.plane(), 20);
        assert_eq!(s.as_array(), [3, 4, 5]);
    }

    #[test]
    fn conv_out_dim_same_padding() {
        // 3x3, stride 1, padding 1 keeps the size.
        assert_eq!(conv_out_dim(224, 3, 1, 1), Some(224));
    }

    #[test]
    fn conv_out_dim_downsample() {
        // 2x2 max-pool with stride 2 halves the size.
        assert_eq!(conv_out_dim(224, 2, 2, 0), Some(112));
        // 7x7 stride-2 conv with padding 3 on 224 -> 112.
        assert_eq!(conv_out_dim(224, 7, 2, 3), Some(112));
    }

    #[test]
    fn conv_out_dim_invalid() {
        assert_eq!(conv_out_dim(2, 5, 1, 0), None);
        assert_eq!(conv_out_dim(5, 3, 0, 0), None);
        assert_eq!(conv_out_dim(5, 0, 1, 0), None);
    }

    #[test]
    fn conv_output_on_shape() {
        let s = Shape::new(3, 10, 12);
        assert_eq!(s.conv_output(3, 1, 1), Some((10, 12)));
        assert_eq!(s.conv_output(2, 2, 0), Some((5, 6)));
    }

    #[test]
    fn input_rows_identity_stride() {
        // 3x3 stride 1 padding 1: output row r needs input rows r-1..r+2,
        // so rows 0..4 need real input rows 0..5 (row -1 is padding).
        assert_eq!(input_rows_for_output(0, 4, 3, 1, 1, 10), (0, 5));
        assert_eq!(input_rows_for_output(4, 10, 3, 1, 1, 10), (3, 10));
    }

    #[test]
    fn input_rows_pooling() {
        // 2x2 stride 2: output rows 3..5 need input rows 6..10.
        assert_eq!(input_rows_for_output(3, 5, 2, 2, 0, 16), (6, 10));
    }

    #[test]
    fn input_rows_empty_output() {
        assert_eq!(input_rows_for_output(5, 5, 3, 1, 1, 10), (0, 0));
        assert_eq!(input_rows_for_output(7, 3, 3, 1, 1, 10), (0, 0));
    }

    #[test]
    fn input_rows_clipped_to_input() {
        // Large request is clipped to the available rows.
        assert_eq!(input_rows_for_output(0, 100, 3, 1, 1, 10), (0, 10));
    }

    #[test]
    fn shape_from_array() {
        let s: Shape = [2usize, 3, 4].into();
        assert_eq!(s, Shape::new(2, 3, 4));
    }
}
