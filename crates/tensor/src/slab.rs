//! Flat binary (de)serialization of tensors — the payload format of the
//! edge-runtime's wire frames.
//!
//! A slab is `[c: u32][h: u32][w: u32][data: c*h*w little-endian f32]`.
//! The format is deliberately trivial: receivers know the expected geometry
//! from their routing tables, so the header exists only as a cheap
//! consistency check.
//!
//! A **q8 slab** is the quantized variant used by int8 activation
//! transfer: `[c: u32][h: u32][w: u32][scale: f32 LE][data: c*h*w i8]` —
//! one byte per element plus one scale, ~4× smaller than the f32 slab.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::{Result, Tensor};

/// Byte length of a slab holding a `[c, h, w]` tensor.
pub fn slab_len(c: usize, h: usize, w: usize) -> usize {
    12 + c * h * w * 4
}

/// Appends the slab encoding of `t` to `out`.
pub fn write_slab(t: &Tensor, out: &mut Vec<u8>) {
    let [c, h, w] = t.shape();
    out.reserve(slab_len(c, h, w));
    out.extend_from_slice(&(c as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    out.extend_from_slice(&(w as u32).to_le_bytes());
    for v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes `t` as a standalone slab.
pub fn to_slab(t: &Tensor) -> Vec<u8> {
    let mut out = Vec::new();
    write_slab(t, &mut out);
    out
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32> {
    let end = at + 4;
    if end > bytes.len() {
        return Err(TensorError::KernelConfig(format!(
            "slab truncated: need {end} bytes, have {}",
            bytes.len()
        )));
    }
    Ok(u32::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

/// Decodes a slab produced by [`write_slab`], returning the tensor and the
/// number of bytes consumed.
pub fn read_slab(bytes: &[u8]) -> Result<(Tensor, usize)> {
    let c = read_u32(bytes, 0)? as usize;
    let h = read_u32(bytes, 4)? as usize;
    let w = read_u32(bytes, 8)? as usize;
    let len = slab_len(c, h, w);
    if bytes.len() < len {
        return Err(TensorError::KernelConfig(format!(
            "slab truncated: header promises {len} bytes, have {}",
            bytes.len()
        )));
    }
    let n = c * h * w;
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let at = 12 + i * 4;
        data.push(f32::from_le_bytes([
            bytes[at],
            bytes[at + 1],
            bytes[at + 2],
            bytes[at + 3],
        ]));
    }
    Ok((Tensor::from_vec(Shape::new(c, h, w), data)?, len))
}

/// Byte length of a q8 slab holding a `[c, h, w]` tensor.
pub fn q8_slab_len(c: usize, h: usize, w: usize) -> usize {
    16 + c * h * w
}

/// Appends the q8 slab encoding of an already-quantized tensor to `out`.
///
/// `data` holds the symmetric int8 codes (one per element, CHW order) and
/// `scale` the dequantization step; callers produce both via
/// `ops::quant_scale` / `ops::quantize_slice`.
pub fn write_q8_slab(shape: Shape, scale: f32, data: &[i8], out: &mut Vec<u8>) -> Result<()> {
    let (c, h, w) = (shape.c, shape.h, shape.w);
    if data.len() != c * h * w {
        return Err(TensorError::KernelConfig(format!(
            "q8 slab data length {} != c*h*w = {}",
            data.len(),
            c * h * w
        )));
    }
    out.reserve(q8_slab_len(c, h, w));
    out.extend_from_slice(&(c as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&scale.to_le_bytes());
    out.extend(data.iter().map(|&q| q as u8));
    Ok(())
}

/// Decodes a q8 slab produced by [`write_q8_slab`], returning the shape,
/// scale, int8 codes, and the number of bytes consumed.
pub fn read_q8_slab(bytes: &[u8]) -> Result<(Shape, f32, Vec<i8>, usize)> {
    let c = read_u32(bytes, 0)? as usize;
    let h = read_u32(bytes, 4)? as usize;
    let w = read_u32(bytes, 8)? as usize;
    let scale = f32::from_le_bytes(read_u32(bytes, 12)?.to_le_bytes());
    let len = q8_slab_len(c, h, w);
    if bytes.len() < len {
        return Err(TensorError::KernelConfig(format!(
            "q8 slab truncated: header promises {len} bytes, have {}",
            bytes.len()
        )));
    }
    let data = bytes[16..len].iter().map(|&b| b as i8).collect();
    Ok((Shape::new(c, h, w), scale, data, len))
}

/// Decodes a slab that must span the whole input exactly.
pub fn from_slab(bytes: &[u8]) -> Result<Tensor> {
    let (t, used) = read_slab(bytes)?;
    if used != bytes.len() {
        return Err(TensorError::KernelConfig(format!(
            "slab has {} trailing bytes",
            bytes.len() - used
        )));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_exact() {
        let t = Tensor::from_fn([3, 5, 4], |c, y, x| {
            (c as f32 * 0.37 - y as f32 * 1.25 + x as f32) * 0.618
        });
        let bytes = to_slab(&t);
        assert_eq!(bytes.len(), slab_len(3, 5, 4));
        let back = from_slab(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_preserves_special_values() {
        let mut t = Tensor::zeros([1, 2, 2]);
        t.set(0, 0, 0, f32::NAN);
        t.set(0, 0, 1, f32::NEG_INFINITY);
        t.set(0, 1, 0, -0.0);
        let back = from_slab(&to_slab(&t)).unwrap();
        assert!(back.get(0, 0, 0).is_nan());
        assert_eq!(back.get(0, 0, 1), f32::NEG_INFINITY);
        assert_eq!(back.get(0, 1, 0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn truncated_slab_is_rejected() {
        let t = Tensor::filled([2, 2, 2], 1.0);
        let bytes = to_slab(&t);
        assert!(from_slab(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_slab(&bytes[..8]).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let t = Tensor::filled([1, 1, 1], 2.0);
        let mut bytes = to_slab(&t);
        bytes.push(0);
        assert!(from_slab(&bytes).is_err());
        // read_slab tolerates the trailing bytes and reports consumption.
        let (back, used) = read_slab(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(used, bytes.len() - 1);
    }

    #[test]
    fn q8_slab_roundtrips_and_rejects_truncation() {
        let shape = Shape::new(2, 3, 4);
        let data: Vec<i8> = (0..24).map(|i| (i * 11 % 255) as i8).collect();
        let mut bytes = Vec::new();
        write_q8_slab(shape, 0.042, &data, &mut bytes).unwrap();
        assert_eq!(bytes.len(), q8_slab_len(2, 3, 4));
        let (s, scale, back, used) = read_q8_slab(&bytes).unwrap();
        assert_eq!(s.as_array(), [2, 3, 4]);
        assert_eq!(scale, 0.042);
        assert_eq!(back, data);
        assert_eq!(used, bytes.len());
        assert!(read_q8_slab(&bytes[..bytes.len() - 1]).is_err());
        assert!(read_q8_slab(&bytes[..10]).is_err());
        // Mismatched data length is rejected at encode time.
        let mut out = Vec::new();
        assert!(write_q8_slab(shape, 1.0, &data[..23], &mut out).is_err());
    }

    #[test]
    fn empty_tensor_roundtrips() {
        let t = Tensor::zeros([0, 0, 0]);
        let back = from_slab(&to_slab(&t)).unwrap();
        assert_eq!(back.shape(), [0, 0, 0]);
    }
}
