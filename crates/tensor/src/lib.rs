//! Minimal dense tensor library used by the DistrEdge reproduction.
//!
//! The distribution algorithms in the `distredge` crate only reason about
//! layer *configurations* (shapes, FLOPs, byte counts), but the reproduction
//! also needs to demonstrate that a vertical split of a layer-volume is
//! *functionally* exact: running each split-part on its slice of the input
//! and stitching the outputs back together must reproduce the output of the
//! un-split layer-volume bit-for-bit.  This crate provides the small CHW
//! tensor type and the convolution / pooling / linear kernels needed for
//! that verification, plus the runnable examples.
//!
//! Convolutions and linear layers execute on a packed im2col + blocked-GEMM
//! path ([`ops::gemm`]): weights are repacked into register-tile panels
//! (once, at deploy time, via [`ops::pack_conv_filter`] /
//! [`ops::pack_linear_filter`]), the im2col lowering is built one
//! cache-sized panel slice at a time, and rayon parallelises over output
//! row tiles.  The clarity-first direct kernels remain as oracles
//! ([`ops::conv2d_direct`], [`ops::linear_direct`]) that the fast path is
//! validated against.
//!
//! # Example
//!
//! ```
//! use tensor::{Tensor, ops};
//!
//! let input = Tensor::filled([3, 8, 8], 1.0);
//! // Weights laid out [c_out][c_in][f][f], one bias per output channel.
//! let weights = vec![0.5; ops::im2col_weight_len(3, 4, 3)];
//! let bias = vec![0.0; 4];
//! let out = ops::conv2d(&input, &weights, &bias, 4, 3, 1, 1, ops::Activation::Relu);
//! assert_eq!(out.shape(), [4, 8, 8]);
//! ```

pub mod error;
pub mod ops;
pub mod shape;
pub mod slab;
pub mod slice;
mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
