//! Height-dimension slicing and stitching.
//!
//! DistrEdge vertically splits a layer-volume along the *height* dimension of
//! its last layer.  Functionally that means: each split-part receives a band
//! of input rows (with halo), computes a band of output rows, and the bands
//! are concatenated back along the height axis.  These helpers implement the
//! row-band extraction and concatenation used by the verification tests and
//! the runnable examples.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::{Result, Tensor};

/// Extracts rows `[start, end)` of every channel into a new tensor.
pub fn slice_rows(t: &Tensor, start: usize, end: usize) -> Result<Tensor> {
    let [c, h, w] = t.shape();
    if start >= end || end > h {
        return Err(TensorError::InvalidRowRange {
            start,
            end,
            rows: h,
        });
    }
    let rows = end - start;
    let mut data = Vec::with_capacity(c * rows * w);
    for ch in 0..c {
        let plane = t.channel(ch);
        data.extend_from_slice(&plane[start * w..end * w]);
    }
    Tensor::from_vec(Shape::new(c, rows, w), data)
}

/// Concatenates tensors along the height dimension.
///
/// All inputs must share channel count and width.  Empty input list is an
/// error.
pub fn concat_rows(parts: &[Tensor]) -> Result<Tensor> {
    let first = parts.first().ok_or_else(|| {
        TensorError::KernelConfig("concat_rows requires at least one part".into())
    })?;
    let [c, _, w] = first.shape();
    let mut total_rows = 0usize;
    for p in parts {
        let [pc, ph, pw] = p.shape();
        if pc != c || pw != w {
            return Err(TensorError::ShapeMismatch {
                left: first.shape(),
                right: p.shape(),
            });
        }
        total_rows += ph;
    }
    let mut out = Tensor::zeros(Shape::new(c, total_rows, w));
    let mut row_offset = 0usize;
    for p in parts {
        let [_, ph, _] = p.shape();
        for ch in 0..c {
            let src = p.channel(ch);
            let dst_plane_start = ch * total_rows * w;
            let dst_start = dst_plane_start + row_offset * w;
            out.data_mut()[dst_start..dst_start + ph * w].copy_from_slice(src);
        }
        row_offset += ph;
    }
    Ok(out)
}

/// Splits a tensor into consecutive row bands given cut points.
///
/// `cuts` are exclusive upper bounds for each band except the last, e.g.
/// cuts `[3, 7]` over a height-10 tensor yields bands `0..3`, `3..7`,
/// `7..10`.  Bands of zero height yield `None` entries so callers can model
/// devices that receive no work.
pub fn split_rows_at(t: &Tensor, cuts: &[usize]) -> Result<Vec<Option<Tensor>>> {
    let h = t.height();
    let mut bounds = Vec::with_capacity(cuts.len() + 2);
    bounds.push(0usize);
    bounds.extend_from_slice(cuts);
    bounds.push(h);
    let mut parts = Vec::with_capacity(bounds.len() - 1);
    for win in bounds.windows(2) {
        let (a, b) = (win[0], win[1]);
        if b < a || b > h {
            return Err(TensorError::InvalidRowRange {
                start: a,
                end: b,
                rows: h,
            });
        }
        if a == b {
            parts.push(None);
        } else {
            parts.push(Some(slice_rows(t, a, b)?));
        }
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_fn([2, 6, 3], |c, y, x| (c * 1000 + y * 10 + x) as f32)
    }

    #[test]
    fn slice_then_concat_roundtrip() {
        let t = sample();
        let a = slice_rows(&t, 0, 2).unwrap();
        let b = slice_rows(&t, 2, 5).unwrap();
        let c = slice_rows(&t, 5, 6).unwrap();
        let back = concat_rows(&[a, b, c]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn slice_rows_shape() {
        let t = sample();
        let s = slice_rows(&t, 1, 4).unwrap();
        assert_eq!(s.shape(), [2, 3, 3]);
        assert_eq!(s.get(0, 0, 0), 10.0);
        assert_eq!(s.get(1, 2, 2), 1032.0);
    }

    #[test]
    fn slice_rows_invalid() {
        let t = sample();
        assert!(slice_rows(&t, 3, 3).is_err());
        assert!(slice_rows(&t, 4, 2).is_err());
        assert!(slice_rows(&t, 0, 7).is_err());
    }

    #[test]
    fn concat_rejects_mismatched_width() {
        let a = Tensor::zeros([1, 2, 3]);
        let b = Tensor::zeros([1, 2, 4]);
        assert!(concat_rows(&[a, b]).is_err());
    }

    #[test]
    fn concat_rejects_empty() {
        assert!(concat_rows(&[]).is_err());
    }

    #[test]
    fn split_rows_at_with_empty_band() {
        let t = sample();
        let parts = split_rows_at(&t, &[0, 4]).unwrap();
        assert_eq!(parts.len(), 3);
        assert!(parts[0].is_none());
        assert_eq!(parts[1].as_ref().unwrap().height(), 4);
        assert_eq!(parts[2].as_ref().unwrap().height(), 2);
    }

    #[test]
    fn split_rows_at_rejects_decreasing_cuts() {
        let t = sample();
        assert!(split_rows_at(&t, &[4, 2]).is_err());
    }

    #[test]
    fn split_rows_then_concat_ignoring_empties() {
        let t = sample();
        let parts = split_rows_at(&t, &[2, 2, 5]).unwrap();
        let non_empty: Vec<Tensor> = parts.into_iter().flatten().collect();
        let back = concat_rows(&non_empty).unwrap();
        assert_eq!(back, t);
    }
}
