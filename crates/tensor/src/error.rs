//! Error type for tensor operations.

use std::fmt;

/// Errors raised by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: [usize; 3],
        /// Shape of the right-hand operand.
        right: [usize; 3],
    },
    /// A row range is out of bounds or empty.
    InvalidRowRange {
        /// Requested start row (inclusive).
        start: usize,
        /// Requested end row (exclusive).
        end: usize,
        /// Number of rows available.
        rows: usize,
    },
    /// A kernel was configured inconsistently (e.g. weight size vs. channels).
    KernelConfig(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, expected } => {
                write!(
                    f,
                    "data length {len} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::InvalidRowRange { start, end, rows } => {
                write!(
                    f,
                    "invalid row range {start}..{end} for tensor with {rows} rows"
                )
            }
            TensorError::KernelConfig(msg) => write!(f, "kernel configuration error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            len: 3,
            expected: 6,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("6"));
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            left: [1, 2, 3],
            right: [4, 5, 6],
        };
        assert!(e.to_string().contains("[1, 2, 3]"));
    }

    #[test]
    fn display_row_range() {
        let e = TensorError::InvalidRowRange {
            start: 5,
            end: 2,
            rows: 10,
        };
        assert!(e.to_string().contains("5..2"));
    }

    #[test]
    fn display_kernel_config() {
        let e = TensorError::KernelConfig("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TensorError::KernelConfig("x".into()));
    }
}
