//! The dense CHW tensor type.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A dense, row-major, channel-first (CHW) `f32` tensor.
///
/// The element at channel `c`, row `y`, column `x` lives at index
/// `c * h * w + y * w + x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data in CHW order.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                expected: shape.volume(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Self {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a zero tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor whose elements are produced by `f(c, y, x)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.volume());
        for c in 0..shape.c {
            for y in 0..shape.h {
                for x in 0..shape.w {
                    data.push(f(c, y, x));
                }
            }
        }
        Self { shape, data }
    }

    /// Shape as a `[c, h, w]` array.
    pub fn shape(&self) -> [usize; 3] {
        self.shape.as_array()
    }

    /// Shape as a [`Shape`].
    pub fn shape_struct(&self) -> Shape {
        self.shape
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shape.c
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.shape.h
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.shape.w
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access (checked in debug builds through slice indexing).
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.index(c, y, x)]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.index(c, y, x);
        self.data[i] = v;
    }

    #[inline]
    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.shape.c && y < self.shape.h && x < self.shape.w);
        (c * self.shape.h + y) * self.shape.w + x
    }

    /// Borrow one channel plane as a row-major slice.
    pub fn channel(&self, c: usize) -> &[f32] {
        let plane = self.shape.plane();
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Element-wise addition; shapes must match.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape,
            data,
        })
    }

    /// Maximum absolute difference between two tensors of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Returns `true` if every element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }

    /// Sum of all elements (useful for cheap checksums in tests).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Flattens the tensor into a `[volume, 1, 1]` vector tensor.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::new(self.shape.volume(), 1, 1),
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec([1, 2, 2], vec![0.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec([1, 2, 2], vec![0.0; 5]),
            Err(TensorError::LengthMismatch {
                len: 5,
                expected: 4
            })
        ));
    }

    #[test]
    fn indexing_is_chw_row_major() {
        let t = Tensor::from_fn([2, 3, 4], |c, y, x| (c * 100 + y * 10 + x) as f32);
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.get(0, 2, 3), 23.0);
        assert_eq!(t.get(1, 1, 2), 112.0);
        assert_eq!(t.data()[12 + 4 + 2], 112.0);
    }

    #[test]
    fn set_and_get() {
        let mut t = Tensor::zeros([1, 2, 2]);
        t.set(0, 1, 1, 7.5);
        assert_eq!(t.get(0, 1, 1), 7.5);
    }

    #[test]
    fn channel_plane_borrow() {
        let t = Tensor::from_fn([2, 2, 2], |c, _, _| c as f32);
        assert_eq!(t.channel(0), &[0.0; 4]);
        assert_eq!(t.channel(1), &[1.0; 4]);
    }

    #[test]
    fn add_matches_elementwise() {
        let a = Tensor::filled([1, 2, 2], 1.5);
        let b = Tensor::filled([1, 2, 2], 2.0);
        let c = a.add(&b).unwrap();
        assert!(c.data().iter().all(|&v| (v - 3.5).abs() < 1e-6));
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros([1, 2, 2]);
        let b = Tensor::zeros([1, 2, 3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Tensor::filled([1, 2, 2], 1.0);
        let mut b = a.clone();
        b.set(0, 0, 0, 1.05);
        assert!((a.max_abs_diff(&b).unwrap() - 0.05).abs() < 1e-6);
        assert!(a.approx_eq(&b, 0.1));
        assert!(!a.approx_eq(&b, 0.01));
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::from_fn([2, 2, 2], |c, y, x| (c + y + x) as f32);
        let f = t.flatten();
        assert_eq!(f.shape(), [8, 1, 1]);
        assert_eq!(f.data(), t.data());
    }

    #[test]
    fn sum_is_total() {
        let t = Tensor::filled([2, 3, 4], 2.0);
        assert_eq!(t.sum(), 48.0);
    }
}
