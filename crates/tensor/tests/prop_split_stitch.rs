//! Property-based tests for the height-split / stitch invariants.
//!
//! The core invariant behind DistrEdge's vertical split is that computing a
//! convolution (or pooling) band-by-band with correct halos and concatenating
//! the bands reproduces the full-layer output.  These tests exercise the
//! invariant across random geometries and random cut points.

use proptest::prelude::*;
use tensor::ops::{conv2d, conv2d_rows, im2col_weight_len, maxpool2d, maxpool2d_rows, Activation};
use tensor::shape::input_rows_for_output;
use tensor::slice::{concat_rows, slice_rows, split_rows_at};
use tensor::Tensor;

fn pseudo_tensor(c: usize, h: usize, w: usize, seed: u64) -> Tensor {
    Tensor::from_fn([c, h, w], |ci, y, x| {
        let v = (ci as u64)
            .wrapping_mul(2654435761)
            .wrapping_add((y as u64).wrapping_mul(40503))
            .wrapping_add((x as u64).wrapping_mul(9973))
            .wrapping_add(seed);
        ((v % 2048) as f32 / 1024.0) - 1.0
    })
}

fn pseudo_weights(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((v % 1000) as f32 / 500.0) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Slicing a tensor at arbitrary cut points and re-concatenating the
    /// non-empty bands reproduces the original tensor.
    #[test]
    fn slice_concat_roundtrip(
        c in 1usize..4,
        h in 2usize..24,
        w in 1usize..12,
        seed in any::<u64>(),
        raw_cuts in proptest::collection::vec(0usize..24, 0..4),
    ) {
        let t = pseudo_tensor(c, h, w, seed);
        let mut cuts: Vec<usize> = raw_cuts.into_iter().map(|v| v % (h + 1)).collect();
        cuts.sort_unstable();
        let parts = split_rows_at(&t, &cuts).unwrap();
        let non_empty: Vec<Tensor> = parts.into_iter().flatten().collect();
        let back = concat_rows(&non_empty).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Banded convolution with minimal halo equals full convolution for any
    /// cut position and any (f, s, p) in the common CNN range.
    #[test]
    fn banded_conv_equals_full(
        c_in in 1usize..3,
        c_out in 1usize..4,
        h in 6usize..20,
        w in 4usize..10,
        f in 1usize..4,
        stride in 1usize..3,
        seed in any::<u64>(),
        cut_frac in 0.1f64..0.9,
    ) {
        let padding = f / 2;
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0xabc);
        let bias = pseudo_weights(c_out, seed ^ 0x123);
        let full = conv2d(&input, &weights, &bias, c_out, f, stride, padding, Activation::Relu);
        let out_h = full.height();
        prop_assume!(out_h >= 2);
        let cut = ((out_h as f64 * cut_frac) as usize).clamp(1, out_h - 1);

        let mut bands = Vec::new();
        for (lo_out, hi_out) in [(0, cut), (cut, out_h)] {
            let (lo, hi) = input_rows_for_output(lo_out, hi_out, f, stride, padding, h);
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = conv2d_rows(
                &band_in, lo, h, lo_out, hi_out, &weights, &bias, c_out, f, stride, padding,
                Activation::Relu,
            ).unwrap();
            bands.push(band);
        }
        let stitched = concat_rows(&bands).unwrap();
        prop_assert!(stitched.approx_eq(&full, 1e-4));
    }

    /// Banded max-pooling equals full max-pooling.
    #[test]
    fn banded_pool_equals_full(
        c in 1usize..3,
        h in 6usize..24,
        w in 4usize..12,
        f in 2usize..4,
        seed in any::<u64>(),
        cut_frac in 0.1f64..0.9,
    ) {
        let stride = f;
        prop_assume!(h >= f && w >= f);
        let input = pseudo_tensor(c, h, w, seed);
        let full = maxpool2d(&input, f, stride);
        let out_h = full.height();
        prop_assume!(out_h >= 2);
        let cut = ((out_h as f64 * cut_frac) as usize).clamp(1, out_h - 1);

        let mut bands = Vec::new();
        for (lo_out, hi_out) in [(0, cut), (cut, out_h)] {
            let (lo, hi) = input_rows_for_output(lo_out, hi_out, f, stride, 0, h);
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = maxpool2d_rows(&band_in, lo, h, lo_out, hi_out, f, stride).unwrap();
            bands.push(band);
        }
        let stitched = concat_rows(&bands).unwrap();
        prop_assert!(stitched.approx_eq(&full, 0.0));
    }
}
