//! Property-based equivalence of the packed convolution paths against the
//! direct loop-nest oracle.
//!
//! Invariants across random geometries (channels, filter, stride, padding,
//! band splits):
//!
//! * **oracle agreement (GEMM)** — the im2col GEMM path matches the direct
//!   kernel within `1e-4` (the paths sum in different orders only over the
//!   zero-padding taps the direct kernel skips);
//! * **oracle agreement (Winograd)** — the Winograd F(2×2,3×3) path matches
//!   the direct kernel within a *relative* `1e-3` (its summation order
//!   differs by construction), over full outputs and halo-overlapped row
//!   bands alike;
//! * **band determinism** — on the routed packed path (GEMM or Winograd
//!   per layer geometry), computing a band split and stitching is
//!   *bit-exact* against the full-output call, for any cut points.  This
//!   is the stronger property the distributed runtime's bit-exactness
//!   tests rely on.

use proptest::prelude::*;
use tensor::ops::{
    conv2d_direct, conv2d_rows_gemm, conv2d_rows_packed, conv2d_rows_winograd, im2col_weight_len,
    linear_direct, linear_packed, pack_conv_filter, pack_conv_filter_with, pack_linear_filter,
    qkernel_arch, quant_scale, set_qkernel_override, Activation, QKernelArch,
};
use tensor::shape::{conv_out_dim, input_rows_for_output};
use tensor::slice::{concat_rows, slice_rows};
use tensor::Tensor;

fn pseudo_tensor(c: usize, h: usize, w: usize, seed: u64) -> Tensor {
    Tensor::from_fn([c, h, w], |ci, y, x| {
        let v = (ci as u64)
            .wrapping_mul(2654435761)
            .wrapping_add((y as u64).wrapping_mul(40503))
            .wrapping_add((x as u64).wrapping_mul(9973))
            .wrapping_add(seed);
        ((v % 2048) as f32 / 1024.0) - 1.0
    })
}

fn pseudo_weights(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((v % 1000) as f32 / 500.0) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM path ≡ direct oracle within 1e-4 for random conv geometries.
    #[test]
    fn gemm_conv_matches_direct_oracle(
        c_in in 1usize..6,
        c_out in 1usize..10,
        h in 6usize..24,
        w in 4usize..14,
        f in 1usize..5,
        stride in 1usize..3,
        pad_excess in 0usize..2,
        seed in any::<u64>(),
    ) {
        let padding = f / 2 + pad_excess;
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0xabc);
        let bias = pseudo_weights(c_out, seed ^ 0x123);
        prop_assume!(conv_out_dim(h, f, stride, padding).is_some());
        prop_assume!(conv_out_dim(w, f, stride, padding).is_some());

        let oracle = conv2d_direct(&input, &weights, &bias, c_out, f, stride, padding, Activation::Relu);
        // Pin the GEMM path (the router would send stride-1 3×3 draws to
        // Winograd, which has its own tolerance and property below).
        let filter = pack_conv_filter(&weights, c_in, c_out, f, stride).unwrap();
        let fast = conv2d_rows_gemm(
            &input, 0, h, 0, oracle.height(), filter.gemm().unwrap(), &bias, f, stride, padding,
            Activation::Relu,
        ).unwrap();
        prop_assert_eq!(fast.shape(), oracle.shape());
        let diff = fast.max_abs_diff(&oracle).unwrap();
        prop_assert!(diff <= 1e-4, "GEMM vs direct diff {diff}");
    }

    /// On the packed path, banded execution with minimal halos stitches
    /// bit-exactly into the full output, for random geometries and cuts.
    #[test]
    fn packed_band_stitch_is_bit_exact(
        c_in in 1usize..5,
        c_out in 1usize..8,
        h in 8usize..24,
        w in 4usize..12,
        f in 1usize..4,
        stride in 1usize..3,
        seed in any::<u64>(),
        cut_a in 0.1f64..0.9,
        cut_b in 0.1f64..0.9,
    ) {
        let padding = f / 2;
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0xdef);
        let bias = pseudo_weights(c_out, seed ^ 0x456);
        let filter = pack_conv_filter(&weights, c_in, c_out, f, stride).unwrap();
        let out_h = conv_out_dim(h, f, stride, padding).unwrap();
        prop_assume!(out_h >= 3);

        let full = conv2d_rows_packed(
            &input, 0, h, 0, out_h, &filter, &bias, f, stride, padding, Activation::LeakyRelu,
        ).unwrap();

        let mut cuts = [
            ((out_h as f64 * cut_a) as usize).clamp(1, out_h - 1),
            ((out_h as f64 * cut_b) as usize).clamp(1, out_h - 1),
        ];
        cuts.sort_unstable();
        let bounds = [0, cuts[0], cuts[1], out_h];
        let mut bands = Vec::new();
        for pair in bounds.windows(2) {
            let (lo_out, hi_out) = (pair[0], pair[1]);
            if lo_out == hi_out {
                continue;
            }
            let (lo, hi) = input_rows_for_output(lo_out, hi_out, f, stride, padding, h);
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = conv2d_rows_packed(
                &band_in, lo, h, lo_out, hi_out, &filter, &bias, f, stride, padding,
                Activation::LeakyRelu,
            ).unwrap();
            bands.push(band);
        }
        let stitched = concat_rows(&bands).unwrap();
        prop_assert_eq!(stitched, full);
    }

    /// The Winograd path (pinned directly — the router only takes it at
    /// `winograd_preferred` channel counts) ≡ direct oracle within relative
    /// 1e-3 — over the full output and over halo-overlapped row bands —
    /// and banded Winograd outputs stitch bit-exactly into the full
    /// Winograd output.
    #[test]
    fn winograd_matches_direct_oracle_and_stitches_bitwise(
        c_in in 1usize..6,
        c_out in 1usize..10,
        h in 6usize..26,
        w in 4usize..16,
        padding in 0usize..3,
        seed in any::<u64>(),
        cut_a in 0.1f64..0.9,
        cut_b in 0.1f64..0.9,
    ) {
        let (f, stride) = (3usize, 1usize);
        prop_assume!(conv_out_dim(h, f, stride, padding).is_some());
        prop_assume!(conv_out_dim(w, f, stride, padding).is_some());
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0xbeef);
        let bias = pseudo_weights(c_out, seed ^ 0xfeed);
        let filter = pack_conv_filter(&weights, c_in, c_out, f, stride).unwrap();
        prop_assert!(filter.winograd().is_some(), "stride-1 3x3 must pack winograd panels");
        let wino = filter.winograd().unwrap();
        let out_h = conv_out_dim(h, f, stride, padding).unwrap();
        prop_assume!(out_h >= 3);

        let oracle = conv2d_direct(&input, &weights, &bias, c_out, f, stride, padding, Activation::Relu);
        let full = conv2d_rows_winograd(
            &input, 0, h, 0, out_h, wino, &bias, padding, Activation::Relu,
        ).unwrap();
        prop_assert_eq!(full.shape(), oracle.shape());
        for (i, (&a, &b)) in full.data().iter().zip(oracle.data()).enumerate() {
            let tol = 1e-3 * (1.0 + a.abs().max(b.abs()));
            prop_assert!((a - b).abs() <= tol, "winograd vs direct at [{i}]: {a} vs {b}");
        }

        // Random (possibly odd — tile-splitting) cuts: each band computed
        // from its minimal halo slice must equal the full output's rows
        // bitwise, and the stitch must reassemble the full output.
        let mut cuts = [
            ((out_h as f64 * cut_a) as usize).clamp(1, out_h - 1),
            ((out_h as f64 * cut_b) as usize).clamp(1, out_h - 1),
        ];
        cuts.sort_unstable();
        let bounds = [0, cuts[0], cuts[1], out_h];
        let mut bands = Vec::new();
        for pair in bounds.windows(2) {
            let (lo_out, hi_out) = (pair[0], pair[1]);
            if lo_out == hi_out {
                continue;
            }
            let (lo, hi) = input_rows_for_output(lo_out, hi_out, f, stride, padding, h);
            let band_in = slice_rows(&input, lo, hi).unwrap();
            let band = conv2d_rows_winograd(
                &band_in, lo, h, lo_out, hi_out, wino, &bias, padding, Activation::Relu,
            ).unwrap();
            prop_assert_eq!(&band, &slice_rows(&full, lo_out, hi_out).unwrap());
            bands.push(band);
        }
        prop_assert_eq!(concat_rows(&bands).unwrap(), full);
    }

    /// Int8 quantized path ≡ direct f32 oracle within the *analytic*
    /// quantization error bound, over random geometries — the
    /// ROADMAP-prescribed analogue of the Winograd rel-1e-3 oracle, with
    /// the tolerance derived instead of guessed:
    /// `|Δ| ≤ s_w/2·Σ|a| + s_a/2·Σ|w| + K·s_a·s_w/4` per output element
    /// (half-ulp rounding on each side plus the cross term; ReLU is
    /// 1-Lipschitz so the bound survives the activation).
    #[test]
    fn quantized_conv_matches_direct_within_bound(
        c_in in 1usize..6,
        c_out in 1usize..10,
        h in 6usize..24,
        w in 4usize..14,
        f in 1usize..5,
        stride in 1usize..3,
        pad_excess in 0usize..2,
        seed in any::<u64>(),
    ) {
        let padding = f / 2 + pad_excess;
        prop_assume!(conv_out_dim(h, f, stride, padding).is_some());
        prop_assume!(conv_out_dim(w, f, stride, padding).is_some());
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0x9a7);
        let bias = pseudo_weights(c_out, seed ^ 0x5c3);
        let scale_in = quant_scale(input.data());
        let filter = pack_conv_filter_with(&weights, c_in, c_out, f, stride, Some(scale_in)).unwrap();
        prop_assert!(filter.quant().is_some() && filter.gemm().is_none());
        let out_h = conv_out_dim(h, f, stride, padding).unwrap();

        let q = conv2d_rows_packed(
            &input, 0, h, 0, out_h, &filter, &bias, f, stride, padding, Activation::Relu,
        ).unwrap();
        let oracle = conv2d_direct(&input, &weights, &bias, c_out, f, stride, padding, Activation::Relu);
        prop_assert_eq!(q.shape(), oracle.shape());

        let scale_w = filter.quant().unwrap().scale();
        let abs_in = Tensor::from_fn(input.shape(), |c, y, x| input.get(c, y, x).abs());
        let ones = vec![1.0; im2col_weight_len(c_in, 1, f)];
        let a_l1 = conv2d_direct(&abs_in, &ones, &[0.0], 1, f, stride, padding, Activation::None);
        let k = c_in * f * f;
        for oc in 0..c_out {
            let w_l1: f32 = weights[oc * k..(oc + 1) * k].iter().map(|v| v.abs()).sum();
            for oy in 0..q.height() {
                for ox in 0..q.width() {
                    let bound = 0.5 * scale_w * a_l1.get(0, oy, ox)
                        + 0.5 * scale_in * w_l1
                        + 0.25 * (k as f32) * scale_in * scale_w
                        + 1e-3 * (1.0 + oracle.get(oc, oy, ox).abs());
                    let diff = (q.get(oc, oy, ox) - oracle.get(oc, oy, ox)).abs();
                    prop_assert!(diff <= bound, "[{},{},{}] diff {} > bound {}", oc, oy, ox, diff, bound);
                }
            }
        }
    }

    /// On the int8 path, banded execution with minimal halos stitches
    /// *bit-exactly* into the full output (the deploy-time activation
    /// scale is shared by every band), and every available int8 dispatch
    /// arm produces bit-identical outputs.
    #[test]
    fn quantized_band_stitch_is_bit_exact_across_arms(
        c_in in 1usize..5,
        c_out in 1usize..8,
        h in 8usize..24,
        w in 4usize..12,
        f in 1usize..4,
        stride in 1usize..3,
        seed in any::<u64>(),
        cut_a in 0.1f64..0.9,
        cut_b in 0.1f64..0.9,
    ) {
        let padding = f / 2;
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0x111);
        let bias = pseudo_weights(c_out, seed ^ 0x222);
        let scale_in = quant_scale(input.data());
        let filter = pack_conv_filter_with(&weights, c_in, c_out, f, stride, Some(scale_in)).unwrap();
        let out_h = conv_out_dim(h, f, stride, padding).unwrap();
        prop_assume!(out_h >= 3);

        let mut cuts = [
            ((out_h as f64 * cut_a) as usize).clamp(1, out_h - 1),
            ((out_h as f64 * cut_b) as usize).clamp(1, out_h - 1),
        ];
        cuts.sort_unstable();
        let bounds = [0, cuts[0], cuts[1], out_h];

        let mut per_arm: Vec<Tensor> = Vec::new();
        for arm in [QKernelArch::Scalar, QKernelArch::Avx2, QKernelArch::Vnni] {
            set_qkernel_override(Some(arm));
            if qkernel_arch() != arm {
                continue; // hardware tops out below this arm
            }
            let full = conv2d_rows_packed(
                &input, 0, h, 0, out_h, &filter, &bias, f, stride, padding, Activation::LeakyRelu,
            ).unwrap();
            let mut bands = Vec::new();
            for pair in bounds.windows(2) {
                let (lo_out, hi_out) = (pair[0], pair[1]);
                if lo_out == hi_out {
                    continue;
                }
                let (lo, hi) = input_rows_for_output(lo_out, hi_out, f, stride, padding, h);
                let band_in = slice_rows(&input, lo, hi).unwrap();
                let band = conv2d_rows_packed(
                    &band_in, lo, h, lo_out, hi_out, &filter, &bias, f, stride, padding,
                    Activation::LeakyRelu,
                ).unwrap();
                bands.push(band);
            }
            let stitched = concat_rows(&bands).unwrap();
            prop_assert!(stitched == full, "int8 bands must stitch bit-exactly ({})",
                arm.label());
            per_arm.push(full);
        }
        set_qkernel_override(None);
        for pair in per_arm.windows(2) {
            prop_assert!(pair[0] == pair[1], "int8 dispatch arms must be bit-exact");
        }
    }

    /// GEMM-routed linear ≡ serial oracle within 1e-4, and prepacked ≡
    /// per-call packing bit-exactly.
    #[test]
    fn gemm_linear_matches_direct_oracle(
        in_features in 1usize..600,
        out_features in 1usize..40,
        seed in any::<u64>(),
    ) {
        let input = Tensor::from_vec(
            [in_features, 1, 1],
            pseudo_weights(in_features, seed),
        ).unwrap();
        let weights = pseudo_weights(in_features * out_features, seed ^ 0x777);
        let bias = pseudo_weights(out_features, seed ^ 0x888);
        let oracle = linear_direct(&input, &weights, &bias, out_features, Activation::Relu).unwrap();
        let filter = pack_linear_filter(&weights, in_features, out_features).unwrap();
        let fast = linear_packed(&input, &filter, &bias, Activation::Relu).unwrap();
        let diff = fast.max_abs_diff(&oracle).unwrap();
        prop_assert!(diff <= 1e-4, "linear GEMM vs direct diff {diff}");
    }
}
