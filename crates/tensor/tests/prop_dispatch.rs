//! Property-based bit-exactness across micro-kernel dispatch arms.
//!
//! Every arm (scalar / AVX2 / AVX-512) implements the identical per-element
//! op sequence — separate multiply and add, ascending `k` — so forcing the
//! scalar fallback must reproduce the auto-dispatched output *bitwise*, on
//! the GEMM conv path, the Winograd path and the FC path alike.  This is
//! the property that lets a heterogeneous device fleet (or a CI box without
//! AVX) interoperate with bit-exact distributed execution, and it is what
//! the `DISTREDGE_FORCE_SCALAR` CI job leans on.
//!
//! The override is process-global, so the tests serialise on a mutex.

use proptest::prelude::*;
use std::sync::Mutex;
use tensor::ops::{
    conv2d_rows_packed, conv2d_rows_winograd, im2col_weight_len, kernel_arch, linear_packed,
    pack_conv_filter, pack_linear_filter, set_kernel_override, Activation, KernelArch,
};
use tensor::shape::conv_out_dim;
use tensor::Tensor;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `body` once per arm the hardware can execute (always at least
/// scalar), returning the per-arm outputs for comparison.  Restores
/// automatic dispatch afterwards even on panic (the next lock holder
/// re-forces its own arm anyway).
fn with_each_arm<T>(mut body: impl FnMut(KernelArch) -> T) -> Vec<(KernelArch, T)> {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_kernel_override(None);
    let top = kernel_arch();
    let mut out = Vec::new();
    for arm in [KernelArch::Scalar, KernelArch::Avx2, KernelArch::Avx512] {
        if arm > top {
            break;
        }
        set_kernel_override(Some(arm));
        out.push((arm, body(arm)));
    }
    set_kernel_override(None);
    out
}

fn pseudo_tensor(c: usize, h: usize, w: usize, seed: u64) -> Tensor {
    Tensor::from_fn([c, h, w], |ci, y, x| {
        let v = (ci as u64)
            .wrapping_mul(2654435761)
            .wrapping_add((y as u64).wrapping_mul(40503))
            .wrapping_add((x as u64).wrapping_mul(9973))
            .wrapping_add(seed);
        ((v % 2048) as f32 / 1024.0) - 1.0
    })
}

fn pseudo_weights(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((v % 1000) as f32 / 500.0) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conv outputs are bit-identical across every dispatch arm, on both
    /// the routed packed path and — for stride-1 3×3 draws — the Winograd
    /// path pinned directly (its 16 batched GEMMs run the same
    /// micro-kernel, and the router only takes it at `winograd_preferred`
    /// channel counts these small draws never reach).
    #[test]
    fn conv_is_bit_exact_across_dispatch_arms(
        c_in in 1usize..6,
        c_out in 1usize..12,
        h in 6usize..22,
        w in 4usize..14,
        f in 1usize..4,
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        let padding = f / 2;
        prop_assume!(conv_out_dim(h, f, stride, padding).is_some());
        prop_assume!(conv_out_dim(w, f, stride, padding).is_some());
        let input = pseudo_tensor(c_in, h, w, seed);
        let weights = pseudo_weights(im2col_weight_len(c_in, c_out, f), seed ^ 0x51ac);
        let bias = pseudo_weights(c_out, seed ^ 0xd15b);
        let filter = pack_conv_filter(&weights, c_in, c_out, f, stride).unwrap();
        let out_h = conv_out_dim(h, f, stride, padding).unwrap();

        let runs = with_each_arm(|_| {
            let routed = conv2d_rows_packed(
                &input, 0, h, 0, out_h, &filter, &bias, f, stride, padding, Activation::Relu,
            ).unwrap();
            let wino = filter.winograd().map(|w| {
                conv2d_rows_winograd(
                    &input, 0, h, 0, out_h, w, &bias, padding, Activation::Relu,
                ).unwrap()
            });
            (routed, wino)
        });
        let (base_arm, baseline) = &runs[0];
        prop_assert_eq!(*base_arm, KernelArch::Scalar);
        for (arm, out) in &runs[1..] {
            prop_assert!(
                out.0 == baseline.0,
                "{} arm diverged from scalar on the routed path (f={}, stride={})",
                arm.label(), f, stride
            );
            prop_assert!(
                out.1 == baseline.1,
                "{} arm diverged from scalar on the winograd path (f={}, stride={})",
                arm.label(), f, stride
            );
        }
    }

    /// The FC path (narrow GEMV route through the same micro-kernel) is
    /// bit-identical across every dispatch arm.
    #[test]
    fn linear_is_bit_exact_across_dispatch_arms(
        in_features in 1usize..600,
        out_features in 1usize..40,
        seed in any::<u64>(),
    ) {
        let input = Tensor::from_vec(
            [in_features, 1, 1],
            pseudo_weights(in_features, seed),
        ).unwrap();
        let weights = pseudo_weights(in_features * out_features, seed ^ 0x777);
        let bias = pseudo_weights(out_features, seed ^ 0x888);
        let filter = pack_linear_filter(&weights, in_features, out_features).unwrap();

        let runs = with_each_arm(|_| {
            linear_packed(&input, &filter, &bias, Activation::Relu).unwrap()
        });
        let (_, baseline) = &runs[0];
        for (arm, out) in &runs[1..] {
            prop_assert!(out == baseline, "{} arm diverged from scalar", arm.label());
        }
    }
}
