//! Execution of models and split-parts on the `tensor` engine.
//!
//! The distribution algorithms never need weights, but the reproduction must
//! demonstrate that a distribution strategy is *functionally lossless*: the
//! stitched outputs of the split-parts equal the output of the un-split
//! model.  This module generates deterministic pseudo-random weights for a
//! model, runs the full model, and runs individual split-parts from their
//! [`PartPlan`]s so integration tests can compare the two.

use crate::layer::{Layer, LayerOp};
use crate::model::Model;
use crate::volume::PartPlan;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::ops::{conv2d_rows, linear, maxpool2d_rows, Activation};
use tensor::slice::slice_rows;
use tensor::{Shape, Tensor};

/// Deterministic weights for every layer of a model.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Per-layer `(weights, bias)`; pooling layers have empty vectors.
    pub layers: Vec<(Vec<f32>, Vec<f32>)>,
}

impl ModelWeights {
    /// Generates small random weights for `model`, seeded so that tests are
    /// reproducible.
    pub fn deterministic(model: &Model, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(model.len());
        for layer in model.layers() {
            let (w_len, b_len) = match layer.op {
                LayerOp::Conv { c_out, f, .. } => (c_out * layer.input.c * f * f, c_out),
                LayerOp::MaxPool { .. } => (0, 0),
                LayerOp::Fc { out_features } => {
                    (out_features * layer.input.volume(), out_features)
                }
            };
            let w: Vec<f32> = (0..w_len).map(|_| rng.gen_range(-0.2..0.2)).collect();
            let b: Vec<f32> = (0..b_len).map(|_| rng.gen_range(-0.1..0.1)).collect();
            layers.push((w, b));
        }
        Self { layers }
    }
}

/// Generates a deterministic input tensor for a model.
pub fn deterministic_input(model: &Model, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let s = model.input();
    Tensor::from_fn([s.c, s.h, s.w], |_, _, _| rng.gen_range(-1.0..1.0))
}

fn run_layer_full(layer: &Layer, weights: &(Vec<f32>, Vec<f32>), input: &Tensor) -> Result<Tensor> {
    run_layer_rows(layer, weights, input, 0, 0, layer.output.h)
}

/// Runs one layer over a row band.
///
/// `input` carries original input rows `[in_row_offset, …)`; output rows
/// `[out_lo, out_hi)` (full-layer coordinates) are produced.
fn run_layer_rows(
    layer: &Layer,
    weights: &(Vec<f32>, Vec<f32>),
    input: &Tensor,
    in_row_offset: usize,
    out_lo: usize,
    out_hi: usize,
) -> Result<Tensor> {
    let t = match layer.op {
        LayerOp::Conv { c_out, f, stride, padding, act } => conv2d_rows(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            &weights.0,
            &weights.1,
            c_out,
            f,
            stride,
            padding,
            act,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry { layer: layer.index, reason: e.to_string() })?,
        LayerOp::MaxPool { f, stride } => {
            maxpool2d_rows(input, in_row_offset, layer.input.h, out_lo, out_hi, f, stride).map_err(
                |e| crate::ModelError::InvalidGeometry { layer: layer.index, reason: e.to_string() },
            )?
        }
        LayerOp::Fc { out_features } => {
            linear(input, &weights.0, &weights.1, out_features, Activation::Relu).map_err(|e| {
                crate::ModelError::InvalidGeometry { layer: layer.index, reason: e.to_string() }
            })?
        }
    };
    Ok(t)
}

/// Runs the full model, returning the output of every layer (index `i` holds
/// the output of layer `i`).
pub fn run_full(model: &Model, weights: &ModelWeights, input: &Tensor) -> Result<Vec<Tensor>> {
    let mut outputs = Vec::with_capacity(model.len());
    let mut current = input.clone();
    for (layer, w) in model.layers().iter().zip(&weights.layers) {
        current = run_layer_full(layer, w, &current)?;
        outputs.push(current.clone());
    }
    Ok(outputs)
}

/// Runs one split-part of a layer-volume.
///
/// `volume_input` is the *full* input feature map of the volume (the model
/// input for the first volume, the previous volume's stitched output
/// otherwise); the part extracts exactly the rows its [`PartPlan`] requires.
/// Returns `None` for an empty part.
pub fn run_part(
    model: &Model,
    weights: &ModelWeights,
    plan: &PartPlan,
    volume_input: &Tensor,
) -> Result<Option<Tensor>> {
    if plan.is_empty() {
        return Ok(None);
    }
    let (in_lo, in_hi) = plan.input_rows;
    let mut band = slice_rows(volume_input, in_lo, in_hi)
        .map_err(|e| crate::ModelError::InvalidSplit(e.to_string()))?;
    let mut band_offset = in_lo;
    for lr in &plan.layers {
        let layer = &model.layers()[lr.layer];
        let w = &weights.layers[lr.layer];
        let (out_lo, out_hi) = lr.out_rows;
        band = run_layer_rows(layer, w, &band, band_offset, out_lo, out_hi)?;
        band_offset = out_lo;
    }
    Ok(Some(band))
}

/// Shape of the model input as a tensor shape (convenience for examples).
pub fn input_shape(model: &Model) -> Shape {
    model.input()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{LayerVolume, PartitionScheme, VolumeSplit};
    use tensor::slice::concat_rows;

    fn small_model() -> Model {
        Model::new(
            "exec-test",
            Shape::new(2, 20, 16),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(6, 3, 1, 1),
                LayerOp::fc(5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn run_full_produces_expected_shapes() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 7);
        let input = deterministic_input(&m, 7);
        let outs = run_full(&m, &w, &input).unwrap();
        assert_eq!(outs.len(), 5);
        assert_eq!(outs[0].shape(), [4, 20, 16]);
        assert_eq!(outs[2].shape(), [4, 10, 8]);
        assert_eq!(outs[3].shape(), [6, 10, 8]);
        assert_eq!(outs[4].shape(), [5, 1, 1]);
    }

    #[test]
    fn weights_are_deterministic() {
        let m = small_model();
        let a = ModelWeights::deterministic(&m, 42);
        let b = ModelWeights::deterministic(&m, 42);
        assert_eq!(a.layers[0].0, b.layers[0].0);
        let c = ModelWeights::deterministic(&m, 43);
        assert_ne!(a.layers[0].0, c.layers[0].0);
    }

    #[test]
    fn split_parts_stitch_to_full_output() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 11);
        let input = deterministic_input(&m, 11);
        let full = run_full(&m, &w, &input).unwrap();

        // Two volumes: [0,3) and [3,4); split each across 3 devices.
        let scheme = PartitionScheme::new(&m, vec![0, 3, 4]).unwrap();
        let mut volume_input = input.clone();
        for volume in scheme.volumes() {
            let h_last = volume.last_output_height(&m);
            let split = VolumeSplit::new(vec![h_last / 4, h_last / 2], h_last);
            let plans = PartPlan::plan_all(&m, volume, &split).unwrap();
            let mut parts = Vec::new();
            for plan in &plans {
                if let Some(out) = run_part(&m, &w, plan, &volume_input).unwrap() {
                    parts.push(out);
                }
            }
            let stitched = concat_rows(&parts).unwrap();
            let reference = &full[volume.end - 1];
            assert!(
                stitched.approx_eq(reference, 1e-4),
                "volume {:?} mismatch: {}",
                volume,
                stitched.max_abs_diff(reference).unwrap()
            );
            volume_input = stitched;
        }
    }

    #[test]
    fn empty_part_returns_none() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 3);
        let input = deterministic_input(&m, 3);
        let v = LayerVolume::new(0, 3);
        let plan = PartPlan::plan(&m, v, 5, 5).unwrap();
        assert!(run_part(&m, &w, &plan, &input).unwrap().is_none());
    }

    #[test]
    fn single_device_split_equals_full_volume() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 9);
        let input = deterministic_input(&m, 9);
        let full = run_full(&m, &w, &input).unwrap();
        let v = LayerVolume::new(0, 4);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let out = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        assert!(out.approx_eq(&full[3], 1e-4));
    }
}
