//! Execution of models and split-parts on the `tensor` engine.
//!
//! The distribution algorithms never need weights, but the reproduction must
//! demonstrate that a distribution strategy is *functionally lossless*: the
//! stitched outputs of the split-parts equal the output of the un-split
//! model.  This module generates deterministic pseudo-random weights for a
//! model, runs the full model, and runs individual split-parts from their
//! [`PartPlan`]s so integration tests can compare the two.
//!
//! Every entry point runs the packed im2col + GEMM kernels.  The raw
//! [`ModelWeights`] functions pack per call (fine for tests and one-shot
//! references); the serving runtime instead builds a [`PackedModelWeights`]
//! once at deploy and runs [`run_part_on_band_packed`] /
//! [`run_head_packed`] per frame — bit-identical outputs, zero per-frame
//! packing.

use crate::layer::{Layer, LayerOp};
use crate::model::Model;
use crate::volume::PartPlan;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::ops::{
    conv2d_rows, conv2d_rows_packed, linear, linear_packed, linear_q8, maxpool2d_rows,
    pack_conv_filter_with, pack_linear_filter, quant_scale, Activation, PackedConvFilter,
    PackedFilter, QuantizedFilter,
};
use tensor::slice::slice_rows;
use tensor::{Shape, Tensor};

/// Deterministic weights for every layer of a model.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Per-layer `(weights, bias)`; pooling layers have empty vectors.
    pub layers: Vec<(Vec<f32>, Vec<f32>)>,
}

impl ModelWeights {
    /// Keeps only the layers whose index is in `keep`, replacing the rest
    /// with empty vectors.  The layer count (and indexing) is preserved, so
    /// sharded weights drop into every `run_*` entry point unchanged — the
    /// caller just must never execute a dropped layer.  This is how the
    /// runtime ships each provider only the layers its assigned split-parts
    /// (plus, for the head device, the FC head) actually run, instead of
    /// preloading the full model everywhere.
    pub fn shard(&self, keep: &std::collections::HashSet<usize>) -> Self {
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                if keep.contains(&i) {
                    layer.clone()
                } else {
                    (Vec::new(), Vec::new())
                }
            })
            .collect();
        Self { layers }
    }

    /// Bytes of weights and biases actually resident in this set (dropped
    /// layers contribute nothing).
    pub fn resident_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|(w, b)| (w.len() + b.len()) * std::mem::size_of::<f32>())
            .sum()
    }

    /// Generates small random weights for `model`, seeded so that tests are
    /// reproducible.
    pub fn deterministic(model: &Model, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(model.len());
        for layer in model.layers() {
            let (w_len, b_len) = match layer.op {
                LayerOp::Conv { c_out, f, .. } => (c_out * layer.input.c * f * f, c_out),
                LayerOp::MaxPool { .. } => (0, 0),
                LayerOp::Fc { out_features } => (out_features * layer.input.volume(), out_features),
            };
            let w: Vec<f32> = (0..w_len).map(|_| rng.gen_range(-0.2..0.2)).collect();
            let b: Vec<f32> = (0..b_len).map(|_| rng.gen_range(-0.1..0.1)).collect();
            layers.push((w, b));
        }
        Self { layers }
    }
}

/// Per-layer activation scales for int8 quantized serving.
///
/// Entry `i` is the symmetric quantization scale of layer `i`'s *input*
/// activations (`0.0` = the layer stays on the f32 path).  The spec is
/// computed once at deploy on the device that holds the full weights
/// ([`QuantSpec::calibrate`]) and shipped to providers alongside their
/// weight shards — every device quantizing a layer against the *same*
/// static scale is what keeps band outputs bitwise stitchable.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSpec {
    scales: Vec<f32>,
}

impl QuantSpec {
    /// Minimum GEMM depth `c_in·f·f` for a conv layer to take the int8
    /// path.  Below this the per-column quantization overhead eats the
    /// int8 throughput win (the VGG stem's K=27 stays f32).
    pub const CONV_MIN_K: usize = 72;
    /// Minimum `in_features` for an FC layer to take the int8 path.
    pub const FC_MIN_IN: usize = 256;

    /// Wraps raw per-layer scales (`0.0` = not quantized).
    pub fn new(scales: Vec<f32>) -> Self {
        Self { scales }
    }

    /// Calibrates activation scales for `model` by running the f32
    /// reference over deterministic probe inputs and recording each
    /// quantizable layer's input range.  Requires the *full* weights —
    /// this runs on the deploying device, never on a provider holding a
    /// shard.
    pub fn calibrate(model: &Model, weights: &ModelWeights) -> Result<Self> {
        let mut max_abs = vec![0.0f32; model.len()];
        for seed in [0xCA11u64, 0xCA12, 0xCA13] {
            let input = deterministic_input(model, seed);
            let outs = run_full(model, weights, &input)?;
            for i in 0..model.len() {
                let t = if i == 0 { &input } else { &outs[i - 1] };
                for &v in t.data() {
                    max_abs[i] = max_abs[i].max(v.abs());
                }
            }
        }
        let scales = model
            .layers()
            .iter()
            .zip(&max_abs)
            .map(|(layer, &m)| {
                if Self::layer_is_quantizable(layer) {
                    quant_scale(&[m])
                } else {
                    0.0
                }
            })
            .collect();
        Ok(Self { scales })
    }

    /// Whether the routing policy sends this layer to the int8 kernels.
    pub fn layer_is_quantizable(layer: &Layer) -> bool {
        let k = match layer.op {
            LayerOp::Conv { f, .. } => {
                let k = layer.input.c * f * f;
                if k < Self::CONV_MIN_K {
                    return false;
                }
                k
            }
            LayerOp::Fc { .. } => {
                let k = layer.input.volume();
                if k < Self::FC_MIN_IN {
                    return false;
                }
                k
            }
            LayerOp::MaxPool { .. } => return false,
        };
        k <= tensor::ops::qgemm::MAX_QUANT_K
    }

    /// The input scale for layer `index`, or `None` when the layer runs f32.
    pub fn layer_scale(&self, index: usize) -> Option<f32> {
        match self.scales.get(index) {
            Some(&s) if s > 0.0 => Some(s),
            _ => None,
        }
    }

    /// Raw per-layer scales (`0.0` = not quantized).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Number of layers routed to the int8 kernels.
    pub fn quantized_layer_count(&self) -> usize {
        self.scales.iter().filter(|&&s| s > 0.0).count()
    }
}

/// One layer's weights in GEMM-panel form.
#[derive(Debug, Clone)]
pub enum PackedLayerWeights {
    /// A conv layer packed for every path its geometry can take: the im2col
    /// `[c_out] × [c_in·f·f]` panels always, plus the Winograd-transformed
    /// panels for stride-1 3×3 layers (see [`tensor::ops::PackedConvFilter`]).
    Conv {
        /// Prepacked conv panels (GEMM + Winograd where eligible).
        filter: PackedConvFilter,
        /// One bias entry per output channel.
        bias: Vec<f32>,
    },
    /// An FC layer packed into `[out] × [in]` GEMM panels.
    Fc {
        /// Prepacked GEMM panels.
        filter: PackedFilter,
        /// One bias entry per output feature.
        bias: Vec<f32>,
    },
    /// An FC layer packed into int8 quad panels for the quantized path.
    QFc {
        /// Prepacked int8 panels with per-row corrections.
        filter: QuantizedFilter,
        /// Calibrated input-activation scale.
        scale_in: f32,
        /// One bias entry per output feature.
        bias: Vec<f32>,
    },
    /// A pooling layer — no weights to pack.
    Pool,
    /// Not resident on this device (sharded out).
    Absent,
}

/// Deploy-time artifact: every resident layer's weights prepacked into GEMM
/// panels, so the per-frame hot path ([`run_part_on_band_packed`] /
/// [`run_head_packed`]) never repacks.
///
/// Built once from (possibly sharded) [`ModelWeights`] at deploy, and grown
/// layer-by-layer via [`PackedModelWeights::install_layer`] when a
/// `Reconfigure` delta shard arrives — so a plan swap repacks only the
/// layers that actually shipped.
#[derive(Debug, Clone)]
pub struct PackedModelWeights {
    layers: Vec<PackedLayerWeights>,
    quant: Option<QuantSpec>,
}

impl PackedModelWeights {
    /// Packs every resident layer of `weights` (empty layers of a shard
    /// become [`PackedLayerWeights::Absent`]) on the f32 paths.
    pub fn pack(model: &Model, weights: &ModelWeights) -> Result<Self> {
        Self::pack_with(model, weights, None)
    }

    /// [`PackedModelWeights::pack`] with an optional quantization spec:
    /// layers the spec covers are packed **int8-only** (quad panels plus a
    /// per-layer weight scale — no f32 panels kept, which is where the ~4×
    /// resident-weight shrink comes from); the rest pack exactly as the
    /// f32 path does.  The spec is retained so `Reconfigure` delta shards
    /// repack the same way via [`PackedModelWeights::install_layer`].
    pub fn pack_with(
        model: &Model,
        weights: &ModelWeights,
        quant: Option<&QuantSpec>,
    ) -> Result<Self> {
        if weights.layers.len() != model.len() {
            return Err(crate::ModelError::InvalidGeometry {
                layer: 0,
                reason: format!(
                    "weights cover {} layers, model has {}",
                    weights.layers.len(),
                    model.len()
                ),
            });
        }
        let layers = model
            .layers()
            .iter()
            .zip(&weights.layers)
            .enumerate()
            .map(|(i, (layer, (w, b)))| {
                Self::pack_layer(layer, w, b, quant.and_then(|q| q.layer_scale(i)))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            layers,
            quant: quant.cloned(),
        })
    }

    fn pack_layer(
        layer: &Layer,
        w: &[f32],
        b: &[f32],
        scale_in: Option<f32>,
    ) -> Result<PackedLayerWeights> {
        let geometry_err = |e: tensor::TensorError| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        };
        let packed = match layer.op {
            LayerOp::MaxPool { .. } => PackedLayerWeights::Pool,
            LayerOp::Conv {
                c_out, f, stride, ..
            } => {
                if w.is_empty() && b.is_empty() {
                    PackedLayerWeights::Absent
                } else {
                    let filter =
                        pack_conv_filter_with(w, layer.input.c, c_out, f, stride, scale_in)
                            .map_err(geometry_err)?;
                    PackedLayerWeights::Conv {
                        filter,
                        bias: b.to_vec(),
                    }
                }
            }
            LayerOp::Fc { out_features } => {
                if w.is_empty() && b.is_empty() {
                    PackedLayerWeights::Absent
                } else if let Some(scale_in) = scale_in {
                    let filter = QuantizedFilter::pack(w, out_features, layer.input.volume())
                        .map_err(geometry_err)?;
                    PackedLayerWeights::QFc {
                        filter,
                        scale_in,
                        bias: b.to_vec(),
                    }
                } else {
                    let filter = pack_linear_filter(w, layer.input.volume(), out_features)
                        .map_err(geometry_err)?;
                    PackedLayerWeights::Fc {
                        filter,
                        bias: b.to_vec(),
                    }
                }
            }
        };
        Ok(packed)
    }

    /// Packs and installs one layer's raw weights (a `Reconfigure` delta
    /// shard) — the only packing a running provider ever does after deploy.
    /// Honors the quantization spec the pack was built with, so a delta
    /// shard lands on the same kernel path as a fresh deploy.
    pub fn install_layer(
        &mut self,
        model: &Model,
        index: usize,
        w: &[f32],
        b: &[f32],
    ) -> Result<()> {
        let layer =
            model
                .layers()
                .get(index)
                .ok_or_else(|| crate::ModelError::InvalidGeometry {
                    layer: index,
                    reason: format!("model has {} layers", model.len()),
                })?;
        let scale_in = self.quant.as_ref().and_then(|q| q.layer_scale(index));
        self.layers[index] = Self::pack_layer(layer, w, b, scale_in)?;
        Ok(())
    }

    /// The quantization spec this pack was built with, if any.
    pub fn quant(&self) -> Option<&QuantSpec> {
        self.quant.as_ref()
    }

    /// Per-layer packed weights.
    pub fn layers(&self) -> &[PackedLayerWeights] {
        &self.layers
    }

    /// Whether layer `index` is resident (packed or weight-free pooling).
    pub fn is_resident(&self, index: usize) -> bool {
        !matches!(self.layers[index], PackedLayerWeights::Absent)
    }

    /// Number of layers holding packed GEMM panels (conv / FC layers whose
    /// weights are resident).
    pub fn packed_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| {
                matches!(
                    l,
                    PackedLayerWeights::Conv { .. }
                        | PackedLayerWeights::Fc { .. }
                        | PackedLayerWeights::QFc { .. }
                )
            })
            .count()
    }

    /// Bytes of packed panels plus biases resident on this device.
    pub fn resident_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                PackedLayerWeights::Conv { filter, bias } => {
                    filter.bytes() + bias.len() * std::mem::size_of::<f32>()
                }
                PackedLayerWeights::Fc { filter, bias } => {
                    filter.bytes() + bias.len() * std::mem::size_of::<f32>()
                }
                PackedLayerWeights::QFc { filter, bias, .. } => {
                    filter.bytes() + bias.len() * std::mem::size_of::<f32>()
                }
                _ => 0,
            })
            .sum()
    }
}

/// Generates a deterministic input tensor for a model.
pub fn deterministic_input(model: &Model, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let s = model.input();
    Tensor::from_fn([s.c, s.h, s.w], |_, _, _| rng.gen_range(-1.0..1.0))
}

fn run_layer_full(layer: &Layer, weights: &(Vec<f32>, Vec<f32>), input: &Tensor) -> Result<Tensor> {
    run_layer_rows(layer, weights, input, 0, 0, layer.output.h)
}

/// Runs one layer over a row band.
///
/// `input` carries original input rows `[in_row_offset, …)`; output rows
/// `[out_lo, out_hi)` (full-layer coordinates) are produced.
fn run_layer_rows(
    layer: &Layer,
    weights: &(Vec<f32>, Vec<f32>),
    input: &Tensor,
    in_row_offset: usize,
    out_lo: usize,
    out_hi: usize,
) -> Result<Tensor> {
    let t = match layer.op {
        LayerOp::Conv {
            c_out,
            f,
            stride,
            padding,
            act,
        } => conv2d_rows(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            &weights.0,
            &weights.1,
            c_out,
            f,
            stride,
            padding,
            act,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        })?,
        LayerOp::MaxPool { f, stride } => maxpool2d_rows(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            f,
            stride,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        })?,
        LayerOp::Fc { out_features } => linear(
            input,
            &weights.0,
            &weights.1,
            out_features,
            Activation::Relu,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        })?,
    };
    Ok(t)
}

/// Runs one layer over a row band from prepacked weights — the per-frame
/// hot path: no packing, ever.
fn run_layer_rows_packed(
    layer: &Layer,
    packed: &PackedLayerWeights,
    input: &Tensor,
    in_row_offset: usize,
    out_lo: usize,
    out_hi: usize,
) -> Result<Tensor> {
    let geometry_err = |reason: String| crate::ModelError::InvalidGeometry {
        layer: layer.index,
        reason,
    };
    let t = match (&layer.op, packed) {
        (
            LayerOp::Conv {
                f,
                stride,
                padding,
                act,
                ..
            },
            PackedLayerWeights::Conv { filter, bias },
        ) => conv2d_rows_packed(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            filter,
            bias,
            *f,
            *stride,
            *padding,
            *act,
        )
        .map_err(|e| geometry_err(e.to_string()))?,
        (LayerOp::MaxPool { f, stride }, PackedLayerWeights::Pool) => maxpool2d_rows(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            *f,
            *stride,
        )
        .map_err(|e| geometry_err(e.to_string()))?,
        (LayerOp::Fc { .. }, PackedLayerWeights::Fc { filter, bias }) => {
            linear_packed(input, filter, bias, Activation::Relu)
                .map_err(|e| geometry_err(e.to_string()))?
        }
        (
            LayerOp::Fc { .. },
            PackedLayerWeights::QFc {
                filter,
                scale_in,
                bias,
            },
        ) => linear_q8(input, filter, *scale_in, bias, Activation::Relu)
            .map_err(|e| geometry_err(e.to_string()))?,
        (_, PackedLayerWeights::Absent) => {
            return Err(geometry_err(
                "layer weights are not resident on this device".into(),
            ))
        }
        _ => {
            return Err(geometry_err(
                "packed weights do not match the layer op".into(),
            ))
        }
    };
    Ok(t)
}

/// Runs the full model, returning the output of every layer (index `i` holds
/// the output of layer `i`).
pub fn run_full(model: &Model, weights: &ModelWeights, input: &Tensor) -> Result<Vec<Tensor>> {
    let mut outputs = Vec::with_capacity(model.len());
    let mut current = input.clone();
    for (layer, w) in model.layers().iter().zip(&weights.layers) {
        current = run_layer_full(layer, w, &current)?;
        outputs.push(current.clone());
    }
    Ok(outputs)
}

/// Runs the full model from prepacked weights, returning the final output —
/// the single-device reference for packed (including quantized) execution.
pub fn run_full_packed(
    model: &Model,
    packed: &PackedModelWeights,
    input: &Tensor,
) -> Result<Tensor> {
    let mut current = input.clone();
    for layer in model.layers() {
        let w = &packed.layers()[layer.index];
        current = run_layer_rows_packed(layer, w, &current, 0, 0, layer.output.h)?;
    }
    Ok(current)
}

/// Runs one split-part of a layer-volume.
///
/// `volume_input` is the *full* input feature map of the volume (the model
/// input for the first volume, the previous volume's stitched output
/// otherwise); the part extracts exactly the rows its [`PartPlan`] requires.
/// Returns `None` for an empty part.
pub fn run_part(
    model: &Model,
    weights: &ModelWeights,
    plan: &PartPlan,
    volume_input: &Tensor,
) -> Result<Option<Tensor>> {
    if plan.is_empty() {
        return Ok(None);
    }
    let (in_lo, in_hi) = plan.input_rows;
    let band = slice_rows(volume_input, in_lo, in_hi)
        .map_err(|e| crate::ModelError::InvalidSplit(e.to_string()))?;
    run_part_on_band(model, weights, plan, band).map(Some)
}

/// Runs one split-part directly on its input band — the entry point the
/// distributed runtime uses, where a provider only ever holds the halo band
/// `[plan.input_rows.0, plan.input_rows.1)` it received over the wire, never
/// the full volume input.
///
/// `band` must carry exactly the rows `plan.input_rows` of the volume input.
/// Takes the band by value: the caller (the runtime's compute thread, or
/// `run_part`) owns it and never needs it afterwards, so the hot path pays
/// no copy before the first kernel.
pub fn run_part_on_band(
    model: &Model,
    weights: &ModelWeights,
    plan: &PartPlan,
    band: Tensor,
) -> Result<Tensor> {
    let (in_lo, in_hi) = plan.input_rows;
    if plan.is_empty() {
        return Err(crate::ModelError::InvalidSplit(
            "run_part_on_band called on an empty part".into(),
        ));
    }
    if band.height() != in_hi - in_lo {
        return Err(crate::ModelError::InvalidSplit(format!(
            "band carries {} rows, part needs rows {in_lo}..{in_hi}",
            band.height()
        )));
    }
    let mut band = band;
    let mut band_offset = in_lo;
    for lr in &plan.layers {
        let layer = &model.layers()[lr.layer];
        let w = &weights.layers[lr.layer];
        let (out_lo, out_hi) = lr.out_rows;
        band = run_layer_rows(layer, w, &band, band_offset, out_lo, out_hi)?;
        band_offset = out_lo;
    }
    Ok(band)
}

/// [`run_part_on_band`] over deploy-time [`PackedModelWeights`] — the entry
/// point the distributed runtime's compute threads use.  Bit-identical to
/// the raw-weight path (packing is pure data movement; both run the same
/// GEMM kernels), but pays zero packing cost per frame.
pub fn run_part_on_band_packed(
    model: &Model,
    packed: &PackedModelWeights,
    plan: &PartPlan,
    band: Tensor,
) -> Result<Tensor> {
    let (in_lo, in_hi) = plan.input_rows;
    if plan.is_empty() {
        return Err(crate::ModelError::InvalidSplit(
            "run_part_on_band_packed called on an empty part".into(),
        ));
    }
    if band.height() != in_hi - in_lo {
        return Err(crate::ModelError::InvalidSplit(format!(
            "band carries {} rows, part needs rows {in_lo}..{in_hi}",
            band.height()
        )));
    }
    let mut band = band;
    let mut band_offset = in_lo;
    for lr in &plan.layers {
        let layer = &model.layers()[lr.layer];
        let w = &packed.layers()[lr.layer];
        let (out_lo, out_hi) = lr.out_rows;
        band = run_layer_rows_packed(layer, w, &band, band_offset, out_lo, out_hi)?;
        band_offset = out_lo;
    }
    Ok(band)
}

/// Runs the model's FC head (the layers past the distributable prefix) on
/// the stitched output of the last layer-volume.  Returns the input
/// unchanged for models without a head.
pub fn run_head(model: &Model, weights: &ModelWeights, stitched: &Tensor) -> Result<Tensor> {
    let mut current = stitched.clone();
    for layer in model.head_layers() {
        let w = &weights.layers[layer.index];
        current = run_layer_full(layer, w, &current)?;
    }
    Ok(current)
}

/// [`run_head`] over deploy-time [`PackedModelWeights`] — what the head
/// device's compute thread runs per frame.
pub fn run_head_packed(
    model: &Model,
    packed: &PackedModelWeights,
    stitched: &Tensor,
) -> Result<Tensor> {
    let mut current = stitched.clone();
    for layer in model.head_layers() {
        let w = &packed.layers()[layer.index];
        current = run_layer_rows_packed(layer, w, &current, 0, 0, layer.output.h)?;
    }
    Ok(current)
}

/// Shape of the model input as a tensor shape (convenience for examples).
pub fn input_shape(model: &Model) -> Shape {
    model.input()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{LayerVolume, PartitionScheme, VolumeSplit};
    use tensor::slice::concat_rows;

    fn small_model() -> Model {
        Model::new(
            "exec-test",
            Shape::new(2, 20, 16),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(6, 3, 1, 1),
                LayerOp::fc(5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn run_full_produces_expected_shapes() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 7);
        let input = deterministic_input(&m, 7);
        let outs = run_full(&m, &w, &input).unwrap();
        assert_eq!(outs.len(), 5);
        assert_eq!(outs[0].shape(), [4, 20, 16]);
        assert_eq!(outs[2].shape(), [4, 10, 8]);
        assert_eq!(outs[3].shape(), [6, 10, 8]);
        assert_eq!(outs[4].shape(), [5, 1, 1]);
    }

    #[test]
    fn sharded_weights_keep_indexing_and_drop_bytes() {
        use std::collections::HashSet;
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 21);
        let keep: HashSet<usize> = [0, 2].into_iter().collect();
        let sharded = w.shard(&keep);
        assert_eq!(sharded.layers.len(), w.layers.len());
        assert_eq!(sharded.layers[0], w.layers[0]);
        assert!(sharded.layers[1].0.is_empty() && sharded.layers[1].1.is_empty());
        assert!(sharded.resident_bytes() < w.resident_bytes());
        // A part that only runs kept layers executes bit-exact on the shard.
        let v = LayerVolume::new(0, 1);
        let input = deterministic_input(&m, 21);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let full = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        let shard_out = run_part(&m, &sharded, &plan, &input).unwrap().unwrap();
        assert_eq!(full, shard_out);
    }

    #[test]
    fn weights_are_deterministic() {
        let m = small_model();
        let a = ModelWeights::deterministic(&m, 42);
        let b = ModelWeights::deterministic(&m, 42);
        assert_eq!(a.layers[0].0, b.layers[0].0);
        let c = ModelWeights::deterministic(&m, 43);
        assert_ne!(a.layers[0].0, c.layers[0].0);
    }

    #[test]
    fn split_parts_stitch_to_full_output() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 11);
        let input = deterministic_input(&m, 11);
        let full = run_full(&m, &w, &input).unwrap();

        // Two volumes: [0,3) and [3,4); split each across 3 devices.
        let scheme = PartitionScheme::new(&m, vec![0, 3, 4]).unwrap();
        let mut volume_input = input.clone();
        for volume in scheme.volumes() {
            let h_last = volume.last_output_height(&m);
            let split = VolumeSplit::new(vec![h_last / 4, h_last / 2], h_last);
            let plans = PartPlan::plan_all(&m, volume, &split).unwrap();
            let mut parts = Vec::new();
            for plan in &plans {
                if let Some(out) = run_part(&m, &w, plan, &volume_input).unwrap() {
                    parts.push(out);
                }
            }
            let stitched = concat_rows(&parts).unwrap();
            let reference = &full[volume.end - 1];
            assert!(
                stitched.approx_eq(reference, 1e-4),
                "volume {:?} mismatch: {}",
                volume,
                stitched.max_abs_diff(reference).unwrap()
            );
            volume_input = stitched;
        }
    }

    #[test]
    fn empty_part_returns_none() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 3);
        let input = deterministic_input(&m, 3);
        let v = LayerVolume::new(0, 3);
        let plan = PartPlan::plan(&m, v, 5, 5).unwrap();
        assert!(run_part(&m, &w, &plan, &input).unwrap().is_none());
    }

    #[test]
    fn single_device_split_equals_full_volume() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 9);
        let input = deterministic_input(&m, 9);
        let full = run_full(&m, &w, &input).unwrap();
        let v = LayerVolume::new(0, 4);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let out = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        assert!(out.approx_eq(&full[3], 1e-4));
    }

    #[test]
    fn run_part_on_band_matches_run_part() {
        // The runtime's entry point: the part executes on just its halo
        // band (what arrived over the wire), never the full volume input.
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 13);
        let input = deterministic_input(&m, 13);
        let v = LayerVolume::new(0, 3);
        let h = v.last_output_height(&m);
        let plan = PartPlan::plan(&m, v, h / 3, h).unwrap();
        let via_full = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        let band = slice_rows(&input, plan.input_rows.0, plan.input_rows.1).unwrap();
        let via_band = run_part_on_band(&m, &w, &plan, band).unwrap();
        assert_eq!(via_band, via_full);
    }

    #[test]
    fn packed_band_execution_is_bit_identical_to_raw() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 29);
        let input = deterministic_input(&m, 29);
        let packed = PackedModelWeights::pack(&m, &w).unwrap();
        let v = LayerVolume::new(0, 3);
        let h = v.last_output_height(&m);
        let plan = PartPlan::plan(&m, v, 0, h / 2).unwrap();
        let band = slice_rows(&input, plan.input_rows.0, plan.input_rows.1).unwrap();
        let raw = run_part_on_band(&m, &w, &plan, band.clone()).unwrap();
        let fast = run_part_on_band_packed(&m, &packed, &plan, band).unwrap();
        assert_eq!(raw, fast, "prepacked weights must not change a single bit");
    }

    #[test]
    fn packed_head_is_bit_identical_to_raw() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 31);
        let input = deterministic_input(&m, 31);
        let packed = PackedModelWeights::pack(&m, &w).unwrap();
        let full = run_full(&m, &w, &input).unwrap();
        let prefix_out = &full[m.distributable_len() - 1];
        let raw = run_head(&m, &w, prefix_out).unwrap();
        let fast = run_head_packed(&m, &packed, prefix_out).unwrap();
        assert_eq!(raw, fast);
    }

    #[test]
    fn packing_a_shard_marks_dropped_layers_absent() {
        use std::collections::HashSet;
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 33);
        let keep: HashSet<usize> = [0, 2].into_iter().collect();
        let packed = PackedModelWeights::pack(&m, &w.shard(&keep)).unwrap();
        assert!(packed.is_resident(0));
        assert!(!packed.is_resident(1));
        assert!(packed.is_resident(2), "pool layers are always resident");
        assert!(!packed.is_resident(3));
        assert_eq!(packed.packed_layer_count(), 1); // layer 0 only (2 is a pool)
        assert!(packed.resident_bytes() > 0);
        // Executing a non-resident layer fails loudly instead of corrupting.
        let v = LayerVolume::new(1, 2);
        let input = deterministic_input(&m, 33);
        let l0_out = run_full(&m, &w, &input).unwrap().remove(0);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let band = slice_rows(&l0_out, plan.input_rows.0, plan.input_rows.1).unwrap();
        assert!(run_part_on_band_packed(&m, &packed, &plan, band).is_err());
    }

    #[test]
    fn install_layer_repacks_exactly_one_layer() {
        use std::collections::HashSet;
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 35);
        let keep: HashSet<usize> = [0, 2].into_iter().collect();
        let mut packed = PackedModelWeights::pack(&m, &w.shard(&keep)).unwrap();
        assert!(!packed.is_resident(1));
        packed
            .install_layer(&m, 1, &w.layers[1].0, &w.layers[1].1)
            .unwrap();
        assert!(packed.is_resident(1));
        assert_eq!(packed.packed_layer_count(), 2);
        // The freshly installed layer computes exactly what a full pack does.
        let full_pack = PackedModelWeights::pack(&m, &w).unwrap();
        let input = deterministic_input(&m, 35);
        let l0_out = run_full(&m, &w, &input).unwrap().remove(0);
        let v = LayerVolume::new(1, 2);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let band = slice_rows(&l0_out, plan.input_rows.0, plan.input_rows.1).unwrap();
        let a = run_part_on_band_packed(&m, &packed, &plan, band.clone()).unwrap();
        let b = run_part_on_band_packed(&m, &full_pack, &plan, band).unwrap();
        assert_eq!(a, b);
        // Out-of-range installs are rejected.
        assert!(packed.install_layer(&m, 99, &[], &[]).is_err());
    }

    fn quantizable_model() -> Model {
        Model::new(
            "quant-test",
            Shape::new(8, 16, 16),
            &[
                LayerOp::conv(16, 3, 1, 1), // K = 8·9 = 72 → int8
                LayerOp::conv(16, 3, 1, 1), // K = 144 → int8
                LayerOp::pool(2, 2),
                LayerOp::fc(10), // in = 16·8·8 = 1024 → int8
            ],
        )
        .unwrap()
    }

    #[test]
    fn calibrated_spec_follows_the_routing_policy() {
        let m = quantizable_model();
        let w = ModelWeights::deterministic(&m, 41);
        let spec = QuantSpec::calibrate(&m, &w).unwrap();
        assert_eq!(spec.quantized_layer_count(), 3);
        assert!(spec.layer_scale(0).is_some());
        assert!(spec.layer_scale(2).is_none(), "pool layers never quantize");
        assert!(spec.layer_scale(3).is_some());
        // A shallow stem stays f32: K = 2·9 = 18 < CONV_MIN_K.
        let shallow = small_model();
        let sw = ModelWeights::deterministic(&shallow, 41);
        let sspec = QuantSpec::calibrate(&shallow, &sw).unwrap();
        assert!(sspec.layer_scale(0).is_none());
    }

    #[test]
    fn quantized_pack_shrinks_resident_bytes() {
        let m = quantizable_model();
        let w = ModelWeights::deterministic(&m, 43);
        let spec = QuantSpec::calibrate(&m, &w).unwrap();
        let f32_pack = PackedModelWeights::pack(&m, &w).unwrap();
        let q_pack = PackedModelWeights::pack_with(&m, &w, Some(&spec)).unwrap();
        let shrink = f32_pack.resident_bytes() as f64 / q_pack.resident_bytes() as f64;
        assert!(shrink >= 3.0, "resident shrink only {shrink:.2}×");
    }

    #[test]
    fn quantized_run_tracks_f32_reference() {
        let m = quantizable_model();
        let w = ModelWeights::deterministic(&m, 47);
        let spec = QuantSpec::calibrate(&m, &w).unwrap();
        let q_pack = PackedModelWeights::pack_with(&m, &w, Some(&spec)).unwrap();
        let input = deterministic_input(&m, 47);
        let oracle = run_full(&m, &w, &input).unwrap().pop().unwrap();
        let quantized = run_full_packed(&m, &q_pack, &input).unwrap();
        assert_eq!(quantized.shape(), oracle.shape());
        let scale: f32 = oracle.data().iter().fold(0.1f32, |a, v| a.max(v.abs()));
        let diff = quantized.max_abs_diff(&oracle).unwrap();
        assert!(
            diff <= 0.05 * scale,
            "quantized output drifts {diff} (range {scale})"
        );
    }

    #[test]
    fn quantized_bands_stitch_bitwise_and_install_keeps_spec() {
        let m = quantizable_model();
        let w = ModelWeights::deterministic(&m, 53);
        let spec = QuantSpec::calibrate(&m, &w).unwrap();
        let q_pack = PackedModelWeights::pack_with(&m, &w, Some(&spec)).unwrap();
        assert_eq!(q_pack.quant(), Some(&spec));
        let input = deterministic_input(&m, 53);
        // Three bands over the conv prefix stitch to the one-band run
        // bitwise — every device quantizes against the same static scales.
        let v = LayerVolume::new(0, m.distributable_len());
        let h = v.last_output_height(&m);
        let whole = {
            let plan = PartPlan::plan(&m, v, 0, h).unwrap();
            let band = slice_rows(&input, plan.input_rows.0, plan.input_rows.1).unwrap();
            run_part_on_band_packed(&m, &q_pack, &plan, band).unwrap()
        };
        let mut parts = Vec::new();
        for (lo, hi) in [(0, h / 3), (h / 3, 2 * h / 3), (2 * h / 3, h)] {
            let plan = PartPlan::plan(&m, v, lo, hi).unwrap();
            let band = slice_rows(&input, plan.input_rows.0, plan.input_rows.1).unwrap();
            parts.push(run_part_on_band_packed(&m, &q_pack, &plan, band).unwrap());
        }
        let stitched = concat_rows(&parts).unwrap();
        assert_eq!(stitched, whole, "quantized bands must stitch bitwise");
        // A Reconfigure delta repacks onto the same int8 path.
        let mut repacked = q_pack.clone();
        repacked
            .install_layer(&m, 3, &w.layers[3].0, &w.layers[3].1)
            .unwrap();
        assert!(matches!(
            repacked.layers()[3],
            PackedLayerWeights::QFc { .. }
        ));
        let a = run_full_packed(&m, &q_pack, &input).unwrap();
        let b = run_full_packed(&m, &repacked, &input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn run_part_on_band_rejects_wrong_band_height() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 13);
        let input = deterministic_input(&m, 13);
        let v = LayerVolume::new(0, 3);
        let plan = PartPlan::plan(&m, v, 0, 4).unwrap();
        let wrong = slice_rows(&input, 0, 2).unwrap();
        assert!(run_part_on_band(&m, &w, &plan, wrong).is_err());
        let empty = PartPlan::plan(&m, v, 4, 4).unwrap();
        assert!(run_part_on_band(&m, &w, &empty, input.clone()).is_err());
    }

    #[test]
    fn run_head_matches_full_model_tail() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 17);
        let input = deterministic_input(&m, 17);
        let full = run_full(&m, &w, &input).unwrap();
        // The head consumes the last distributable layer's output.
        let prefix_out = &full[m.distributable_len() - 1];
        let head_out = run_head(&m, &w, prefix_out).unwrap();
        assert_eq!(&head_out, full.last().unwrap());
    }

    #[test]
    fn run_head_is_identity_without_head() {
        let m = Model::new(
            "nohead",
            Shape::new(2, 8, 8),
            &[LayerOp::conv(3, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let w = ModelWeights::deterministic(&m, 1);
        let t = deterministic_input(&m, 1);
        assert_eq!(run_head(&m, &w, &t).unwrap(), t);
    }
}
