//! Execution of models and split-parts on the `tensor` engine.
//!
//! The distribution algorithms never need weights, but the reproduction must
//! demonstrate that a distribution strategy is *functionally lossless*: the
//! stitched outputs of the split-parts equal the output of the un-split
//! model.  This module generates deterministic pseudo-random weights for a
//! model, runs the full model, and runs individual split-parts from their
//! [`PartPlan`]s so integration tests can compare the two.

use crate::layer::{Layer, LayerOp};
use crate::model::Model;
use crate::volume::PartPlan;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::ops::{conv2d_rows, linear, maxpool2d_rows, Activation};
use tensor::slice::slice_rows;
use tensor::{Shape, Tensor};

/// Deterministic weights for every layer of a model.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Per-layer `(weights, bias)`; pooling layers have empty vectors.
    pub layers: Vec<(Vec<f32>, Vec<f32>)>,
}

impl ModelWeights {
    /// Keeps only the layers whose index is in `keep`, replacing the rest
    /// with empty vectors.  The layer count (and indexing) is preserved, so
    /// sharded weights drop into every `run_*` entry point unchanged — the
    /// caller just must never execute a dropped layer.  This is how the
    /// runtime ships each provider only the layers its assigned split-parts
    /// (plus, for the head device, the FC head) actually run, instead of
    /// preloading the full model everywhere.
    pub fn shard(&self, keep: &std::collections::HashSet<usize>) -> Self {
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                if keep.contains(&i) {
                    layer.clone()
                } else {
                    (Vec::new(), Vec::new())
                }
            })
            .collect();
        Self { layers }
    }

    /// Bytes of weights and biases actually resident in this set (dropped
    /// layers contribute nothing).
    pub fn resident_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|(w, b)| (w.len() + b.len()) * std::mem::size_of::<f32>())
            .sum()
    }

    /// Generates small random weights for `model`, seeded so that tests are
    /// reproducible.
    pub fn deterministic(model: &Model, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(model.len());
        for layer in model.layers() {
            let (w_len, b_len) = match layer.op {
                LayerOp::Conv { c_out, f, .. } => (c_out * layer.input.c * f * f, c_out),
                LayerOp::MaxPool { .. } => (0, 0),
                LayerOp::Fc { out_features } => (out_features * layer.input.volume(), out_features),
            };
            let w: Vec<f32> = (0..w_len).map(|_| rng.gen_range(-0.2..0.2)).collect();
            let b: Vec<f32> = (0..b_len).map(|_| rng.gen_range(-0.1..0.1)).collect();
            layers.push((w, b));
        }
        Self { layers }
    }
}

/// Generates a deterministic input tensor for a model.
pub fn deterministic_input(model: &Model, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let s = model.input();
    Tensor::from_fn([s.c, s.h, s.w], |_, _, _| rng.gen_range(-1.0..1.0))
}

fn run_layer_full(layer: &Layer, weights: &(Vec<f32>, Vec<f32>), input: &Tensor) -> Result<Tensor> {
    run_layer_rows(layer, weights, input, 0, 0, layer.output.h)
}

/// Runs one layer over a row band.
///
/// `input` carries original input rows `[in_row_offset, …)`; output rows
/// `[out_lo, out_hi)` (full-layer coordinates) are produced.
fn run_layer_rows(
    layer: &Layer,
    weights: &(Vec<f32>, Vec<f32>),
    input: &Tensor,
    in_row_offset: usize,
    out_lo: usize,
    out_hi: usize,
) -> Result<Tensor> {
    let t = match layer.op {
        LayerOp::Conv {
            c_out,
            f,
            stride,
            padding,
            act,
        } => conv2d_rows(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            &weights.0,
            &weights.1,
            c_out,
            f,
            stride,
            padding,
            act,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        })?,
        LayerOp::MaxPool { f, stride } => maxpool2d_rows(
            input,
            in_row_offset,
            layer.input.h,
            out_lo,
            out_hi,
            f,
            stride,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        })?,
        LayerOp::Fc { out_features } => linear(
            input,
            &weights.0,
            &weights.1,
            out_features,
            Activation::Relu,
        )
        .map_err(|e| crate::ModelError::InvalidGeometry {
            layer: layer.index,
            reason: e.to_string(),
        })?,
    };
    Ok(t)
}

/// Runs the full model, returning the output of every layer (index `i` holds
/// the output of layer `i`).
pub fn run_full(model: &Model, weights: &ModelWeights, input: &Tensor) -> Result<Vec<Tensor>> {
    let mut outputs = Vec::with_capacity(model.len());
    let mut current = input.clone();
    for (layer, w) in model.layers().iter().zip(&weights.layers) {
        current = run_layer_full(layer, w, &current)?;
        outputs.push(current.clone());
    }
    Ok(outputs)
}

/// Runs one split-part of a layer-volume.
///
/// `volume_input` is the *full* input feature map of the volume (the model
/// input for the first volume, the previous volume's stitched output
/// otherwise); the part extracts exactly the rows its [`PartPlan`] requires.
/// Returns `None` for an empty part.
pub fn run_part(
    model: &Model,
    weights: &ModelWeights,
    plan: &PartPlan,
    volume_input: &Tensor,
) -> Result<Option<Tensor>> {
    if plan.is_empty() {
        return Ok(None);
    }
    let (in_lo, in_hi) = plan.input_rows;
    let band = slice_rows(volume_input, in_lo, in_hi)
        .map_err(|e| crate::ModelError::InvalidSplit(e.to_string()))?;
    run_part_on_band(model, weights, plan, band).map(Some)
}

/// Runs one split-part directly on its input band — the entry point the
/// distributed runtime uses, where a provider only ever holds the halo band
/// `[plan.input_rows.0, plan.input_rows.1)` it received over the wire, never
/// the full volume input.
///
/// `band` must carry exactly the rows `plan.input_rows` of the volume input.
/// Takes the band by value: the caller (the runtime's compute thread, or
/// `run_part`) owns it and never needs it afterwards, so the hot path pays
/// no copy before the first kernel.
pub fn run_part_on_band(
    model: &Model,
    weights: &ModelWeights,
    plan: &PartPlan,
    band: Tensor,
) -> Result<Tensor> {
    let (in_lo, in_hi) = plan.input_rows;
    if plan.is_empty() {
        return Err(crate::ModelError::InvalidSplit(
            "run_part_on_band called on an empty part".into(),
        ));
    }
    if band.height() != in_hi - in_lo {
        return Err(crate::ModelError::InvalidSplit(format!(
            "band carries {} rows, part needs rows {in_lo}..{in_hi}",
            band.height()
        )));
    }
    let mut band = band;
    let mut band_offset = in_lo;
    for lr in &plan.layers {
        let layer = &model.layers()[lr.layer];
        let w = &weights.layers[lr.layer];
        let (out_lo, out_hi) = lr.out_rows;
        band = run_layer_rows(layer, w, &band, band_offset, out_lo, out_hi)?;
        band_offset = out_lo;
    }
    Ok(band)
}

/// Runs the model's FC head (the layers past the distributable prefix) on
/// the stitched output of the last layer-volume.  Returns the input
/// unchanged for models without a head.
pub fn run_head(model: &Model, weights: &ModelWeights, stitched: &Tensor) -> Result<Tensor> {
    let mut current = stitched.clone();
    for layer in model.head_layers() {
        let w = &weights.layers[layer.index];
        current = run_layer_full(layer, w, &current)?;
    }
    Ok(current)
}

/// Shape of the model input as a tensor shape (convenience for examples).
pub fn input_shape(model: &Model) -> Shape {
    model.input()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::{LayerVolume, PartitionScheme, VolumeSplit};
    use tensor::slice::concat_rows;

    fn small_model() -> Model {
        Model::new(
            "exec-test",
            Shape::new(2, 20, 16),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(6, 3, 1, 1),
                LayerOp::fc(5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn run_full_produces_expected_shapes() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 7);
        let input = deterministic_input(&m, 7);
        let outs = run_full(&m, &w, &input).unwrap();
        assert_eq!(outs.len(), 5);
        assert_eq!(outs[0].shape(), [4, 20, 16]);
        assert_eq!(outs[2].shape(), [4, 10, 8]);
        assert_eq!(outs[3].shape(), [6, 10, 8]);
        assert_eq!(outs[4].shape(), [5, 1, 1]);
    }

    #[test]
    fn sharded_weights_keep_indexing_and_drop_bytes() {
        use std::collections::HashSet;
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 21);
        let keep: HashSet<usize> = [0, 2].into_iter().collect();
        let sharded = w.shard(&keep);
        assert_eq!(sharded.layers.len(), w.layers.len());
        assert_eq!(sharded.layers[0], w.layers[0]);
        assert!(sharded.layers[1].0.is_empty() && sharded.layers[1].1.is_empty());
        assert!(sharded.resident_bytes() < w.resident_bytes());
        // A part that only runs kept layers executes bit-exact on the shard.
        let v = LayerVolume::new(0, 1);
        let input = deterministic_input(&m, 21);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let full = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        let shard_out = run_part(&m, &sharded, &plan, &input).unwrap().unwrap();
        assert_eq!(full, shard_out);
    }

    #[test]
    fn weights_are_deterministic() {
        let m = small_model();
        let a = ModelWeights::deterministic(&m, 42);
        let b = ModelWeights::deterministic(&m, 42);
        assert_eq!(a.layers[0].0, b.layers[0].0);
        let c = ModelWeights::deterministic(&m, 43);
        assert_ne!(a.layers[0].0, c.layers[0].0);
    }

    #[test]
    fn split_parts_stitch_to_full_output() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 11);
        let input = deterministic_input(&m, 11);
        let full = run_full(&m, &w, &input).unwrap();

        // Two volumes: [0,3) and [3,4); split each across 3 devices.
        let scheme = PartitionScheme::new(&m, vec![0, 3, 4]).unwrap();
        let mut volume_input = input.clone();
        for volume in scheme.volumes() {
            let h_last = volume.last_output_height(&m);
            let split = VolumeSplit::new(vec![h_last / 4, h_last / 2], h_last);
            let plans = PartPlan::plan_all(&m, volume, &split).unwrap();
            let mut parts = Vec::new();
            for plan in &plans {
                if let Some(out) = run_part(&m, &w, plan, &volume_input).unwrap() {
                    parts.push(out);
                }
            }
            let stitched = concat_rows(&parts).unwrap();
            let reference = &full[volume.end - 1];
            assert!(
                stitched.approx_eq(reference, 1e-4),
                "volume {:?} mismatch: {}",
                volume,
                stitched.max_abs_diff(reference).unwrap()
            );
            volume_input = stitched;
        }
    }

    #[test]
    fn empty_part_returns_none() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 3);
        let input = deterministic_input(&m, 3);
        let v = LayerVolume::new(0, 3);
        let plan = PartPlan::plan(&m, v, 5, 5).unwrap();
        assert!(run_part(&m, &w, &plan, &input).unwrap().is_none());
    }

    #[test]
    fn single_device_split_equals_full_volume() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 9);
        let input = deterministic_input(&m, 9);
        let full = run_full(&m, &w, &input).unwrap();
        let v = LayerVolume::new(0, 4);
        let plan = PartPlan::plan(&m, v, 0, v.last_output_height(&m)).unwrap();
        let out = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        assert!(out.approx_eq(&full[3], 1e-4));
    }

    #[test]
    fn run_part_on_band_matches_run_part() {
        // The runtime's entry point: the part executes on just its halo
        // band (what arrived over the wire), never the full volume input.
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 13);
        let input = deterministic_input(&m, 13);
        let v = LayerVolume::new(0, 3);
        let h = v.last_output_height(&m);
        let plan = PartPlan::plan(&m, v, h / 3, h).unwrap();
        let via_full = run_part(&m, &w, &plan, &input).unwrap().unwrap();
        let band = slice_rows(&input, plan.input_rows.0, plan.input_rows.1).unwrap();
        let via_band = run_part_on_band(&m, &w, &plan, band).unwrap();
        assert_eq!(via_band, via_full);
    }

    #[test]
    fn run_part_on_band_rejects_wrong_band_height() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 13);
        let input = deterministic_input(&m, 13);
        let v = LayerVolume::new(0, 3);
        let plan = PartPlan::plan(&m, v, 0, 4).unwrap();
        let wrong = slice_rows(&input, 0, 2).unwrap();
        assert!(run_part_on_band(&m, &w, &plan, wrong).is_err());
        let empty = PartPlan::plan(&m, v, 4, 4).unwrap();
        assert!(run_part_on_band(&m, &w, &empty, input.clone()).is_err());
    }

    #[test]
    fn run_head_matches_full_model_tail() {
        let m = small_model();
        let w = ModelWeights::deterministic(&m, 17);
        let input = deterministic_input(&m, 17);
        let full = run_full(&m, &w, &input).unwrap();
        // The head consumes the last distributable layer's output.
        let prefix_out = &full[m.distributable_len() - 1];
        let head_out = run_head(&m, &w, prefix_out).unwrap();
        assert_eq!(&head_out, full.last().unwrap());
    }

    #[test]
    fn run_head_is_identity_without_head() {
        let m = Model::new(
            "nohead",
            Shape::new(2, 8, 8),
            &[LayerOp::conv(3, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let w = ModelWeights::deterministic(&m, 1);
        let t = deterministic_input(&m, 1);
        assert_eq!(run_head(&m, &w, &t).unwrap(), t);
    }
}
