//! Per-device memory footprint accounting.
//!
//! The paper argues (§VI-4) that memory is *not* a binding constraint for
//! its setting: state-of-the-art CNNs need well under 1.5 GB while Jetson
//! boards carry 4–32 GB.  This module makes that argument checkable for any
//! model and any distribution strategy: it reports the weights, peak
//! activation and halo-input bytes a split-part places on a device, so a
//! deployment can verify the claim (and users targeting genuinely small
//! devices can reject strategies that exceed a budget).

use crate::model::Model;
use crate::volume::PartPlan;
use crate::BYTES_PER_ELEM;
use serde::{Deserialize, Serialize};

/// Memory footprint of a piece of work, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Bytes of weights and biases that must be resident.
    pub weights_bytes: f64,
    /// Peak activation bytes (largest input + output pair held at once).
    pub peak_activation_bytes: f64,
}

impl MemoryFootprint {
    /// Total resident bytes.
    pub fn total_bytes(&self) -> f64 {
        self.weights_bytes + self.peak_activation_bytes
    }

    /// Accumulates another footprint assuming weights add up while peak
    /// activations do not overlap in time (sequential volumes reuse buffers).
    pub fn accumulate(&mut self, other: &MemoryFootprint) {
        self.weights_bytes += other.weights_bytes;
        self.peak_activation_bytes = self.peak_activation_bytes.max(other.peak_activation_bytes);
    }
}

/// Weight bytes of one layer (FP16 storage, matching the transmission
/// convention of the rest of the crate).
pub fn layer_weight_bytes(model: &Model, layer_index: usize) -> f64 {
    model.layers()[layer_index].weight_count() as f64 * BYTES_PER_ELEM
}

/// Memory footprint of running the *whole* model on one device.
pub fn whole_model_footprint(model: &Model) -> MemoryFootprint {
    let weights_bytes = model.parameter_count() as f64 * BYTES_PER_ELEM;
    let mut peak = 0.0f64;
    for layer in model.layers() {
        let in_bytes = layer.input.volume() as f64 * BYTES_PER_ELEM;
        let out_bytes = layer.output.volume() as f64 * BYTES_PER_ELEM;
        peak = peak.max(in_bytes + out_bytes);
    }
    MemoryFootprint {
        weights_bytes,
        peak_activation_bytes: peak,
    }
}

/// Memory footprint of executing one split-part on a device: the weights of
/// every layer in the part's volume (full weights — vertical splitting does
/// not shard weights) plus the peak of its banded input/output activations.
pub fn part_footprint(model: &Model, part: &PartPlan) -> MemoryFootprint {
    if part.is_empty() {
        return MemoryFootprint::default();
    }
    let mut weights_bytes = 0.0;
    let mut peak = 0.0f64;
    for lr in &part.layers {
        let layer = &model.layers()[lr.layer];
        weights_bytes += layer.weight_count() as f64 * BYTES_PER_ELEM;
        let in_rows = lr.in_rows.1 - lr.in_rows.0;
        let out_rows = lr.out_rows.1 - lr.out_rows.0;
        let in_bytes = layer.input_bytes_for_rows(in_rows);
        let out_bytes = layer.output_bytes_for_rows(out_rows);
        peak = peak.max(in_bytes + out_bytes);
    }
    MemoryFootprint {
        weights_bytes,
        peak_activation_bytes: peak,
    }
}

/// Per-device memory footprint of a full set of per-volume part assignments
/// (outer index: volume, inner index: device).  Weights accumulate across
/// volumes (each device keeps every split-part it serves preloaded, as the
/// paper's testbed does); activations are buffer-reused across volumes.
pub fn per_device_footprints(model: &Model, volumes: &[Vec<PartPlan>]) -> Vec<MemoryFootprint> {
    let num_devices = volumes.first().map(|v| v.len()).unwrap_or(0);
    let mut out = vec![MemoryFootprint::default(); num_devices];
    for volume in volumes {
        for (device, part) in volume.iter().enumerate() {
            let fp = part_footprint(model, part);
            out[device].accumulate(&fp);
        }
    }
    out
}

/// Checks a set of per-device footprints against a uniform per-device budget.
pub fn within_budget(footprints: &[MemoryFootprint], budget_bytes: f64) -> bool {
    footprints.iter().all(|f| f.total_bytes() <= budget_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerOp as L;
    use crate::volume::{LayerVolume, VolumeSplit};
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "mem-test",
            Shape::new(3, 64, 64),
            &[
                L::conv(16, 3, 1, 1),
                L::conv(16, 3, 1, 1),
                L::pool(2, 2),
                L::fc(10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn whole_model_footprint_matches_parameters() {
        let m = model();
        let fp = whole_model_footprint(&m);
        assert_eq!(
            fp.weights_bytes,
            m.parameter_count() as f64 * BYTES_PER_ELEM
        );
        assert!(fp.peak_activation_bytes > 0.0);
        assert!(fp.total_bytes() > fp.weights_bytes);
    }

    #[test]
    fn empty_part_needs_no_memory() {
        let m = model();
        let part = PartPlan::plan(&m, LayerVolume::new(0, 3), 5, 5).unwrap();
        assert_eq!(part_footprint(&m, &part), MemoryFootprint::default());
    }

    #[test]
    fn part_activation_scales_with_rows_but_weights_do_not() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        let small = part_footprint(&m, &PartPlan::plan(&m, v, 0, 8).unwrap());
        let large = part_footprint(&m, &PartPlan::plan(&m, v, 0, 32).unwrap());
        assert_eq!(small.weights_bytes, large.weights_bytes);
        assert!(large.peak_activation_bytes > small.peak_activation_bytes);
    }

    #[test]
    fn per_device_footprints_accumulate_weights_and_max_activations() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        let split = VolumeSplit::equal(2, 32);
        let parts = PartPlan::plan_all(&m, v, &split).unwrap();
        let footprints = per_device_footprints(&m, &[parts.clone(), parts]);
        assert_eq!(footprints.len(), 2);
        // Weights double because the same volume is counted twice…
        let single = part_footprint(&m, &PartPlan::plan(&m, v, 0, 16).unwrap());
        assert!((footprints[0].weights_bytes - 2.0 * single.weights_bytes).abs() < 1e-6);
        // …while peak activations do not.
        assert!(footprints[0].peak_activation_bytes <= single.peak_activation_bytes + 1e-6);
    }

    #[test]
    fn budget_check() {
        let m = model();
        let fp = vec![whole_model_footprint(&m)];
        assert!(within_budget(&fp, 1e12));
        assert!(!within_budget(&fp, 1.0));
    }

    #[test]
    fn paper_memory_claim_holds_for_the_zoo() {
        // §VI-4: state-of-the-art CNN models consume less than ~1.5 GB while
        // the edge devices carry 4-32 GB.  Check the whole zoo at FP16.
        for m in crate::zoo::all_models() {
            let fp = whole_model_footprint(&m);
            assert!(
                fp.total_bytes() < 1.5e9,
                "{} needs {:.2} GB",
                m.name(),
                fp.total_bytes() / 1e9
            );
        }
    }

    #[test]
    fn layer_weight_bytes_accessor() {
        let m = model();
        assert_eq!(layer_weight_bytes(&m, 2), 0.0, "pooling has no weights");
        assert!(layer_weight_bytes(&m, 0) > 0.0);
    }
}
