//! Whole CNN models as sequential layer chains.

use crate::error::ModelError;
use crate::layer::{Layer, LayerOp};
use crate::Result;
use serde::{Deserialize, Serialize};
use tensor::Shape;

/// A CNN model: a named, sequentially connected chain of layers.
///
/// DistrEdge (like the systems it compares against) treats the model as a
/// chain: the output of layer `i` is the input of layer `i + 1`.  Branching
/// architectures in the zoo are represented by their sequential backbone
/// trunks (see the `zoo` module documentation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    input: Shape,
    layers: Vec<Layer>,
}

impl Model {
    /// Builds a model from an input shape and a list of layer operations,
    /// propagating shapes through the chain.
    ///
    /// All splittable (conv/pool) layers must precede the FC head; this
    /// mirrors the paper's setup where "the last fully-connected layer(s)"
    /// are excluded from distribution.
    pub fn new(name: impl Into<String>, input: Shape, ops: &[LayerOp]) -> Result<Self> {
        let name = name.into();
        let mut layers = Vec::with_capacity(ops.len());
        let mut current = input;
        let mut seen_fc = false;
        for (index, &op) in ops.iter().enumerate() {
            if op.is_splittable() && seen_fc {
                return Err(ModelError::InvalidGeometry {
                    layer: index,
                    reason: "conv/pool layer after a fully-connected layer".into(),
                });
            }
            seen_fc |= !op.is_splittable();
            let layer = Layer::resolve(index, op, current)?;
            current = layer.output;
            layers.push(layer);
        }
        if layers.iter().filter(|l| l.is_splittable()).count() == 0 {
            return Err(ModelError::EmptyModel);
        }
        Ok(Model {
            name,
            input,
            layers,
        })
    }

    /// Model name (e.g. `"vgg16"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape of the model.
    pub fn input(&self) -> Shape {
        self.input
    }

    /// All layers, including the FC head.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// A single layer by index.
    pub fn layer(&self, index: usize) -> Result<&Layer> {
        self.layers.get(index).ok_or(ModelError::IndexOutOfRange {
            index,
            len: self.layers.len(),
        })
    }

    /// Total number of layers, including the FC head.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers (never true for a constructed model).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of leading layers that participate in distribution (the
    /// conv/pool prefix).  Layer-volumes partition exactly `0..distributable_len()`.
    pub fn distributable_len(&self) -> usize {
        self.layers.iter().take_while(|l| l.is_splittable()).count()
    }

    /// The FC head layers (possibly empty).
    pub fn head_layers(&self) -> &[Layer] {
        &self.layers[self.distributable_len()..]
    }

    /// Total operations of the whole model (no split redundancy).
    pub fn total_ops(&self) -> f64 {
        self.layers.iter().map(Layer::ops).sum()
    }

    /// Operations of the FC head only.
    pub fn head_ops(&self) -> f64 {
        self.head_layers().iter().map(Layer::ops).sum()
    }

    /// Sum of all intermediate output sizes in bytes — the transmission cost
    /// of a fully layer-by-layer distribution; used to normalise LC-PSS
    /// transmission scores.
    pub fn total_output_bytes(&self) -> f64 {
        self.layers[..self.distributable_len()]
            .iter()
            .map(Layer::output_bytes)
            .sum()
    }

    /// Bytes of the model input (what the service requester ships out).
    pub fn input_bytes(&self) -> f64 {
        self.input.volume() as f64 * crate::BYTES_PER_ELEM
    }

    /// Bytes of the final output (what is shipped back to the requester).
    pub fn final_output_bytes(&self) -> f64 {
        self.layers.last().map(|l| l.output_bytes()).unwrap_or(0.0)
    }

    /// Total number of weight parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Layer::weight_count).sum()
    }

    /// Output shape of the distributable prefix (input to the FC head, or the
    /// model output if there is no head).
    pub fn prefix_output(&self) -> Shape {
        self.layers[self.distributable_len() - 1].output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Model {
        Model::new(
            "tiny",
            Shape::new(3, 32, 32),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_propagate() {
        let m = tiny();
        assert_eq!(m.len(), 5);
        assert_eq!(m.layer(0).unwrap().output, Shape::new(8, 32, 32));
        assert_eq!(m.layer(1).unwrap().output, Shape::new(8, 16, 16));
        assert_eq!(m.layer(2).unwrap().output, Shape::new(16, 16, 16));
        assert_eq!(m.layer(3).unwrap().output, Shape::new(16, 8, 8));
        assert_eq!(m.layer(4).unwrap().output, Shape::new(10, 1, 1));
    }

    #[test]
    fn distributable_prefix_excludes_head() {
        let m = tiny();
        assert_eq!(m.distributable_len(), 4);
        assert_eq!(m.head_layers().len(), 1);
        assert_eq!(m.prefix_output(), Shape::new(16, 8, 8));
    }

    #[test]
    fn conv_after_fc_rejected() {
        let err = Model::new(
            "bad",
            Shape::new(3, 8, 8),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::fc(10),
                LayerOp::conv(4, 1, 1, 0),
            ],
        );
        assert!(err.is_err());
    }

    #[test]
    fn fc_only_model_rejected() {
        assert!(matches!(
            Model::new("head", Shape::new(128, 1, 1), &[LayerOp::fc(10)]),
            Err(ModelError::EmptyModel)
        ));
    }

    #[test]
    fn totals_are_sums() {
        let m = tiny();
        let ops_sum: f64 = m.layers().iter().map(Layer::ops).sum();
        assert_eq!(m.total_ops(), ops_sum);
        assert!(m.head_ops() > 0.0);
        assert!(m.total_output_bytes() > 0.0);
        assert_eq!(m.input_bytes(), 3.0 * 32.0 * 32.0 * 2.0);
        assert_eq!(m.final_output_bytes(), 10.0 * 2.0);
    }

    #[test]
    fn layer_out_of_range() {
        let m = tiny();
        assert!(m.layer(99).is_err());
    }

    #[test]
    fn parameter_count_positive() {
        assert!(tiny().parameter_count() > 0);
    }
}
