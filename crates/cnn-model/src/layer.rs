//! Individual CNN layer configurations.

use crate::error::ModelError;
use crate::{Result, BYTES_PER_ELEM};
use serde::{Deserialize, Serialize};
use tensor::ops::Activation;
use tensor::shape::conv_out_dim;
use tensor::Shape;

/// The operation a layer performs, together with its hyper-parameters.
///
/// Only the layer types DistrEdge distributes are modelled: convolution,
/// max-pooling, and (for the classification heads that stay on a single
/// device) fully-connected layers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerOp {
    /// 2-D convolution.
    Conv {
        /// Number of output channels.
        c_out: usize,
        /// Square filter size.
        f: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each border.
        padding: usize,
        /// Activation applied in-place after the convolution.
        act: Activation,
    },
    /// 2-D max-pooling.
    MaxPool {
        /// Square window size.
        f: usize,
        /// Stride.
        stride: usize,
    },
    /// Fully-connected layer (classification head; never split).
    Fc {
        /// Number of output features.
        out_features: usize,
    },
}

impl LayerOp {
    /// Convenience constructor for a ReLU convolution.
    pub const fn conv(c_out: usize, f: usize, stride: usize, padding: usize) -> Self {
        LayerOp::Conv {
            c_out,
            f,
            stride,
            padding,
            act: Activation::Relu,
        }
    }

    /// Convenience constructor for a leaky-ReLU convolution (YOLO family).
    pub const fn conv_leaky(c_out: usize, f: usize, stride: usize, padding: usize) -> Self {
        LayerOp::Conv {
            c_out,
            f,
            stride,
            padding,
            act: Activation::LeakyRelu,
        }
    }

    /// Convenience constructor for a max-pooling layer.
    pub const fn pool(f: usize, stride: usize) -> Self {
        LayerOp::MaxPool { f, stride }
    }

    /// Convenience constructor for a fully-connected layer.
    pub const fn fc(out_features: usize) -> Self {
        LayerOp::Fc { out_features }
    }

    /// Whether this layer can be vertically split (conv / pool), as opposed
    /// to the FC head which always runs whole on one device.
    pub const fn is_splittable(&self) -> bool {
        !matches!(self, LayerOp::Fc { .. })
    }
}

/// A layer instantiated within a model: operation plus resolved shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Index of the layer within the model.
    pub index: usize,
    /// The operation performed.
    pub op: LayerOp,
    /// Input shape (channels, height, width).
    pub input: Shape,
    /// Output shape (channels, height, width).
    pub output: Shape,
}

impl Layer {
    /// Resolves a layer's output shape from its op and input shape.
    pub fn resolve(index: usize, op: LayerOp, input: Shape) -> Result<Self> {
        let output = match op {
            LayerOp::Conv {
                c_out,
                f,
                stride,
                padding,
                ..
            } => {
                let (h, w) = input.conv_output(f, stride, padding).ok_or_else(|| {
                    ModelError::InvalidGeometry {
                        layer: index,
                        reason: format!(
                            "conv f={f} s={stride} p={padding} does not fit input {}x{}",
                            input.h, input.w
                        ),
                    }
                })?;
                Shape::new(c_out, h, w)
            }
            LayerOp::MaxPool { f, stride } => {
                let h = conv_out_dim(input.h, f, stride, 0);
                let w = conv_out_dim(input.w, f, stride, 0);
                let (h, w) = h.zip(w).ok_or_else(|| ModelError::InvalidGeometry {
                    layer: index,
                    reason: format!(
                        "pool f={f} s={stride} does not fit input {}x{}",
                        input.h, input.w
                    ),
                })?;
                Shape::new(input.c, h, w)
            }
            LayerOp::Fc { out_features } => Shape::new(out_features, 1, 1),
        };
        Ok(Layer {
            index,
            op,
            input,
            output,
        })
    }

    /// Filter size along the height dimension (1 for FC layers).
    pub fn filter(&self) -> usize {
        match self.op {
            LayerOp::Conv { f, .. } | LayerOp::MaxPool { f, .. } => f,
            LayerOp::Fc { .. } => 1,
        }
    }

    /// Stride along the height dimension (1 for FC layers).
    pub fn stride(&self) -> usize {
        match self.op {
            LayerOp::Conv { stride, .. } | LayerOp::MaxPool { stride, .. } => stride,
            LayerOp::Fc { .. } => 1,
        }
    }

    /// Zero padding (0 for pooling and FC layers).
    pub fn padding(&self) -> usize {
        match self.op {
            LayerOp::Conv { padding, .. } => padding,
            _ => 0,
        }
    }

    /// Whether this layer participates in vertical splitting.
    pub fn is_splittable(&self) -> bool {
        self.op.is_splittable()
    }

    /// Number of arithmetic operations to produce `rows` output rows.
    ///
    /// Convolutions count multiply-accumulates ×2 (the MAC convention used
    /// when quoting GFLOPs for CNNs); pooling counts one comparison per
    /// window element; FC layers count 2 × in × out.
    pub fn ops_for_rows(&self, rows: usize) -> f64 {
        let rows = rows.min(self.output.h) as f64;
        match self.op {
            LayerOp::Conv { c_out, f, .. } => {
                2.0 * (f * f) as f64
                    * self.input.c as f64
                    * c_out as f64
                    * rows
                    * self.output.w as f64
            }
            LayerOp::MaxPool { f, .. } => {
                (f * f) as f64 * self.input.c as f64 * rows * self.output.w as f64
            }
            LayerOp::Fc { out_features } => {
                // FC layers ignore `rows`; they are never split.
                2.0 * self.input.volume() as f64 * out_features as f64
            }
        }
    }

    /// Total operations of the layer.
    pub fn ops(&self) -> f64 {
        self.ops_for_rows(self.output.h)
    }

    /// Bytes of output data for `rows` output rows (FP16).
    pub fn output_bytes_for_rows(&self, rows: usize) -> f64 {
        let rows = rows.min(self.output.h) as f64;
        self.output.c as f64 * rows * self.output.w as f64 * BYTES_PER_ELEM
    }

    /// Bytes of the full output feature map (FP16).
    pub fn output_bytes(&self) -> f64 {
        self.output_bytes_for_rows(self.output.h)
    }

    /// Bytes of input data for `rows` input rows (FP16).
    pub fn input_bytes_for_rows(&self, rows: usize) -> f64 {
        let rows = rows.min(self.input.h) as f64;
        self.input.c as f64 * rows * self.input.w as f64 * BYTES_PER_ELEM
    }

    /// Number of weight parameters (used for reporting model sizes).
    pub fn weight_count(&self) -> usize {
        match self.op {
            LayerOp::Conv { c_out, f, .. } => c_out * self.input.c * f * f + c_out,
            LayerOp::MaxPool { .. } => 0,
            LayerOp::Fc { out_features } => out_features * self.input.volume() + out_features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> Layer {
        Layer::resolve(0, LayerOp::conv(64, 3, 1, 1), Shape::new(3, 224, 224)).unwrap()
    }

    #[test]
    fn conv_shape_resolution() {
        let l = conv_layer();
        assert_eq!(l.output, Shape::new(64, 224, 224));
        assert_eq!(l.filter(), 3);
        assert_eq!(l.stride(), 1);
        assert_eq!(l.padding(), 1);
        assert!(l.is_splittable());
    }

    #[test]
    fn pool_shape_resolution() {
        let l = Layer::resolve(1, LayerOp::pool(2, 2), Shape::new(64, 224, 224)).unwrap();
        assert_eq!(l.output, Shape::new(64, 112, 112));
        assert_eq!(l.padding(), 0);
    }

    #[test]
    fn fc_shape_resolution() {
        let l = Layer::resolve(2, LayerOp::fc(1000), Shape::new(512, 7, 7)).unwrap();
        assert_eq!(l.output, Shape::new(1000, 1, 1));
        assert!(!l.is_splittable());
        assert_eq!(l.filter(), 1);
        assert_eq!(l.stride(), 1);
    }

    #[test]
    fn invalid_geometry_rejected() {
        assert!(Layer::resolve(0, LayerOp::conv(8, 7, 1, 0), Shape::new(3, 4, 4)).is_err());
        assert!(Layer::resolve(0, LayerOp::pool(3, 2), Shape::new(3, 2, 2)).is_err());
    }

    #[test]
    fn conv_ops_match_macs_formula() {
        let l = conv_layer();
        // 2 * 3*3 * 3 * 64 * 224 * 224
        let expected = 2.0 * 9.0 * 3.0 * 64.0 * 224.0 * 224.0;
        assert!((l.ops() - expected).abs() < 1.0);
    }

    #[test]
    fn ops_scale_linearly_with_rows() {
        let l = conv_layer();
        let half = l.ops_for_rows(112);
        assert!((half * 2.0 - l.ops()).abs() / l.ops() < 1e-9);
        assert_eq!(l.ops_for_rows(0), 0.0);
    }

    #[test]
    fn ops_for_rows_clamped_to_height() {
        let l = conv_layer();
        assert_eq!(l.ops_for_rows(10_000), l.ops());
    }

    #[test]
    fn output_bytes_fp16() {
        let l = conv_layer();
        assert!((l.output_bytes() - 64.0 * 224.0 * 224.0 * 2.0).abs() < 1.0);
        assert!((l.output_bytes_for_rows(1) - 64.0 * 224.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn pool_has_no_weights() {
        let l = Layer::resolve(1, LayerOp::pool(2, 2), Shape::new(64, 224, 224)).unwrap();
        assert_eq!(l.weight_count(), 0);
        assert!(l.ops() > 0.0);
    }

    #[test]
    fn vgg_first_fc_weight_count() {
        let l = Layer::resolve(0, LayerOp::fc(4096), Shape::new(512, 7, 7)).unwrap();
        assert_eq!(l.weight_count(), 4096 * 512 * 7 * 7 + 4096);
    }
}
