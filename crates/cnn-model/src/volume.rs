//! Layer-volumes, partition schemes, vertical splits and the
//! Vertical-Splitting Law (paper §III-A/B).
//!
//! * A **layer-volume** is a run of consecutive layers `[start, end)`.
//! * A **partition scheme** divides the distributable prefix of a model into
//!   layer-volumes (the *horizontal partition*).
//! * A **vertical split** divides a layer-volume's last-layer output height
//!   into per-device bands (a *split decision*, the action of the OSDS MDP).
//! * The **Vertical-Splitting Law** (Eq. 1–2) propagates the output height of
//!   the last sub-layer backwards to the input height of the first sub-layer.
//!   [`PartPlan`] implements the exact row-range form of the law (including
//!   padding and boundary clipping) so split-parts can be executed and
//!   verified bit-for-bit; [`vsl_input_height`] implements the paper's
//!   closed-form Eq. 1–2 for reference and for cost estimation.

use crate::error::ModelError;
use crate::layer::Layer;
use crate::model::Model;
use crate::Result;
use serde::{Deserialize, Serialize};
use tensor::shape::input_rows_for_output;

/// A run of consecutive layers `[start, end)` treated as one fused unit
/// (the paper's layer-volume / fused-layers concept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerVolume {
    /// Index of the first layer (inclusive).
    pub start: usize,
    /// Index one past the last layer (exclusive).
    pub end: usize,
}

impl LayerVolume {
    /// Creates a new layer-volume covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// Number of layers in the volume.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the volume is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The layers of this volume within `model`.
    pub fn layers<'m>(&self, model: &'m Model) -> &'m [Layer] {
        &model.layers()[self.start..self.end]
    }

    /// Output height of the volume's last layer.
    pub fn last_output_height(&self, model: &Model) -> usize {
        model.layers()[self.end - 1].output.h
    }
}

/// A horizontal partition of a model's distributable prefix into
/// layer-volumes, stored as sorted boundary indices.
///
/// Boundaries always include `0` and `distributable_len`; a scheme with
/// boundaries `[0, 5, 18]` has two layer-volumes `[0,5)` and `[5,18)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionScheme {
    boundaries: Vec<usize>,
}

impl PartitionScheme {
    /// Validates and creates a partition scheme for `model`.
    pub fn new(model: &Model, mut boundaries: Vec<usize>) -> Result<Self> {
        let n = model.distributable_len();
        boundaries.sort_unstable();
        boundaries.dedup();
        if boundaries.first() != Some(&0) || boundaries.last() != Some(&n) {
            return Err(ModelError::InvalidPartition(format!(
                "boundaries {boundaries:?} must start at 0 and end at {n}"
            )));
        }
        Ok(Self { boundaries })
    }

    /// The scheme with a single layer-volume spanning the whole prefix
    /// (DeepThings-style "one fused layer-volume").
    pub fn single_volume(model: &Model) -> Self {
        Self {
            boundaries: vec![0, model.distributable_len()],
        }
    }

    /// The scheme that makes every layer its own layer-volume
    /// (CoEdge/MoDNN-style layer-by-layer distribution).
    pub fn layer_by_layer(model: &Model) -> Self {
        Self {
            boundaries: (0..=model.distributable_len()).collect(),
        }
    }

    /// Sorted boundary indices (starts with 0, ends with the prefix length).
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Number of layer-volumes.
    pub fn num_volumes(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The layer-volumes of this scheme, in order.
    pub fn volumes(&self) -> Vec<LayerVolume> {
        self.boundaries
            .windows(2)
            .map(|w| LayerVolume::new(w[0], w[1]))
            .collect()
    }

    /// Returns a new scheme with an extra boundary inserted (no-op if already
    /// present).
    pub fn with_boundary(&self, b: usize) -> Self {
        let mut boundaries = self.boundaries.clone();
        if !boundaries.contains(&b) {
            boundaries.push(b);
            boundaries.sort_unstable();
        }
        Self { boundaries }
    }
}

/// A vertical split of one layer-volume across `n` devices: `n - 1` sorted
/// cut points on the output height of the volume's last layer.
///
/// Device `i` receives output rows `[cuts[i-1], cuts[i])` (with `cuts[-1] = 0`
/// and `cuts[n-1] = H`).  Cut points may coincide, which gives a device an
/// empty share — the paper explicitly allows devices to receive no work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeSplit {
    cuts: Vec<usize>,
}

impl VolumeSplit {
    /// Creates a split from cut points; they are sorted and clamped to `h_last`.
    pub fn new(mut cuts: Vec<usize>, h_last: usize) -> Self {
        for c in &mut cuts {
            *c = (*c).min(h_last);
        }
        cuts.sort_unstable();
        Self { cuts }
    }

    /// An equal split of `h_last` rows across `n` devices (DeepThings /
    /// DeeperThings style).
    pub fn equal(n: usize, h_last: usize) -> Self {
        let cuts = (1..n).map(|i| i * h_last / n).collect();
        Self { cuts }
    }

    /// A split proportional to non-negative weights (CoEdge / MoDNN / AOFL
    /// style linear-ratio splits).  Zero total weight falls back to equal.
    pub fn proportional(weights: &[f64], h_last: usize) -> Self {
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 || weights.is_empty() {
            return Self::equal(weights.len().max(1), h_last);
        }
        let mut cuts = Vec::with_capacity(weights.len().saturating_sub(1));
        let mut acc = 0.0;
        for w in &weights[..weights.len() - 1] {
            acc += w.max(0.0);
            cuts.push(((acc / total) * h_last as f64).round() as usize);
        }
        Self::new(cuts, h_last)
    }

    /// The sorted cut points.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Number of devices this split addresses.
    pub fn num_parts(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Per-device output row ranges `[lo, hi)` of the volume's last layer.
    pub fn ranges(&self, h_last: usize) -> Vec<(usize, usize)> {
        let mut ranges = Vec::with_capacity(self.cuts.len() + 1);
        let mut lo = 0usize;
        for &c in &self.cuts {
            let c = c.min(h_last);
            ranges.push((lo, c.max(lo)));
            lo = c.max(lo);
        }
        ranges.push((lo, h_last));
        ranges
    }

    /// Number of rows each device receives.
    pub fn row_counts(&self, h_last: usize) -> Vec<usize> {
        self.ranges(h_last)
            .into_iter()
            .map(|(lo, hi)| hi - lo)
            .collect()
    }
}

/// The paper's Vertical-Splitting Law in closed form (Eq. 1 and Eq. 2):
/// given the output height of a split-part's *last* sub-layer, returns the
/// implied heights of every sub-layer's output, last-to-first, followed by
/// the input height of the first sub-layer.
///
/// This is the un-clipped form the paper states (no padding/boundary
/// adjustment); [`PartPlan`] gives the exact clipped row ranges.
pub fn vsl_heights(model: &Model, volume: LayerVolume, h_out_last: usize) -> Vec<usize> {
    let layers = volume.layers(model);
    let mut heights = vec![0usize; layers.len() + 1];
    heights[layers.len()] = h_out_last;
    for i in (0..layers.len()).rev() {
        let l = &layers[i];
        let h_next = heights[i + 1];
        // Eq. 1 / Eq. 2: h_in = (h_out - 1) * S + F  (zero stays zero).
        heights[i] = if h_next == 0 {
            0
        } else {
            (h_next - 1) * l.stride() + l.filter()
        };
    }
    heights
}

/// Input height of a split-part's first sub-layer per the Vertical-Splitting
/// Law (the first element of [`vsl_heights`]).
pub fn vsl_input_height(model: &Model, volume: LayerVolume, h_out_last: usize) -> usize {
    vsl_heights(model, volume, h_out_last)[0]
}

/// Row ranges of one layer within a split-part plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerRows {
    /// Model-wide index of the layer.
    pub layer: usize,
    /// Output rows `[lo, hi)` (full-layer coordinates) this part produces.
    pub out_rows: (usize, usize),
    /// Input rows `[lo, hi)` (full-layer coordinates) this part consumes.
    pub in_rows: (usize, usize),
}

impl LayerRows {
    /// Number of output rows.
    pub fn out_count(&self) -> usize {
        self.out_rows.1 - self.out_rows.0
    }
}

/// The exact work plan of one split-part of one layer-volume: per-layer
/// output/input row ranges (with halos and boundary clipping) and the rows of
/// the volume input the part needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartPlan {
    /// The volume this plan belongs to.
    pub volume: LayerVolume,
    /// Per-layer row ranges, ordered first layer → last layer of the volume.
    pub layers: Vec<LayerRows>,
    /// Rows of the volume's *input* feature map this part needs `[lo, hi)`.
    pub input_rows: (usize, usize),
    /// Output rows of the volume's last layer this part produces `[lo, hi)`.
    pub output_rows: (usize, usize),
}

impl PartPlan {
    /// Plans the split-part of `volume` that produces output rows
    /// `[out_lo, out_hi)` of the volume's last layer.
    ///
    /// An empty output range yields an empty plan (a device with no work).
    pub fn plan(model: &Model, volume: LayerVolume, out_lo: usize, out_hi: usize) -> Result<Self> {
        if volume.is_empty() || volume.end > model.distributable_len() {
            return Err(ModelError::InvalidPartition(format!(
                "volume {}..{} out of distributable range 0..{}",
                volume.start,
                volume.end,
                model.distributable_len()
            )));
        }
        let h_last = volume.last_output_height(model);
        if out_hi > h_last || out_lo > out_hi {
            return Err(ModelError::InvalidSplit(format!(
                "output rows {out_lo}..{out_hi} out of range 0..{h_last}"
            )));
        }
        let layers = volume.layers(model);
        let mut rows = vec![
            LayerRows {
                layer: 0,
                out_rows: (0, 0),
                in_rows: (0, 0)
            };
            layers.len()
        ];
        if out_lo == out_hi {
            // No work: every range stays empty.
            let mut plan_layers = rows;
            for (i, l) in layers.iter().enumerate() {
                plan_layers[i].layer = l.index;
            }
            return Ok(PartPlan {
                volume,
                layers: plan_layers,
                input_rows: (0, 0),
                output_rows: (out_lo, out_hi),
            });
        }
        // Walk backwards from the last layer, turning required output rows of
        // layer i into required input rows, which are the required output
        // rows of layer i-1.
        let mut need = (out_lo, out_hi);
        for i in (0..layers.len()).rev() {
            let l = &layers[i];
            let in_need = input_rows_for_output(
                need.0,
                need.1,
                l.filter(),
                l.stride(),
                l.padding(),
                l.input.h,
            );
            rows[i] = LayerRows {
                layer: l.index,
                out_rows: need,
                in_rows: in_need,
            };
            need = in_need;
        }
        Ok(PartPlan {
            volume,
            layers: rows,
            input_rows: need,
            output_rows: (out_lo, out_hi),
        })
    }

    /// Plans all parts of a volume for a given vertical split.
    pub fn plan_all(model: &Model, volume: LayerVolume, split: &VolumeSplit) -> Result<Vec<Self>> {
        let h_last = volume.last_output_height(model);
        split
            .ranges(h_last)
            .into_iter()
            .map(|(lo, hi)| Self::plan(model, volume, lo, hi))
            .collect()
    }

    /// Whether the part has no work.
    pub fn is_empty(&self) -> bool {
        self.output_rows.0 == self.output_rows.1
    }

    /// Total operations of this part (halo redundancy included).
    pub fn ops(&self, model: &Model) -> f64 {
        self.layers
            .iter()
            .map(|lr| model.layers()[lr.layer].ops_for_rows(lr.out_count()))
            .sum()
    }

    /// Bytes of volume-input data this part consumes.
    pub fn input_bytes(&self, model: &Model) -> f64 {
        let rows = self.input_rows.1 - self.input_rows.0;
        let first = &model.layers()[self.volume.start];
        first.input_bytes_for_rows(rows)
    }

    /// Bytes of last-layer output this part produces.
    pub fn output_bytes(&self, model: &Model) -> f64 {
        let rows = self.output_rows.1 - self.output_rows.0;
        let last = &model.layers()[self.volume.end - 1];
        last.output_bytes_for_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerOp;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "t",
            Shape::new(3, 64, 64),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_scheme_validation() {
        let m = model();
        assert!(PartitionScheme::new(&m, vec![0, 3, 5]).is_ok());
        assert!(PartitionScheme::new(&m, vec![0, 3]).is_err());
        assert!(PartitionScheme::new(&m, vec![1, 5]).is_err());
        // Duplicates and unsorted input are normalised.
        let p = PartitionScheme::new(&m, vec![5, 0, 3, 3]).unwrap();
        assert_eq!(p.boundaries(), &[0, 3, 5]);
        assert_eq!(p.num_volumes(), 2);
    }

    #[test]
    fn special_schemes() {
        let m = model();
        assert_eq!(PartitionScheme::single_volume(&m).num_volumes(), 1);
        assert_eq!(PartitionScheme::layer_by_layer(&m).num_volumes(), 5);
    }

    #[test]
    fn with_boundary_is_idempotent() {
        let m = model();
        let p = PartitionScheme::single_volume(&m);
        let p2 = p.with_boundary(2);
        assert_eq!(p2.num_volumes(), 2);
        assert_eq!(p2.with_boundary(2), p2);
    }

    #[test]
    fn volume_accessors() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.layers(&m).len(), 3);
        assert_eq!(v.last_output_height(&m), 32);
    }

    #[test]
    fn equal_split_ranges() {
        let s = VolumeSplit::equal(4, 32);
        assert_eq!(s.cuts(), &[8, 16, 24]);
        assert_eq!(s.ranges(32), vec![(0, 8), (8, 16), (16, 24), (24, 32)]);
        assert_eq!(s.row_counts(32), vec![8, 8, 8, 8]);
    }

    #[test]
    fn proportional_split() {
        let s = VolumeSplit::proportional(&[1.0, 3.0], 32);
        assert_eq!(s.ranges(32), vec![(0, 8), (8, 32)]);
        // Zero weights fall back to equal.
        let z = VolumeSplit::proportional(&[0.0, 0.0], 32);
        assert_eq!(z.row_counts(32), vec![16, 16]);
    }

    #[test]
    fn split_allows_empty_shares() {
        let s = VolumeSplit::new(vec![0, 20], 20);
        assert_eq!(s.ranges(20), vec![(0, 0), (0, 20), (20, 20)]);
    }

    #[test]
    fn split_clamps_out_of_range_cuts() {
        let s = VolumeSplit::new(vec![50, 10], 20);
        assert_eq!(s.cuts(), &[10, 20]);
    }

    #[test]
    fn vsl_closed_form_matches_paper() {
        let m = model();
        // Volume of the first three layers: conv3s1, conv3s1, pool2s2.
        let v = LayerVolume::new(0, 3);
        // h_out of pool = 4  ->  pool input = (4-1)*2+2 = 8
        //                     -> conv input = (8-1)*1+3 = 10
        //                     -> conv input = (10-1)*1+3 = 12
        assert_eq!(vsl_heights(&m, v, 4), vec![12, 10, 8, 4]);
        assert_eq!(vsl_input_height(&m, v, 4), 12);
        assert_eq!(vsl_input_height(&m, v, 0), 0);
    }

    #[test]
    fn part_plan_exact_rows() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        // Bottom half of the pooled output: rows 16..32 of layer 2.
        let p = PartPlan::plan(&m, v, 16, 32).unwrap();
        assert_eq!(p.output_rows, (16, 32));
        // Pool rows 16..32 need conv-1 rows 32..64; conv rows 32..64 need
        // conv-0 rows 31..64 (padding at the bottom edge); conv-0 rows 31..64
        // need input rows 30..64.
        assert_eq!(p.layers[2].in_rows, (32, 64));
        assert_eq!(p.layers[1].in_rows, (31, 64));
        assert_eq!(p.layers[0].in_rows, (30, 64));
        assert_eq!(p.input_rows, (30, 64));
    }

    #[test]
    fn part_plan_empty_share() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        let p = PartPlan::plan(&m, v, 10, 10).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.ops(&m), 0.0);
        assert_eq!(p.input_bytes(&m), 0.0);
        assert_eq!(p.output_bytes(&m), 0.0);
    }

    #[test]
    fn part_plan_rejects_bad_ranges() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        assert!(PartPlan::plan(&m, v, 0, 33).is_err());
        assert!(PartPlan::plan(&m, v, 5, 3).is_err());
        // Volume that reaches into the FC head is rejected.
        assert!(PartPlan::plan(&m, LayerVolume::new(3, 6), 0, 1).is_err());
    }

    #[test]
    fn plan_all_covers_output_exactly() {
        let m = model();
        let v = LayerVolume::new(0, 5);
        let split = VolumeSplit::equal(3, v.last_output_height(&m));
        let plans = PartPlan::plan_all(&m, v, &split).unwrap();
        assert_eq!(plans.len(), 3);
        let total_rows: usize = plans
            .iter()
            .map(|p| p.output_rows.1 - p.output_rows.0)
            .sum();
        assert_eq!(total_rows, v.last_output_height(&m));
    }

    #[test]
    fn halo_redundancy_increases_ops() {
        let m = model();
        let v = LayerVolume::new(0, 3);
        let whole = PartPlan::plan(&m, v, 0, 32).unwrap().ops(&m);
        let split = VolumeSplit::equal(4, 32);
        let split_ops: f64 = PartPlan::plan_all(&m, v, &split)
            .unwrap()
            .iter()
            .map(|p| p.ops(&m))
            .sum();
        assert!(
            split_ops > whole,
            "split ops {split_ops} should exceed whole {whole}"
        );
    }
}
