//! CNN model descriptions for the DistrEdge reproduction.
//!
//! The DistrEdge distribution algorithms never touch weights: they reason
//! about *layer configurations* — input/output shapes, filter sizes, strides,
//! operation counts and output byte counts — and about how a group of
//! sequentially connected layers (a *layer-volume*) can be split along the
//! height dimension of its last layer (the *Vertical-Splitting Law*, §III-B
//! of the paper).  This crate provides:
//!
//! * [`layer`] — individual layer configurations with shape inference and
//!   per-row operation/byte accounting,
//! * [`model`] — whole models as sequential layer chains,
//! * [`volume`] — layer-volumes, partition schemes, vertical splits and the
//!   Vertical-Splitting Law (both the paper's Eq. 1–2 form and the exact
//!   row-range form used for functional verification),
//! * [`cost`] — operation and transmission totals of a distribution strategy
//!   (the quantities scored by LC-PSS),
//! * [`exec`] — execution of full models and of split-parts on the `tensor`
//!   engine, used to verify that distribution is functionally lossless,
//! * [`zoo`] — the eight evaluation models from §V-E as layer-configuration
//!   tables.

pub mod cost;
pub mod error;
pub mod exec;
pub mod layer;
pub mod memory;
pub mod model;
pub mod volume;
pub mod zoo;

pub use error::ModelError;
pub use layer::{Layer, LayerOp};
pub use model::Model;
pub use volume::{LayerVolume, PartPlan, PartitionScheme, VolumeSplit};

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Bytes per element for the FP16 precision used by the paper's TensorRT
/// deployment.  All transmission-size computations use this constant.
pub const BYTES_PER_ELEM: f64 = 2.0;
