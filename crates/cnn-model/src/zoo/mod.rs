//! The eight evaluation models of the paper (§V-E) as layer-configuration
//! tables.
//!
//! DistrEdge (and every baseline it compares against) treats a CNN as a
//! sequential chain of convolution / pooling layers followed by an optional
//! fully-connected head.  Branching architectures are therefore represented
//! by their sequential backbone trunks with equivalent per-stage channel
//! counts, spatial resolutions and operation totals:
//!
//! * **ResNet-50 / SSD-ResNet-50** — bottleneck blocks are unrolled into
//!   their 1×1 / 3×3 / 1×1 convolution sequences; the identity shortcuts
//!   (which add negligible FLOPs and no extra transmission in a fused
//!   volume) are dropped.
//! * **Inception-V3** — each inception block is replaced by a 3×3
//!   convolution with the block's concatenated output channel count, which
//!   preserves the output shape and approximates the block FLOPs.
//! * **SSD / YOLOv2 / OpenPose** — detection and pose heads are kept as
//!   convolutions (they are convolutional in the originals).
//! * **VoxelNet** — the sparse voxel feature encoder and 3-D middle layers
//!   are projected onto an equivalent-FLOP 2-D bird's-eye-view convolution
//!   stack feeding the original region-proposal network.
//!
//! These substitutions preserve exactly the quantities the distribution
//! algorithms consume — per-layer heights, widths, channels, filter sizes,
//! strides, operation counts and output byte counts — which is what matters
//! for reproducing the *relative* performance of the distribution methods.

mod classification;
mod detection;
mod pose;

pub use classification::{inception_v3, resnet50, tiny_vgg, vgg11, vgg16};
pub use detection::{ssd_resnet50, ssd_vgg16, voxelnet, yolov2};
pub use pose::openpose;

use crate::model::Model;

/// All zoo model constructors keyed by their canonical names, in the order
/// the paper's Fig. 10/11 present them.
pub fn all_models() -> Vec<Model> {
    vec![
        vgg16(),
        resnet50(),
        inception_v3(),
        yolov2(),
        ssd_resnet50(),
        ssd_vgg16(),
        openpose(),
        voxelnet(),
    ]
}

/// The canonical id of every model [`by_name`] resolves — the registry a
/// serving fleet (or a CLI) can enumerate to list its tenants.  Ids are
/// already in canonical form: lowercase, alphanumeric only.
pub fn names() -> &'static [&'static str] {
    &[
        "vgg16",
        "resnet50",
        "inceptionv3",
        "yolov2",
        "ssdresnet50",
        "ssdvgg16",
        "openpose",
        "voxelnet",
        "tinyvgg",
        "vgg11",
    ]
}

/// Looks a model up by name (case-insensitive, hyphen/underscore-insensitive).
pub fn by_name(name: &str) -> Option<Model> {
    let canon: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    match canon.as_str() {
        "vgg16" => Some(vgg16()),
        "resnet50" => Some(resnet50()),
        "inceptionv3" => Some(inception_v3()),
        "yolov2" => Some(yolov2()),
        "ssdresnet50" => Some(ssd_resnet50()),
        "ssdvgg16" => Some(ssd_vgg16()),
        "openpose" => Some(openpose()),
        "voxelnet" => Some(voxelnet()),
        "tinyvgg" => Some(tiny_vgg()),
        "vgg11" => Some(vgg11()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build() {
        let models = all_models();
        assert_eq!(models.len(), 8);
        for m in &models {
            assert!(m.distributable_len() >= 10, "{} too shallow", m.name());
            assert!(m.total_ops() > 1e9, "{} ops implausibly small", m.name());
        }
    }

    #[test]
    fn lookup_by_name_variants() {
        assert!(by_name("VGG-16").is_some());
        assert!(by_name("vgg16").is_some());
        assert!(by_name("VGG-11").is_some());
        assert!(by_name("SSD_ResNet50").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_registered_name_resolves_and_is_canonical() {
        for id in names() {
            let model = by_name(id).unwrap_or_else(|| panic!("{id} not resolvable"));
            assert!(model.distributable_len() > 0);
            let canon: String = id
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase();
            assert_eq!(*id, canon, "registry id {id} is not canonical");
        }
        // The registry covers every model `all_models` builds, plus the
        // small/paper-scale extras.
        assert_eq!(names().len(), all_models().len() + 2);
    }

    #[test]
    fn names_are_distinct() {
        let models = all_models();
        let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn vgg16_flops_in_published_range() {
        // VGG-16 at 224x224 is ~30.9 GFLOPs (counting MACs x2) for the conv
        // stack plus ~0.25 GFLOPs for the FC head.
        let ops = vgg16().total_ops();
        assert!(ops > 28e9 && ops < 34e9, "VGG-16 ops = {ops:.3e}");
    }

    #[test]
    fn resnet50_flops_in_published_range() {
        // ResNet-50 at 224x224 is ~7.7 GFLOPs; the sequential trunk
        // approximation should stay within a factor ~1.3 of that.
        let ops = resnet50().total_ops();
        assert!(ops > 6e9 && ops < 11e9, "ResNet-50 ops = {ops:.3e}");
    }

    #[test]
    fn detection_models_are_heavier_than_classification() {
        assert!(yolov2().total_ops() > resnet50().total_ops());
        assert!(ssd_vgg16().total_ops() > vgg16().total_ops() * 0.8);
    }
}
