//! Classification models: VGG-16, ResNet-50, Inception-V3.

use crate::layer::LayerOp;
use crate::model::Model;
use tensor::Shape;

/// VGG-16 at 224×224 (Simonyan & Zisserman): thirteen 3×3 convolutions,
/// five max-pools and the 4096/4096/1000 fully-connected head.
pub fn vgg16() -> Model {
    use LayerOp as L;
    let ops = [
        L::conv(64, 3, 1, 1),
        L::conv(64, 3, 1, 1),
        L::pool(2, 2),
        L::conv(128, 3, 1, 1),
        L::conv(128, 3, 1, 1),
        L::pool(2, 2),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::pool(2, 2),
        L::fc(4096),
        L::fc(4096),
        L::fc(1000),
    ];
    Model::new("vgg16", Shape::new(3, 224, 224), &ops).expect("vgg16 table is valid")
}

/// VGG-11 at 224×224 (configuration A of Simonyan & Zisserman): eight 3×3
/// convolutions, five max-pools and the 4096/4096/1000 fully-connected
/// head.  The smallest *paper-scale* VGG — ~15 GFLOPs of convolution and
/// ~133 M parameters — used by the packed-kernel end-to-end proof
/// (`examples/paper_scale.rs`, `cargo bench --bench kernels`): heavy enough
/// that the direct kernels made it impractical, light enough that the GEMM
/// path serves it in seconds.
pub fn vgg11() -> Model {
    use LayerOp as L;
    let ops = [
        L::conv(64, 3, 1, 1),
        L::pool(2, 2),
        L::conv(128, 3, 1, 1),
        L::pool(2, 2),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::pool(2, 2),
        L::fc(4096),
        L::fc(4096),
        L::fc(1000),
    ];
    Model::new("vgg11", Shape::new(3, 224, 224), &ops).expect("vgg11 table is valid")
}

/// A CIFAR-scale VGG-style model small enough to *execute* in milliseconds
/// on naive CPU kernels — the workhorse of the `edge-runtime` tests and
/// examples, where the full evaluation models would take minutes per image.
/// Not part of [`super::all_models`] (which mirrors the paper's eight).
pub fn tiny_vgg() -> Model {
    use LayerOp as L;
    let ops = [
        L::conv(16, 3, 1, 1),
        L::conv(16, 3, 1, 1),
        L::pool(2, 2),
        L::conv(32, 3, 1, 1),
        L::conv(32, 3, 1, 1),
        L::pool(2, 2),
        L::conv(64, 3, 1, 1),
        L::fc(64),
        L::fc(10),
    ];
    Model::new("tiny-vgg", Shape::new(3, 32, 32), &ops).expect("tiny-vgg table is valid")
}

/// Appends one unrolled ResNet bottleneck block (`1×1 → 3×3 → 1×1`).
fn bottleneck(ops: &mut Vec<LayerOp>, mid: usize, out: usize, stride_3x3: usize) {
    ops.push(LayerOp::conv(mid, 1, 1, 0));
    ops.push(LayerOp::conv(mid, 3, stride_3x3, 1));
    ops.push(LayerOp::conv(out, 1, 1, 0));
}

/// Builds the ResNet-50 convolutional trunk onto `ops` (stem + 4 stages),
/// shared between [`resnet50`] and the SSD-ResNet-50 detector.
pub(crate) fn resnet50_trunk(ops: &mut Vec<LayerOp>) {
    ops.push(LayerOp::conv(64, 7, 2, 3));
    ops.push(LayerOp::pool(2, 2));
    // conv2_x: 3 blocks at 1/4 resolution.
    for _ in 0..3 {
        bottleneck(ops, 64, 256, 1);
    }
    // conv3_x: 4 blocks, first downsamples.
    for i in 0..4 {
        bottleneck(ops, 128, 512, if i == 0 { 2 } else { 1 });
    }
    // conv4_x: 6 blocks, first downsamples.
    for i in 0..6 {
        bottleneck(ops, 256, 1024, if i == 0 { 2 } else { 1 });
    }
    // conv5_x: 3 blocks, first downsamples.
    for i in 0..3 {
        bottleneck(ops, 512, 2048, if i == 0 { 2 } else { 1 });
    }
}

/// ResNet-50 at 224×224 as a sequential bottleneck trunk (identity shortcuts
/// dropped; see the zoo module documentation), global pooling approximated by
/// a 7×7 max-pool, and the 1000-way head.
pub fn resnet50() -> Model {
    let mut ops = Vec::new();
    resnet50_trunk(&mut ops);
    ops.push(LayerOp::pool(7, 7));
    ops.push(LayerOp::fc(1000));
    Model::new("resnet50", Shape::new(3, 224, 224), &ops).expect("resnet50 table is valid")
}

/// Inception-V3 at 299×299 as a sequential stem plus per-block
/// `1×1 → 3×3` equivalents of the inception modules (see the zoo module
/// documentation for the approximation rationale).
pub fn inception_v3() -> Model {
    use LayerOp as L;
    let mut ops = vec![
        L::conv(32, 3, 2, 0),
        L::conv(32, 3, 1, 0),
        L::conv(64, 3, 1, 1),
        L::pool(3, 2),
        L::conv(80, 1, 1, 0),
        L::conv(192, 3, 1, 0),
        L::pool(3, 2),
    ];
    // 3 × inception-A at 35×35 (output 288 channels).
    for _ in 0..3 {
        ops.push(L::conv(96, 1, 1, 0));
        ops.push(L::conv(288, 3, 1, 1));
    }
    // Reduction-A to 17×17.
    ops.push(L::conv(768, 3, 2, 0));
    // 4 × inception-B at 17×17 (output 768 channels).
    for _ in 0..4 {
        ops.push(L::conv(256, 1, 1, 0));
        ops.push(L::conv(768, 3, 1, 1));
    }
    // Reduction-B to 8×8.
    ops.push(L::conv(1280, 3, 2, 0));
    // 2 × inception-C at 8×8 (output 2048 channels).
    for _ in 0..2 {
        ops.push(L::conv(448, 1, 1, 0));
        ops.push(L::conv(2048, 3, 1, 1));
    }
    ops.push(L::pool(8, 8));
    ops.push(L::fc(1000));
    Model::new("inception_v3", Shape::new(3, 299, 299), &ops).expect("inception table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_structure() {
        let m = vgg16();
        assert_eq!(m.len(), 21);
        assert_eq!(m.distributable_len(), 18);
        assert_eq!(m.prefix_output(), Shape::new(512, 7, 7));
        // Published parameter count is ~138 M.
        let params = m.parameter_count() as f64;
        assert!(params > 130e6 && params < 145e6, "params = {params:.3e}");
    }

    #[test]
    fn vgg11_structure() {
        let m = vgg11();
        assert_eq!(m.len(), 16);
        assert_eq!(m.distributable_len(), 13);
        assert_eq!(m.prefix_output(), Shape::new(512, 7, 7));
        // Published parameter count is ~132.9 M.
        let params = m.parameter_count() as f64;
        assert!(params > 128e6 && params < 138e6, "params = {params:.3e}");
        // ~15.2 GFLOPs of convolution (7.6 GMACs x2) plus the FC head.
        let ops = m.total_ops();
        assert!(ops > 14e9 && ops < 17e9, "VGG-11 ops = {ops:.3e}");
    }

    #[test]
    fn resnet50_structure() {
        let m = resnet50();
        // Stem (2) + (3+4+6+3) blocks * 3 layers + pool = 51 distributable.
        assert_eq!(m.distributable_len(), 2 + 16 * 3 + 1);
        assert_eq!(m.prefix_output(), Shape::new(2048, 1, 1));
        assert_eq!(m.layers()[2].input.h, 56);
    }

    #[test]
    fn inception_v3_structure() {
        let m = inception_v3();
        assert_eq!(m.prefix_output(), Shape::new(2048, 1, 1));
        // Spatial sizes follow the published 35 / 17 / 8 schedule.
        let heights: Vec<usize> = m.layers().iter().map(|l| l.output.h).collect();
        assert!(heights.contains(&35));
        assert!(heights.contains(&17));
        assert!(heights.contains(&8));
    }
}
