//! OpenPose (multi-person 2-D pose estimation).

use crate::layer::LayerOp;
use crate::model::Model;
use tensor::Shape;

/// OpenPose at 368×368: the VGG-19 feature prefix (through conv4_4, reduced
/// to 128 channels) followed by two refinement stages of wide 7×7
/// convolutions producing part-affinity-field and heat-map channels.
///
/// The original cascades six stages; two stages reproduce the published
/// body-25 cost profile closely enough for distribution experiments while
/// keeping the layer table readable (the remaining stages are identical in
/// configuration, so adding them changes only the total, not the shape of
/// the per-layer cost curve).
pub fn openpose() -> Model {
    use LayerOp as L;
    let mut ops = vec![
        // VGG-19 prefix.
        L::conv(64, 3, 1, 1),
        L::conv(64, 3, 1, 1),
        L::pool(2, 2),
        L::conv(128, 3, 1, 1),
        L::conv(128, 3, 1, 1),
        L::pool(2, 2),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        // CPM feature reduction.
        L::conv(256, 3, 1, 1),
        L::conv(128, 3, 1, 1),
    ];
    // Two refinement stages: five 7x7x128 convolutions, a 1x1x128 and the
    // 57-channel output (38 PAF + 19 heat-map channels).
    for _ in 0..2 {
        for _ in 0..5 {
            ops.push(L::conv(128, 7, 1, 3));
        }
        ops.push(L::conv(128, 1, 1, 0));
        ops.push(L::conv(57, 1, 1, 0));
    }
    Model::new("openpose", Shape::new(3, 368, 368), &ops).expect("openpose table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openpose_structure() {
        let m = openpose();
        assert!(m.head_layers().is_empty());
        // The CPM stages run at 1/8 resolution: 368 / 8 = 46.
        assert_eq!(m.prefix_output().h, 46);
        assert_eq!(m.prefix_output().c, 57);
        assert!(m.total_ops() > 30e9, "openpose ops = {:.3e}", m.total_ops());
    }

    #[test]
    fn stages_use_wide_filters() {
        let m = openpose();
        let wide = m.layers().iter().filter(|l| l.filter() == 7).count();
        assert_eq!(wide, 10);
    }
}
