//! Detection models: YOLOv2, SSD-VGG16, SSD-ResNet50, and the VoxelNet
//! bird's-eye-view equivalent.

use super::classification::resnet50_trunk;
use crate::layer::LayerOp;
use crate::model::Model;
use tensor::Shape;

/// YOLOv2 at 416×416: the Darknet-19 backbone plus the convolutional
/// detection head (3×3×1024 ×2 and the 425-channel prediction layer).
/// All convolutions use leaky-ReLU as in the original.
pub fn yolov2() -> Model {
    use LayerOp as L;
    let ops = [
        L::conv_leaky(32, 3, 1, 1),
        L::pool(2, 2),
        L::conv_leaky(64, 3, 1, 1),
        L::pool(2, 2),
        L::conv_leaky(128, 3, 1, 1),
        L::conv_leaky(64, 1, 1, 0),
        L::conv_leaky(128, 3, 1, 1),
        L::pool(2, 2),
        L::conv_leaky(256, 3, 1, 1),
        L::conv_leaky(128, 1, 1, 0),
        L::conv_leaky(256, 3, 1, 1),
        L::pool(2, 2),
        L::conv_leaky(512, 3, 1, 1),
        L::conv_leaky(256, 1, 1, 0),
        L::conv_leaky(512, 3, 1, 1),
        L::conv_leaky(256, 1, 1, 0),
        L::conv_leaky(512, 3, 1, 1),
        L::pool(2, 2),
        L::conv_leaky(1024, 3, 1, 1),
        L::conv_leaky(512, 1, 1, 0),
        L::conv_leaky(1024, 3, 1, 1),
        L::conv_leaky(512, 1, 1, 0),
        L::conv_leaky(1024, 3, 1, 1),
        // Detection head.
        L::conv_leaky(1024, 3, 1, 1),
        L::conv_leaky(1024, 3, 1, 1),
        L::conv(425, 1, 1, 0),
    ];
    Model::new("yolov2", Shape::new(3, 416, 416), &ops).expect("yolov2 table is valid")
}

/// The VGG-16 convolutional base at 300×300 used by SSD300, without the FC
/// head (SSD replaces it with conv6/conv7).
fn vgg16_base_300(ops: &mut Vec<LayerOp>) {
    use LayerOp as L;
    let base = [
        L::conv(64, 3, 1, 1),
        L::conv(64, 3, 1, 1),
        L::pool(2, 2),
        L::conv(128, 3, 1, 1),
        L::conv(128, 3, 1, 1),
        L::pool(2, 2),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::conv(256, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::pool(2, 2),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::conv(512, 3, 1, 1),
        L::pool(2, 2),
    ];
    ops.extend_from_slice(&base);
}

/// SSD extra feature layers appended after the backbone (conv8–conv10 of
/// SSD300): alternating 1×1 bottlenecks and stride-2 / valid 3×3 convolutions.
fn ssd_extra_layers(ops: &mut Vec<LayerOp>) {
    use LayerOp as L;
    ops.push(L::conv(256, 1, 1, 0));
    ops.push(L::conv(512, 3, 2, 1));
    ops.push(L::conv(128, 1, 1, 0));
    ops.push(L::conv(256, 3, 2, 1));
    ops.push(L::conv(128, 1, 1, 0));
    ops.push(L::conv(256, 3, 1, 0));
}

/// SSD300 with the VGG-16 backbone: base network, the conv6/conv7
/// replacements of the FC layers, and the extra feature layers.
pub fn ssd_vgg16() -> Model {
    use LayerOp as L;
    let mut ops = Vec::new();
    vgg16_base_300(&mut ops);
    ops.push(L::conv(1024, 3, 1, 1));
    ops.push(L::conv(1024, 1, 1, 0));
    ssd_extra_layers(&mut ops);
    Model::new("ssd_vgg16", Shape::new(3, 300, 300), &ops).expect("ssd_vgg16 table is valid")
}

/// SSD300 with the ResNet-50 backbone (trunk as in [`super::resnet50`]) and
/// the SSD extra feature layers.
pub fn ssd_resnet50() -> Model {
    let mut ops = Vec::new();
    resnet50_trunk(&mut ops);
    ssd_extra_layers(&mut ops);
    Model::new("ssd_resnet50", Shape::new(3, 300, 300), &ops).expect("ssd_resnet50 table is valid")
}

/// VoxelNet's middle convolutional layers and region-proposal network,
/// projected onto an equivalent-FLOP 2-D bird's-eye-view stack over a
/// 200×176 grid with 128 feature channels (the published KITTI
/// configuration at half grid resolution; see the zoo module docs).
pub fn voxelnet() -> Model {
    use LayerOp as L;
    let mut ops = vec![
        // Middle-layer equivalents.
        L::conv(128, 3, 1, 1),
        L::conv(128, 3, 1, 1),
        // RPN block 1.
        L::conv(128, 3, 2, 1),
        L::conv(128, 3, 1, 1),
        L::conv(128, 3, 1, 1),
        L::conv(128, 3, 1, 1),
    ];
    // RPN block 2.
    ops.push(L::conv(128, 3, 2, 1));
    for _ in 0..5 {
        ops.push(L::conv(128, 3, 1, 1));
    }
    // RPN block 3.
    ops.push(L::conv(256, 3, 2, 1));
    for _ in 0..5 {
        ops.push(L::conv(256, 3, 1, 1));
    }
    // Score and regression heads.
    ops.push(L::conv(2, 1, 1, 0));
    Model::new("voxelnet", Shape::new(128, 200, 176), &ops).expect("voxelnet table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolov2_structure() {
        let m = yolov2();
        assert_eq!(m.distributable_len(), m.len(), "yolov2 has no FC head");
        assert_eq!(m.prefix_output().h, 13);
        assert_eq!(m.prefix_output().c, 425);
        // Darknet reports ~29.5 BFLOPs for YOLOv2-416; the trunk modelled
        // here (without the passthrough reorg branch) lands slightly below.
        let ops = m.total_ops();
        assert!(ops > 20e9 && ops < 35e9, "yolov2 ops = {ops:.3e}");
    }

    #[test]
    fn ssd_vgg16_structure() {
        let m = ssd_vgg16();
        assert!(m.head_layers().is_empty());
        // Final feature map collapses to 1x1 through the extra layers.
        assert_eq!(m.prefix_output().h, 1);
    }

    #[test]
    fn ssd_resnet50_structure() {
        let m = ssd_resnet50();
        assert!(m.head_layers().is_empty());
        assert!(m.distributable_len() > 50);
    }

    #[test]
    fn voxelnet_structure() {
        let m = voxelnet();
        assert_eq!(m.input(), Shape::new(128, 200, 176));
        assert!(m.total_ops() > 20e9, "voxelnet ops = {:.3e}", m.total_ops());
        assert_eq!(m.prefix_output().h, 25);
    }
}
