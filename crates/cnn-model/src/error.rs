//! Error type for model construction and splitting.

use std::fmt;

/// Errors raised while building models or planning splits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A layer does not fit its input (e.g. filter larger than padded input).
    InvalidGeometry {
        /// Index of the offending layer.
        layer: usize,
        /// Human-readable description.
        reason: String,
    },
    /// A partition scheme is malformed (unsorted, out of range, …).
    InvalidPartition(String),
    /// A vertical split is malformed (cuts unsorted or out of range).
    InvalidSplit(String),
    /// A referenced layer or volume index is out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// The model contains no distributable (conv/pool) layers.
    EmptyModel,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidGeometry { layer, reason } => {
                write!(f, "layer {layer} has invalid geometry: {reason}")
            }
            ModelError::InvalidPartition(msg) => write!(f, "invalid partition scheme: {msg}"),
            ModelError::InvalidSplit(msg) => write!(f, "invalid vertical split: {msg}"),
            ModelError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range (len {len})")
            }
            ModelError::EmptyModel => write!(f, "model has no distributable layers"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ModelError::EmptyModel
            .to_string()
            .contains("no distributable"));
        assert!(ModelError::InvalidPartition("x".into())
            .to_string()
            .contains("x"));
        assert!(ModelError::InvalidSplit("y".into())
            .to_string()
            .contains("y"));
        assert!(ModelError::IndexOutOfRange { index: 3, len: 2 }
            .to_string()
            .contains("3"));
        assert!(ModelError::InvalidGeometry {
            layer: 1,
            reason: "z".into()
        }
        .to_string()
        .contains("z"));
    }
}
