//! Operation and transmission totals of a distribution strategy — the two
//! quantities the LC-PSS partitioner trades off through its score
//! `Cp = α · T + (1 − α) · O` (paper Eq. 3).
//!
//! * `O` is the total number of operations executed across *all* split-parts.
//!   Because split-parts of a multi-layer volume overlap (halo rows), `O`
//!   grows as volumes get deeper and as more devices share a volume.
//! * `T` is the total number of bytes that have to move between layer-volumes
//!   (volume inputs for every part, plus the model input and the final output
//!   returned to the requester).
//!
//! Both quantities are reported raw and normalised; LC-PSS scores use the
//! normalised values so that `α` is a unit-free trade-off knob.

use crate::model::Model;
use crate::volume::{PartPlan, PartitionScheme, VolumeSplit};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Raw and normalised cost of one (partition scheme, split decisions) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyCost {
    /// Total operations over all split-parts (includes halo redundancy).
    pub total_ops: f64,
    /// Total bytes crossing volume boundaries (includes model input and
    /// final prefix output).
    pub total_transmission: f64,
    /// `total_ops` divided by the un-split model's operation count.
    pub ops_ratio: f64,
    /// `total_transmission` divided by the layer-by-layer transmission total.
    pub transmission_ratio: f64,
}

impl StrategyCost {
    /// The LC-PSS score `Cp = α · T̂ + (1 − α) · Ô` over normalised values.
    pub fn score(&self, alpha: f64) -> f64 {
        alpha * self.transmission_ratio + (1.0 - alpha) * self.ops_ratio
    }
}

/// Computes the cost of a partition scheme under given per-volume splits.
///
/// `splits` must contain one [`VolumeSplit`] per volume of the scheme.
pub fn strategy_cost(
    model: &Model,
    scheme: &PartitionScheme,
    splits: &[VolumeSplit],
) -> Result<StrategyCost> {
    let volumes = scheme.volumes();
    assert_eq!(
        volumes.len(),
        splits.len(),
        "one split decision required per layer-volume"
    );
    let mut total_ops = 0.0;
    let mut total_tx = model.input_bytes();
    for (volume, split) in volumes.iter().zip(splits) {
        let plans = PartPlan::plan_all(model, *volume, split)?;
        for plan in &plans {
            total_ops += plan.ops(model);
            total_tx += plan.input_bytes(model);
        }
    }
    // The distributable prefix output travels back towards the requester (or
    // on to the FC-head device); count it once.
    let last = &model.layers()[model.distributable_len() - 1];
    total_tx += last.output_bytes();
    total_ops += model.head_ops();

    let prefix_ops: f64 = model.layers()[..model.distributable_len()]
        .iter()
        .map(|l| l.ops())
        .sum::<f64>()
        + model.head_ops();
    let layerwise_tx = model.total_output_bytes() + model.input_bytes();
    Ok(StrategyCost {
        total_ops,
        total_transmission: total_tx,
        ops_ratio: total_ops / prefix_ops.max(1.0),
        transmission_ratio: total_tx / layerwise_tx.max(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerOp;
    use crate::model::Model;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "t",
            Shape::new(3, 64, 64),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::pool(2, 2),
            ],
        )
        .unwrap()
    }

    fn equal_splits(model: &Model, scheme: &PartitionScheme, n: usize) -> Vec<VolumeSplit> {
        scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(n, v.last_output_height(model)))
            .collect()
    }

    #[test]
    fn single_volume_minimises_transmission() {
        let m = model();
        let fused = PartitionScheme::single_volume(&m);
        let layered = PartitionScheme::layer_by_layer(&m);
        let fused_cost = strategy_cost(&m, &fused, &equal_splits(&m, &fused, 4)).unwrap();
        let layered_cost = strategy_cost(&m, &layered, &equal_splits(&m, &layered, 4)).unwrap();
        assert!(fused_cost.total_transmission < layered_cost.total_transmission);
    }

    #[test]
    fn layer_by_layer_minimises_ops() {
        let m = model();
        let fused = PartitionScheme::single_volume(&m);
        let layered = PartitionScheme::layer_by_layer(&m);
        let fused_cost = strategy_cost(&m, &fused, &equal_splits(&m, &fused, 4)).unwrap();
        let layered_cost = strategy_cost(&m, &layered, &equal_splits(&m, &layered, 4)).unwrap();
        // Per-layer splitting has no multi-layer halo redundancy, so it does
        // the least (or equal) total work.
        assert!(layered_cost.total_ops <= fused_cost.total_ops + 1.0);
    }

    #[test]
    fn ops_ratio_at_least_one() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let cost = strategy_cost(&m, &scheme, &equal_splits(&m, &scheme, 4)).unwrap();
        assert!(cost.ops_ratio >= 1.0);
        assert!(cost.transmission_ratio > 0.0);
    }

    #[test]
    fn score_interpolates_between_extremes() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let cost = strategy_cost(&m, &scheme, &equal_splits(&m, &scheme, 2)).unwrap();
        assert!((cost.score(0.0) - cost.ops_ratio).abs() < 1e-12);
        assert!((cost.score(1.0) - cost.transmission_ratio).abs() < 1e-12);
        let mid = cost.score(0.5);
        assert!(mid >= cost.ops_ratio.min(cost.transmission_ratio));
        assert!(mid <= cost.ops_ratio.max(cost.transmission_ratio));
    }

    #[test]
    #[should_panic(expected = "one split decision required")]
    fn mismatched_splits_panic() {
        let m = model();
        let scheme = PartitionScheme::layer_by_layer(&m);
        let _ = strategy_cost(&m, &scheme, &[]);
    }
}
