//! Uniform-sampling replay buffer.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One transition of the OSDS MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State observed before acting.
    pub state: Vec<f64>,
    /// Raw (pre-mapping) action emitted by the actor, as stored for training
    /// (Algorithm 2 line 18 stores the original output action vector).
    pub action: Vec<f64>,
    /// Reward received.
    pub reward: f64,
    /// Next state.
    pub next_state: Vec<f64>,
    /// Whether the episode terminated after this transition.
    pub done: bool,
}

/// A fixed-capacity ring-buffer replay memory with uniform sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            data: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Adds a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly at random (with replacement if the
    /// buffer holds fewer than `n`).
    pub fn sample<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Transition> {
        if self.data.is_empty() {
            return Vec::new();
        }
        if self.data.len() >= n {
            self.data.choose_multiple(rng, n).cloned().collect()
        } else {
            (0..n)
                .map(|_| self.data[rng.gen_range(0..self.data.len())].clone())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(v: f64) -> Transition {
        Transition {
            state: vec![v],
            action: vec![v],
            reward: v,
            next_state: vec![v],
            done: false,
        }
    }

    #[test]
    fn push_and_len() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        b.push(t(1.0));
        b.push(t(2.0));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eviction_wraps_around() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(t(i as f64));
        }
        assert_eq!(b.len(), 3);
        // Oldest two (0, 1) were overwritten by 3 and 4.
        let rewards: Vec<f64> = b.data.iter().map(|x| x.reward).collect();
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn sample_sizes() {
        let mut b = ReplayBuffer::new(100);
        for i in 0..10 {
            b.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(b.sample(4, &mut rng).len(), 4);
        // More than stored: sampling with replacement still returns n.
        assert_eq!(b.sample(64, &mut rng).len(), 64);
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b = ReplayBuffer::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.sample(5, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }
}
