//! A small, self-contained neural-network and deep-reinforcement-learning
//! library: exactly what the OSDS splitter (paper Algorithm 2) needs and
//! nothing more.
//!
//! The paper trains a DDPG agent whose actor is a three-hidden-layer MLP
//! ({400, 200, 100}) and whose critic is a four-hidden-layer MLP
//! ({400, 200, 100, 100}).  The Rust RL ecosystem is thin, so this crate
//! implements the pieces directly:
//!
//! * [`mlp`] — dense layers with manual forward/backward passes,
//! * [`adam`] — the Adam optimiser,
//! * [`replay`] — a uniform-sampling replay buffer,
//! * [`noise`] — Gaussian exploration noise,
//! * [`ddpg`] — the actor-critic agent with target networks and soft
//!   updates (Lillicrap et al., the algorithm the paper cites).
//!
//! Everything uses `f64` and plain `Vec`s; the networks involved are tiny
//! (a few hundred units), so clarity wins over SIMD cleverness here.

pub mod adam;
pub mod ddpg;
pub mod mlp;
pub mod noise;
pub mod replay;

pub use adam::Adam;
pub use ddpg::{DdpgAgent, DdpgConfig};
pub use mlp::{ActKind, Mlp};
pub use noise::GaussianNoise;
pub use replay::{ReplayBuffer, Transition};
