//! The Adam optimiser over a flat parameter vector.

use crate::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// Adam optimiser state for one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimiser for a network with `num_params` parameters.
    pub fn new(num_params: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
            t: 0,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Applies one Adam step to `net` using its accumulated gradients, then
    /// clears the gradients.
    pub fn step(&mut self, net: &mut Mlp) {
        let grads = net.grads_flat();
        assert_eq!(grads.len(), self.m.len(), "optimiser/network size mismatch");
        let mut params = net.params_flat();
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        net.set_params_flat(&params);
        net.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::ActKind;

    /// Train y = 2x + 1 with a tiny MLP; Adam should drive the MSE well down.
    #[test]
    fn adam_fits_a_line() {
        let mut net = Mlp::new(&[1, 16, 1], ActKind::Identity, 3);
        let mut opt = Adam::new(net.num_params(), 1e-2);
        let data: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 / 10.0 - 1.0;
                (x, 2.0 * x + 1.0)
            })
            .collect();
        let mse = |net: &mut Mlp| -> f64 {
            data.iter()
                .map(|&(x, y)| {
                    let p = net.forward(&[x])[0];
                    (p - y) * (p - y)
                })
                .sum::<f64>()
                / data.len() as f64
        };
        let before = mse(&mut net);
        for _ in 0..500 {
            net.zero_grad();
            for &(x, y) in &data {
                let p = net.forward(&[x])[0];
                // d/dp of (p-y)^2 / N
                net.backward(&[2.0 * (p - y) / data.len() as f64]);
            }
            opt.step(&mut net);
        }
        let after = mse(&mut net);
        assert!(after < before * 0.01, "before {before}, after {after}");
        assert!(after < 0.01, "after {after}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut net = Mlp::new(&[2, 4, 1], ActKind::Identity, 1);
        let mut opt = Adam::new(net.num_params(), 1e-3);
        let _ = net.forward(&[1.0, -1.0]);
        let _ = net.backward(&[1.0]);
        opt.step(&mut net);
        assert!(net.grads_flat().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn zero_gradient_changes_nothing() {
        let mut net = Mlp::new(&[2, 4, 1], ActKind::Identity, 1);
        let mut opt = Adam::new(net.num_params(), 1e-3);
        let before = net.params_flat();
        net.zero_grad();
        opt.step(&mut net);
        let after = net.params_flat();
        let max_diff = before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-12);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_network_panics() {
        let mut net = Mlp::new(&[2, 4, 1], ActKind::Identity, 1);
        let mut opt = Adam::new(3, 1e-3);
        opt.step(&mut net);
    }

    #[test]
    fn learning_rate_accessor() {
        let opt = Adam::new(10, 5e-4);
        assert_eq!(opt.learning_rate(), 5e-4);
    }
}
