//! Deep Deterministic Policy Gradient (Lillicrap et al.) — the continuous
//! action-space actor-critic algorithm the OSDS splitter trains.

use crate::adam::Adam;
use crate::mlp::{ActKind, Mlp};
use crate::replay::Transition;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a DDPG agent.  The defaults follow §V of the paper:
/// actor hidden layers {400, 200, 100}, critic hidden layers
/// {400, 200, 100, 100}, learning rates 1e-4 / 1e-3, γ = 0.99.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Discount factor γ.
    pub gamma: f64,
    /// Soft target-update coefficient τ.
    pub tau: f64,
    /// Actor learning rate.
    pub actor_lr: f64,
    /// Critic learning rate.
    pub critic_lr: f64,
    /// Actor hidden layer sizes.
    pub actor_hidden: [usize; 3],
    /// Critic hidden layer sizes.
    pub critic_hidden: [usize; 4],
    /// RNG seed for network initialisation.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            tau: 0.005,
            actor_lr: 1e-4,
            critic_lr: 1e-3,
            actor_hidden: [400, 200, 100],
            critic_hidden: [400, 200, 100, 100],
            seed: 0,
        }
    }
}

/// A DDPG actor-critic agent with target networks.
#[derive(Debug, Clone)]
pub struct DdpgAgent {
    /// State dimensionality.
    pub state_dim: usize,
    /// Action dimensionality.
    pub action_dim: usize,
    config: DdpgConfig,
    actor: Mlp,
    critic: Mlp,
    actor_target: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
}

impl DdpgAgent {
    /// Creates a new agent for the given state/action dimensionalities.
    pub fn new(state_dim: usize, action_dim: usize, config: DdpgConfig) -> Self {
        let a = config.actor_hidden;
        let c = config.critic_hidden;
        let actor_dims = [state_dim, a[0], a[1], a[2], action_dim];
        let critic_dims = [state_dim + action_dim, c[0], c[1], c[2], c[3], 1];
        let actor = Mlp::new(&actor_dims, ActKind::Tanh, config.seed.wrapping_add(1));
        let critic = Mlp::new(&critic_dims, ActKind::Identity, config.seed.wrapping_add(2));
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let actor_opt = Adam::new(actor.num_params(), config.actor_lr);
        let critic_opt = Adam::new(critic.num_params(), config.critic_lr);
        Self {
            state_dim,
            action_dim,
            config,
            actor,
            critic,
            actor_target,
            critic_target,
            actor_opt,
            critic_opt,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> DdpgConfig {
        self.config
    }

    /// Deterministic policy: actor output in `[-1, 1]^action_dim`.
    pub fn act(&mut self, state: &[f64]) -> Vec<f64> {
        debug_assert_eq!(state.len(), self.state_dim);
        self.actor.forward(state)
    }

    /// Critic value `Q(s, a)`.
    pub fn q_value(&mut self, state: &[f64], action: &[f64]) -> f64 {
        let mut input = Vec::with_capacity(self.state_dim + self.action_dim);
        input.extend_from_slice(state);
        input.extend_from_slice(action);
        self.critic.forward(&input)[0]
    }

    /// One DDPG update over a mini-batch.  Returns `(critic_loss, actor_loss)`
    /// for monitoring.
    pub fn update(&mut self, batch: &[Transition]) -> (f64, f64) {
        if batch.is_empty() {
            return (0.0, 0.0);
        }
        let n = batch.len() as f64;
        let gamma = self.config.gamma;

        // --- Critic update: minimise (Q(s,a) - y)² with
        //     y = r + γ (1-done) Q'(s', μ'(s')).
        let mut targets = Vec::with_capacity(batch.len());
        for t in batch {
            let y = if t.done {
                t.reward
            } else {
                let next_action = self.actor_target.forward(&t.next_state);
                let mut input = t.next_state.clone();
                input.extend_from_slice(&next_action);
                t.reward + gamma * self.critic_target.forward(&input)[0]
            };
            targets.push(y);
        }
        self.critic.zero_grad();
        let mut critic_loss = 0.0;
        for (t, &y) in batch.iter().zip(&targets) {
            let mut input = t.state.clone();
            input.extend_from_slice(&t.action);
            let q = self.critic.forward(&input)[0];
            let err = q - y;
            critic_loss += err * err / n;
            self.critic.backward(&[2.0 * err / n]);
        }
        self.critic_opt.step(&mut self.critic);

        // --- Actor update: maximise Q(s, μ(s)), i.e. minimise -Q.
        self.actor.zero_grad();
        let mut actor_loss = 0.0;
        for t in batch {
            let action = self.actor.forward(&t.state);
            let mut input = t.state.clone();
            input.extend_from_slice(&action);
            self.critic.zero_grad();
            let q = self.critic.forward(&input)[0];
            actor_loss += -q / n;
            // dL/dQ = -1/n; propagate through the critic to get dL/d(action).
            let grad_input = self.critic.backward(&[-1.0 / n]);
            let grad_action = &grad_input[self.state_dim..];
            self.actor.backward(grad_action);
        }
        // The critic gradients accumulated while differentiating the actor
        // objective must not be applied.
        self.critic.zero_grad();
        self.actor_opt.step(&mut self.actor);

        // --- Soft-update target networks.
        self.actor_target
            .soft_update_from(&self.actor, self.config.tau);
        self.critic_target
            .soft_update_from(&self.critic, self.config.tau);

        (critic_loss, actor_loss)
    }

    /// Snapshot of the current actor parameters (used to store `Actor*` in
    /// Algorithm 2).
    pub fn actor_params(&self) -> Vec<f64> {
        self.actor.params_flat()
    }

    /// Restores actor parameters from a snapshot.
    pub fn set_actor_params(&mut self, params: &[f64]) {
        self.actor.set_params_flat(params);
    }

    /// Snapshot of the current critic parameters (Algorithm 2's `Critic*`).
    pub fn critic_params(&self) -> Vec<f64> {
        self.critic.params_flat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayBuffer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config(seed: u64) -> DdpgConfig {
        DdpgConfig {
            actor_hidden: [32, 24, 16],
            critic_hidden: [32, 24, 16, 16],
            actor_lr: 1e-3,
            critic_lr: 3e-3,
            seed,
            ..DdpgConfig::default()
        }
    }

    #[test]
    fn act_is_bounded_and_correct_dim() {
        let mut agent = DdpgAgent::new(5, 3, small_config(1));
        let a = agent.act(&[0.1, -0.5, 0.3, 0.0, 0.9]);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn update_on_empty_batch_is_noop() {
        let mut agent = DdpgAgent::new(3, 2, small_config(2));
        let before = agent.actor_params();
        let (cl, al) = agent.update(&[]);
        assert_eq!((cl, al), (0.0, 0.0));
        assert_eq!(agent.actor_params(), before);
    }

    #[test]
    fn critic_loss_decreases_on_fixed_batch() {
        // A fixed supervised-style batch: the critic should fit the targets.
        let mut agent = DdpgAgent::new(2, 1, small_config(3));
        let mut rng = StdRng::seed_from_u64(5);
        let batch: Vec<Transition> = (0..32)
            .map(|_| {
                let s = vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
                let a = vec![rng.gen_range(-1.0..1.0)];
                let r = s[0] + a[0];
                Transition {
                    state: s.clone(),
                    action: a,
                    reward: r,
                    next_state: s,
                    done: true,
                }
            })
            .collect();
        let (first_loss, _) = agent.update(&batch);
        let mut last_loss = first_loss;
        for _ in 0..200 {
            let (l, _) = agent.update(&batch);
            last_loss = l;
        }
        assert!(
            last_loss < first_loss * 0.2,
            "first {first_loss}, last {last_loss}"
        );
    }

    /// A one-step continuous bandit: reward = 1 - (a - 0.6)².  DDPG should
    /// steer the deterministic policy towards a ≈ 0.6.
    #[test]
    fn solves_continuous_bandit() {
        let mut agent = DdpgAgent::new(1, 1, small_config(7));
        let mut buffer = ReplayBuffer::new(4096);
        let mut rng = StdRng::seed_from_u64(11);
        let state = vec![0.5];
        for episode in 0..600 {
            let mut action = agent.act(&state);
            // Exploration noise decaying over time.
            let sigma = if episode < 400 { 0.4 } else { 0.05 };
            action[0] = (action[0] + rng.gen_range(-sigma..sigma)).clamp(-1.0, 1.0);
            let reward = 1.0 - (action[0] - 0.6) * (action[0] - 0.6);
            buffer.push(Transition {
                state: state.clone(),
                action,
                reward,
                next_state: state.clone(),
                done: true,
            });
            let batch = buffer.sample(32, &mut rng);
            agent.update(&batch);
        }
        let final_action = agent.act(&state)[0];
        assert!(
            (final_action - 0.6).abs() < 0.25,
            "policy should approach 0.6, got {final_action}"
        );
    }

    #[test]
    fn actor_param_snapshot_roundtrip() {
        let mut agent = DdpgAgent::new(3, 2, small_config(9));
        let snap = agent.actor_params();
        // Perturb by training on a dummy batch.
        let batch = vec![Transition {
            state: vec![0.1, 0.2, 0.3],
            action: vec![0.0, 0.0],
            reward: 1.0,
            next_state: vec![0.1, 0.2, 0.3],
            done: true,
        }];
        for _ in 0..5 {
            agent.update(&batch);
        }
        assert_ne!(agent.actor_params(), snap);
        agent.set_actor_params(&snap);
        assert_eq!(agent.actor_params(), snap);
        assert!(!agent.critic_params().is_empty());
    }
}
