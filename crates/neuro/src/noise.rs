//! Exploration noise.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Zero-mean Gaussian exploration noise with configurable variance
/// (Algorithm 2 uses `N(0, σ²)` added to the actor output during the
/// exploration phase).
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    normal: Normal<f64>,
    rng: StdRng,
}

impl GaussianNoise {
    /// Creates noise with the given variance `σ²`.
    pub fn new(sigma_squared: f64, seed: u64) -> Self {
        let sigma = sigma_squared.max(0.0).sqrt();
        Self {
            normal: Normal::new(0.0, sigma.max(1e-12)).expect("valid normal"),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one noise sample.
    pub fn sample(&mut self) -> f64 {
        self.normal.sample(&mut self.rng)
    }

    /// Adds noise element-wise to an action vector.
    pub fn perturb(&mut self, action: &mut [f64]) {
        for a in action {
            *a += self.sample();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_configuration() {
        let mut n = GaussianNoise::new(0.1, 42);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 0.1).abs() < 0.01, "var {var}");
    }

    #[test]
    fn perturb_changes_values() {
        let mut n = GaussianNoise::new(1.0, 7);
        let mut a = vec![0.0; 8];
        n.perturb(&mut a);
        assert!(a.iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn reproducible_with_same_seed() {
        let mut a = GaussianNoise::new(0.5, 11);
        let mut b = GaussianNoise::new(0.5, 11);
        for _ in 0..10 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn zero_variance_is_effectively_silent() {
        let mut n = GaussianNoise::new(0.0, 1);
        assert!(n.sample().abs() < 1e-9);
    }
}
