//! Multi-layer perceptrons with manual forward/backward passes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActKind {
    /// Identity (used for output layers of critics).
    Identity,
    /// Rectified linear unit (hidden layers).
    Relu,
    /// Hyperbolic tangent (actor output, bounded actions).
    Tanh,
}

impl ActKind {
    fn forward(self, x: f64) -> f64 {
        match self {
            ActKind::Identity => x,
            ActKind::Relu => x.max(0.0),
            ActKind::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the activation *output* `y`.
    fn backward_from_output(self, y: f64) -> f64 {
        match self {
            ActKind::Identity => 1.0,
            ActKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Tanh => 1.0 - y * y,
        }
    }
}

/// One dense layer: `y = act(W x + b)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    in_dim: usize,
    out_dim: usize,
    act: ActKind,
    /// Row-major `[out][in]`.
    w: Vec<f64>,
    b: Vec<f64>,
    /// Accumulated gradients (same layout as `w` / `b`).
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    /// Caches from the most recent forward pass.
    last_input: Vec<f64>,
    last_output: Vec<f64>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, act: ActKind, rng: &mut StdRng) -> Self {
        // He/Xavier-style scaling keeps tiny MLPs well-conditioned.
        let scale = (2.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let b = vec![0.0; out_dim];
        Self {
            in_dim,
            out_dim,
            act,
            w,
            b,
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            last_input: Vec::new(),
            last_output: Vec::new(),
        }
    }

    fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = Vec::with_capacity(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            y.push(self.act.forward(acc));
        }
        self.last_input = x.to_vec();
        self.last_output = y.clone();
        y
    }

    /// Backward pass: accumulates weight/bias gradients and returns dL/dx.
    fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, g) in grad_out.iter().enumerate() {
            let dz = g * self.act.backward_from_output(self.last_output[o]);
            self.grad_b[o] += dz;
            let row_w = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.grad_w[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += dz * self.last_input[i];
                grad_in[i] += dz * row_w[i];
            }
        }
        grad_in
    }
}

/// A multi-layer perceptron.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes.
    ///
    /// `dims = [in, h1, …, out]`; every hidden layer uses ReLU and the output
    /// layer uses `output_act`.
    pub fn new(dims: &[usize], output_act: ActKind, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i == dims.len() - 2 {
                output_act
            } else {
                ActKind::Relu
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, &mut rng));
        }
        Self { layers }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }

    /// Forward pass (caches activations for a subsequent backward pass).
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backward pass from an output gradient; accumulates parameter
    /// gradients and returns the gradient with respect to the input.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        let mut grad = grad_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.grad_w.iter_mut().for_each(|g| *g = 0.0);
            layer.grad_b.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Copies all parameters into a flat vector (weights then biases, layer
    /// by layer).
    pub fn params_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Copies the accumulated gradients into a flat vector (same layout as
    /// [`Mlp::params_flat`]).
    pub fn grads_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for l in &self.layers {
            out.extend_from_slice(&l.grad_w);
            out.extend_from_slice(&l.grad_b);
        }
        out
    }

    /// Overwrites the parameters from a flat vector.
    pub fn set_params_flat(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params());
        let mut offset = 0;
        for l in &mut self.layers {
            let wl = l.w.len();
            l.w.copy_from_slice(&params[offset..offset + wl]);
            offset += wl;
            let bl = l.b.len();
            l.b.copy_from_slice(&params[offset..offset + bl]);
            offset += bl;
        }
    }

    /// Soft-updates this network towards `source`:
    /// `θ ← τ·θ_source + (1 − τ)·θ`.
    pub fn soft_update_from(&mut self, source: &Mlp, tau: f64) {
        let src = source.params_flat();
        let mut dst = self.params_flat();
        for (d, s) in dst.iter_mut().zip(&src) {
            *d = tau * s + (1.0 - tau) * *d;
        }
        self.set_params_flat(&dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut mlp = Mlp::new(&[4, 8, 3], ActKind::Tanh, 1);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 3);
        let y = mlp.forward(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(y.len(), 3);
        assert!(y.iter().all(|v| v.abs() <= 1.0), "tanh output is bounded");
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let mlp = Mlp::new(&[4, 8, 3], ActKind::Identity, 1);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn params_roundtrip() {
        let mut mlp = Mlp::new(&[3, 5, 2], ActKind::Identity, 2);
        let p = mlp.params_flat();
        let mut p2 = p.clone();
        p2[0] += 1.0;
        mlp.set_params_flat(&p2);
        assert_eq!(mlp.params_flat(), p2);
    }

    #[test]
    fn deterministic_initialisation() {
        let a = Mlp::new(&[3, 4, 1], ActKind::Identity, 42);
        let b = Mlp::new(&[3, 4, 1], ActKind::Identity, 42);
        assert_eq!(a.params_flat(), b.params_flat());
        let c = Mlp::new(&[3, 4, 1], ActKind::Identity, 43);
        assert_ne!(a.params_flat(), c.params_flat());
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check of dL/dθ for L = 0.5 * ||y||².
        let mut mlp = Mlp::new(&[3, 6, 2], ActKind::Tanh, 7);
        let x = [0.3, -0.7, 0.5];
        let loss = |m: &mut Mlp| -> f64 {
            let y = m.forward(&x);
            0.5 * y.iter().map(|v| v * v).sum::<f64>()
        };
        // Analytic gradients.
        mlp.zero_grad();
        let y = mlp.forward(&x);
        mlp.backward(&y); // dL/dy = y
        let analytic = mlp.grads_flat();
        // Numeric gradients for a handful of parameters.
        let params = mlp.params_flat();
        let eps = 1e-6;
        for idx in [0usize, 5, 11, params.len() - 1] {
            let mut plus = params.clone();
            plus[idx] += eps;
            let mut minus = params.clone();
            minus[idx] -= eps;
            mlp.set_params_flat(&plus);
            let lp = loss(&mut mlp);
            mlp.set_params_flat(&minus);
            let lm = loss(&mut mlp);
            mlp.set_params_flat(&params);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[idx]).abs() < 1e-5,
                "param {idx}: numeric {numeric} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn input_gradient_check() {
        // Finite-difference check of dL/dx.
        let mut mlp = Mlp::new(&[3, 5, 1], ActKind::Identity, 9);
        let x = [0.2, 0.4, -0.1];
        let forward_loss = |m: &mut Mlp, x: &[f64]| -> f64 { m.forward(x)[0] };
        mlp.zero_grad();
        let _ = mlp.forward(&x);
        let grad_in = mlp.backward(&[1.0]);
        let eps = 1e-6;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let numeric = (forward_loss(&mut mlp, &xp) - forward_loss(&mut mlp, &xm)) / (2.0 * eps);
            assert!((numeric - grad_in[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut mlp = Mlp::new(&[2, 3, 1], ActKind::Identity, 5);
        let _ = mlp.forward(&[1.0, 2.0]);
        let _ = mlp.backward(&[1.0]);
        assert!(mlp.grads_flat().iter().any(|g| g.abs() > 0.0));
        mlp.zero_grad();
        assert!(mlp.grads_flat().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn soft_update_converges_to_source() {
        let source = Mlp::new(&[2, 4, 1], ActKind::Identity, 1);
        let mut target = Mlp::new(&[2, 4, 1], ActKind::Identity, 2);
        for _ in 0..2000 {
            target.soft_update_from(&source, 0.01);
        }
        let max_diff = target
            .params_flat()
            .iter()
            .zip(source.params_flat())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "max diff {max_diff}");
    }

    #[test]
    fn soft_update_with_tau_one_copies() {
        let source = Mlp::new(&[2, 3, 1], ActKind::Identity, 1);
        let mut target = Mlp::new(&[2, 3, 1], ActKind::Identity, 2);
        target.soft_update_from(&source, 1.0);
        assert_eq!(target.params_flat(), source.params_flat());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_dims_panics() {
        let _ = Mlp::new(&[3], ActKind::Identity, 0);
    }
}
