//! Named counters and gauges.
//!
//! One flat registry per [`crate::Telemetry`] hub replaces the ad-hoc
//! per-subsystem structs (`GatewayMetrics` totals, `DeviceMetrics` byte
//! counts, `SwapReport` sums): every subsystem registers cells by name and
//! a single [`crate::Telemetry::metrics`] call snapshots them all.

use serde::Serialize;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing count (events, bytes, sheds, flips).
/// Cheap to clone — clones share the same cell.
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    pub(crate) fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level that moves both ways (queue depth, in-flight window, credits,
/// serving epoch).  Cheap to clone — clones share the same cell.
#[derive(Clone)]
pub struct Gauge(pub(crate) Arc<AtomicI64>);

impl Gauge {
    pub(crate) fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What kind of cell a [`Metric`] snapshot came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MetricKind {
    /// Monotone count.
    Counter,
    /// Instantaneous level.
    Gauge,
}

/// One named metric's value at snapshot time.
#[derive(Debug, Clone, Serialize)]
pub struct Metric {
    /// Registry name, e.g. `"gateway.shed.deadline.high"`.
    pub name: String,
    /// The cell's value at snapshot time.
    pub value: f64,
    /// Counter or gauge.
    pub kind: MetricKind,
}

pub(crate) enum MetricCell {
    Counter(Counter),
    Gauge(Gauge),
}

impl MetricCell {
    pub(crate) fn snapshot(&self, name: &str) -> Metric {
        match self {
            MetricCell::Counter(c) => Metric {
                name: name.to_string(),
                value: c.get() as f64,
                kind: MetricKind::Counter,
            },
            MetricCell::Gauge(g) => Metric {
                name: name.to_string(),
                value: g.get() as f64,
                kind: MetricKind::Gauge,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clones_share_the_cell() {
        let a = Counter::detached();
        let b = a.clone();
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::detached();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
