//! Collected-trace analysis: Chrome trace-event export and per-image
//! critical-path breakdowns.

use crate::event::{SpanEvent, Stage, NO_IMAGE};
use std::collections::BTreeMap;

/// All events drained from one ring (= one recording thread).
#[derive(Debug, Clone)]
pub struct TrackTrace {
    /// The track name the ring was registered under.
    pub name: String,
    /// The device the track's thread works for ([`crate::REQUESTER`] for
    /// requester-side tracks).
    pub device: u32,
    /// Drained events in push order.
    pub events: Vec<SpanEvent>,
}

/// Per-stage aggregate on one image's trace.
#[derive(Debug, Clone)]
pub struct StageCost {
    /// Stage name ([`Stage::name`]).
    pub stage: &'static str,
    /// Summed span duration in milliseconds.
    pub total_ms: f64,
    /// Number of spans of this stage.
    pub spans: usize,
    /// Summed payload bytes the stage moved.
    pub bytes: u64,
}

/// Where one image's latency went, stage by stage.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The image analyzed.
    pub image: u32,
    /// Earliest span start → latest span end, milliseconds.
    pub wall_ms: f64,
    /// Every stage seen for the image, heaviest first.
    pub stages: Vec<StageCost>,
    /// The dominant *pipeline* stage name ([`Stage::is_pipeline`]) — the
    /// stage re-planning can actually move.  Queue / wait stages are listed
    /// in `stages` but never dominate: they measure waiting *on* the
    /// pipeline, not the pipeline itself.
    pub dominant: &'static str,
}

impl CriticalPath {
    /// Render the breakdown as an aligned table for terminal output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "image {:>4}  wall {:7.2} ms  dominant stage: {}\n",
            self.image, self.wall_ms, self.dominant
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<14} {:8.2} ms  ({} span{}, {} bytes)\n",
                s.stage,
                s.total_ms,
                s.spans,
                if s.spans == 1 { "" } else { "s" },
                s.bytes
            ));
        }
        out
    }
}

/// A snapshot of every ring at collection time, ready for export/analysis.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// One entry per ring, in registration order.
    pub tracks: Vec<TrackTrace>,
}

impl TraceReport {
    /// Total number of events across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    fn events(&self) -> impl Iterator<Item = &SpanEvent> {
        self.tracks.iter().flat_map(|t| t.events.iter())
    }

    /// Every image id that appears in the trace, ascending.
    pub fn images(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .events()
            .map(|e| e.trace.image)
            .filter(|&i| i != NO_IMAGE)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Devices that recorded at least one event for `image` (requester
    /// tracks excluded), ascending.
    pub fn devices_seen(&self, image: u32) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .tracks
            .iter()
            .filter(|t| t.device != crate::REQUESTER)
            .filter(|t| t.events.iter().any(|e| e.trace.image == image))
            .map(|t| t.device)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Stage names that appear on `image`'s trace, in lifecycle order of
    /// first occurrence.
    pub fn stages_seen(&self, image: u32) -> Vec<&'static str> {
        let mut seen = Vec::new();
        let mut spans: Vec<&SpanEvent> = self.events().filter(|e| e.trace.image == image).collect();
        spans.sort_by_key(|e| e.t_start_us);
        for e in spans {
            let name = e.stage.name();
            if !seen.contains(&name) {
                seen.push(name);
            }
        }
        seen
    }

    /// Break down where `image`'s latency went.  Returns `None` if the
    /// trace holds no span events for the image.
    pub fn critical_path(&self, image: u32) -> Option<CriticalPath> {
        let mut by_stage: BTreeMap<&'static str, StageCost> = BTreeMap::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut dominant: Option<(&'static str, f64)> = None;
        let mut any = false;
        for e in self.events().filter(|e| e.trace.image == image) {
            any = true;
            lo = lo.min(e.t_start_us);
            hi = hi.max(e.t_end_us);
            if e.stage.is_instant() {
                continue;
            }
            let cost = by_stage.entry(e.stage.name()).or_insert(StageCost {
                stage: e.stage.name(),
                total_ms: 0.0,
                spans: 0,
                bytes: 0,
            });
            cost.total_ms += e.duration_ms();
            cost.spans += 1;
            cost.bytes += e.bytes;
            if e.stage.is_pipeline() {
                let total = cost.total_ms;
                if dominant.is_none_or(|(_, best)| total > best) {
                    dominant = Some((e.stage.name(), total));
                }
            }
        }
        if !any {
            return None;
        }
        let mut stages: Vec<StageCost> = by_stage.into_values().collect();
        stages.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));
        Some(CriticalPath {
            image,
            wall_ms: hi.saturating_sub(lo) as f64 / 1e3,
            dominant: dominant.map(|(name, _)| name).unwrap_or(""),
            stages,
        })
    }

    /// Export as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form) — loadable in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`.  Each ring becomes one named thread track;
    /// spans are `ph:"X"` complete events, instants `ph:"i"`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for (tid, track) in self.tracks.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track.name
                ),
                &mut first,
            );
            for e in &track.events {
                let name = span_name(e);
                let args = format!(
                    "{{\"epoch\":{},\"image\":{},\"device\":{},\"bytes\":{},\"arg\":{}}}",
                    e.trace.epoch,
                    i64::from(e.trace.image as i32),
                    i64::from(e.device as i32),
                    e.bytes,
                    e.arg
                );
                if e.stage.is_instant() {
                    push(
                        format!(
                            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"pid\":1,\
                             \"tid\":{tid},\"ts\":{},\"args\":{args}}}",
                            e.t_start_us
                        ),
                        &mut first,
                    );
                } else {
                    push(
                        format!(
                            "{{\"ph\":\"X\",\"name\":\"{name}\",\"pid\":1,\"tid\":{tid},\
                             \"ts\":{},\"dur\":{},\"args\":{args}}}",
                            e.t_start_us,
                            e.t_end_us.saturating_sub(e.t_start_us)
                        ),
                        &mut first,
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn span_name(e: &SpanEvent) -> String {
    match e.stage {
        Stage::Compute(v) => format!("compute:v{v}"),
        s => s.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceId, REQUESTER};

    fn span(device: u32, image: u32, stage: Stage, t0: u64, t1: u64, bytes: u64) -> SpanEvent {
        SpanEvent {
            trace: TraceId { epoch: 0, image },
            device,
            stage,
            t_start_us: t0,
            t_end_us: t1,
            bytes,
            arg: 0,
        }
    }

    fn sample_report() -> TraceReport {
        TraceReport {
            tracks: vec![
                TrackTrace {
                    name: "requester".into(),
                    device: REQUESTER,
                    events: vec![
                        span(REQUESTER, 7, Stage::Submit, 0, 500, 0),
                        span(REQUESTER, 7, Stage::Scatter, 10, 400, 3000),
                        span(REQUESTER, 7, Stage::Wait, 500, 9_000, 0),
                    ],
                },
                TrackTrace {
                    name: "dev0.comp".into(),
                    device: 0,
                    events: vec![
                        span(0, 7, Stage::Compute(0), 600, 2_600, 0),
                        span(0, 7, Stage::Head, 7_000, 7_400, 0),
                    ],
                },
                TrackTrace {
                    name: "dev1.send".into(),
                    device: 1,
                    events: vec![span(1, 7, Stage::Tx, 2_700, 6_900, 50_000)],
                },
            ],
        }
    }

    #[test]
    fn critical_path_names_the_heaviest_pipeline_stage() {
        let report = sample_report();
        let cp = report.critical_path(7).unwrap();
        // Wait (8.5 ms) is the longest span but only measures blocking on
        // the pipeline; tx (4.2 ms) is the heaviest pipeline stage.
        assert_eq!(cp.dominant, "tx");
        assert!((cp.wall_ms - 9.0).abs() < 1e-9);
        assert_eq!(cp.stages[0].stage, "wait");
        assert!(cp.render().contains("dominant stage: tx"));
    }

    #[test]
    fn image_and_device_queries() {
        let report = sample_report();
        assert_eq!(report.images(), vec![7]);
        assert_eq!(report.devices_seen(7), vec![0, 1]);
        let stages = report.stages_seen(7);
        assert_eq!(stages.first(), Some(&"submit"));
        assert!(stages.contains(&"tx") && stages.contains(&"compute"));
        assert!(report.critical_path(99).is_none());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_track_per_ring() {
        let report = sample_report();
        let json = report.to_chrome_trace();
        let value: serde::json::Value = serde_json::from_str(&json).expect("trace must parse");
        let serde::json::Value::Object(fields) = &value else {
            panic!("top level must be an object");
        };
        let (_, serde::json::Value::Array(events)) = &fields[0] else {
            panic!("traceEvents must be an array");
        };
        // 3 thread_name metadata records + 6 events.
        assert_eq!(events.len(), 9);
        let rendered = json.as_str();
        assert!(rendered.contains("\"thread_name\""));
        assert!(rendered.contains("\"dev1.send\""));
        assert!(rendered.contains("\"compute:v0\""));
    }
}
