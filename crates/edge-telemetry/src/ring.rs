//! Per-thread lock-free event rings.
//!
//! Each recording thread owns one [`EventRing`]: a fixed-capacity,
//! overwrite-oldest buffer of encoded [`SpanEvent`]s.  The single writer
//! never blocks and never allocates; readers ([`crate::Collector`]) drain
//! concurrently and simply skip slots the writer tore through mid-read.
//!
//! Each slot is a seqlock: a sequence word plus the six event words, all
//! plain atomics.  The writer publishes `seq = 2*head + 1` (odd: slot in
//! flight), stores the words, then `seq = 2*(head+1)` (even: generation the
//! slot now holds).  A reader accepts a slot only if it observed the same
//! even sequence before and after copying the words, so a torn read can
//! never produce a frankenstein event — at worst a slot is skipped.

use crate::event::{SpanEvent, EVENT_WORDS};
use std::sync::atomic::{fence, AtomicU64, Ordering};

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; EVENT_WORDS],
        }
    }
}

/// One thread's span log: single writer, many concurrent readers, oldest
/// events overwritten once `capacity` is exceeded.  Capacity 0 turns the
/// ring into a no-op (the disabled-telemetry fast path allocates nothing).
pub struct EventRing {
    name: String,
    device: u32,
    slots: Box<[Slot]>,
    /// Monotone count of events ever pushed; slot index is `head % cap`.
    head: AtomicU64,
}

impl EventRing {
    pub(crate) fn new(name: &str, device: u32, capacity: usize) -> Self {
        Self {
            name: name.to_string(),
            device,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The track name the ring was registered under (one per thread).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device the owning thread works for ([`crate::REQUESTER`] for
    /// requester-side tracks).
    pub fn device(&self) -> u32 {
        self.device
    }

    /// Append one event, overwriting the oldest if the ring is full.
    /// Safe to call from exactly one thread at a time (the owning
    /// [`crate::Recorder`] enforces this by requiring `&mut`).
    pub(crate) fn push(&self, ev: &SpanEvent) {
        let cap = self.slots.len() as u64;
        if cap == 0 {
            return;
        }
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % cap) as usize];
        // Odd sequence: readers back off while the words are in flight.
        slot.seq.store(2 * h + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(ev.encode()) {
            w.store(v, Ordering::Relaxed);
        }
        // Even sequence tagged with the generation the slot now holds.
        slot.seq.store(2 * (h + 1), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copy out every event with generation in `[from, head)` that is still
    /// resident (not yet overwritten) and not torn by a concurrent push.
    /// Returns the events in push order plus the new cursor to resume from.
    pub(crate) fn drain_since(&self, from: u64) -> (Vec<SpanEvent>, u64) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        if cap == 0 || head == from {
            return (Vec::new(), head);
        }
        let lo = from.max(head.saturating_sub(cap));
        let mut out = Vec::with_capacity((head - lo) as usize);
        for gen in lo..head {
            let slot = &self.slots[(gen % cap) as usize];
            let want = 2 * (gen + 1);
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != want {
                continue; // Overwritten by a later lap, or mid-write.
            }
            let mut words = [0u64; EVENT_WORDS];
            for (dst, src) in words.iter_mut().zip(&slot.words) {
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // Torn: the writer lapped us while copying.
            }
            if let Some(ev) = SpanEvent::decode(&words) {
                out.push(ev);
            }
        }
        (out, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Stage, TraceId};
    use std::sync::Arc;

    fn ev(image: u32) -> SpanEvent {
        SpanEvent {
            trace: TraceId { epoch: 1, image },
            device: 0,
            stage: Stage::Tx,
            t_start_us: u64::from(image),
            t_end_us: u64::from(image) + 10,
            bytes: 64,
            arg: 2,
        }
    }

    #[test]
    fn drains_in_push_order() {
        let ring = EventRing::new("t", 0, 8);
        for i in 0..5 {
            ring.push(&ev(i));
        }
        let (events, cursor) = ring.drain_since(0);
        assert_eq!(cursor, 5);
        assert_eq!(
            events.iter().map(|e| e.trace.image).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = EventRing::new("t", 0, 4);
        for i in 0..10 {
            ring.push(&ev(i));
        }
        let (events, cursor) = ring.drain_since(0);
        assert_eq!(cursor, 10);
        // Only the newest `capacity` events survive.
        assert_eq!(
            events.iter().map(|e| e.trace.image).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn incremental_drain_resumes_at_cursor() {
        let ring = EventRing::new("t", 0, 8);
        ring.push(&ev(0));
        ring.push(&ev(1));
        let (first, cursor) = ring.drain_since(0);
        assert_eq!(first.len(), 2);
        ring.push(&ev(2));
        let (second, cursor) = ring.drain_since(cursor);
        assert_eq!(
            second.iter().map(|e| e.trace.image).collect::<Vec<_>>(),
            [2]
        );
        let (third, _) = ring.drain_since(cursor);
        assert!(third.is_empty());
    }

    #[test]
    fn zero_capacity_ring_is_a_no_op() {
        let ring = EventRing::new("t", 0, 0);
        ring.push(&ev(0));
        let (events, cursor) = ring.drain_since(0);
        assert!(events.is_empty());
        assert_eq!(cursor, 0);
    }

    #[test]
    fn concurrent_drain_never_sees_torn_events() {
        // One writer hammers a tiny ring while a reader drains in a loop;
        // every event the reader accepts must be internally consistent
        // (t_end == t_start + 10 and bytes == 64 as `ev` constructs them).
        let ring = Arc::new(EventRing::new("t", 0, 4));
        let w = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for i in 0..20_000 {
                w.push(&ev(i));
            }
        });
        let mut cursor = 0;
        let mut seen = 0usize;
        loop {
            let done = writer.is_finished();
            let (events, next) = ring.drain_since(cursor);
            cursor = next;
            for e in events {
                assert_eq!(e.t_end_us, e.t_start_us + 10, "torn event escaped");
                assert_eq!(e.bytes, 64, "torn event escaped");
                seen += 1;
            }
            // One last drain after the writer exits catches the tail.
            if done {
                break;
            }
        }
        writer.join().unwrap();
        assert!(seen > 0, "reader must have accepted some events");
    }
}
