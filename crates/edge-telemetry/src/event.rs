//! The typed span event: what one ring-buffer slot records.
//!
//! Events are fixed-size — every field packs into six `u64` words
//! ([`SpanEvent::encode`] / [`SpanEvent::decode`]) so the ring can store
//! them in plain atomics and a reader can validate a racy read with a
//! seqlock instead of a lock.

/// The device id used on requester-side tracks (gateway, scatter, wait,
/// controller) — anything that is not one of the cluster's providers.
pub const REQUESTER: u32 = u32::MAX;

/// The image id of events that do not belong to one image (swap protocol
/// instants, batch-form markers, adaptation decisions).
pub const NO_IMAGE: u32 = u32::MAX;

/// The identity of one request's trace: the serving epoch it was admitted
/// under plus its image sequence number — exactly the pair every wire
/// [`Frame`](../edge_runtime/wire/struct.Frame.html) already carries, so
/// spans recorded on different devices correlate without extra plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId {
    /// The plan epoch the image was admitted under.
    pub epoch: u64,
    /// The image sequence number ([`NO_IMAGE`] for session-level events).
    pub image: u32,
}

impl TraceId {
    /// A trace id for session-level events that belong to no single image.
    pub fn session(epoch: u64) -> Self {
        Self {
            epoch,
            image: NO_IMAGE,
        }
    }
}

/// The lifecycle stage a span measures.  One ticket's full journey is
/// `GatewayQueue → BatchForm → Submit → Scatter → Recv → Compute →
/// Tx/Recv (per hop) → Merge → Head → Respond`, with `Wait` covering the
/// client side and the swap/adaptation stages annotating session-level
/// protocol events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Gateway queue residence: enqueue → dispatch.
    GatewayQueue,
    /// A dispatch wave was formed (instant; `arg` = wave size).
    BatchForm,
    /// One `Session::submit` call: credit wait plus scatter.
    Submit,
    /// Requester → device input rows (`arg` = destination device).
    Scatter,
    /// A frame taken off a device's transport inbox and decoded.
    Recv,
    /// One split-part kernel of layer-volume `.0` on a device.
    Compute(u16),
    /// The FC-head kernel on the head device.
    Head,
    /// One frame pushed onto the wire (`arg` = destination device, or
    /// [`REQUESTER`]).
    Tx,
    /// Band assembly: first fragment → band complete (`arg` = stage).
    Merge,
    /// A client blocked in `Session::wait` / `wait_timeout`.
    Wait,
    /// The gateway resolved a response (instant).
    Respond,
    /// `apply_plan` draining the in-flight window.
    Drain,
    /// Reconfigure: broadcast → every provider acked (requester side), or
    /// delta install (provider side; `bytes` = payload size).
    Reconfigure,
    /// A new epoch became the serving epoch (instant).
    EpochFlip,
    /// An adaptation decision (instant; `arg` = drift in basis points,
    /// `bytes` = window mean latency in microseconds).
    Adapt,
    /// A request was shed (instant; `arg` = priority class | reason << 16,
    /// reason 0 = deadline, 1 = overload).
    Shed,
    /// A fleet routing decision (instant; `arg` = replica id the image was
    /// routed to) — lets a Perfetto trace show which replica served each
    /// image.
    FleetRoute,
    /// A fleet scale-up: spawning a replica from the shared prepacked
    /// weights (`arg` = new replica id, `bytes` = resident weight bytes).
    FleetScaleUp,
    /// A fleet scale-down: drain + retire of one replica (`arg` = retired
    /// replica id).
    FleetScaleDown,
    /// A cluster coordinator establishing the TCP connection to one node
    /// (`arg` = device id).
    ClusterConnect,
    /// The bootstrap handshake with one node: plan + weight shard shipped,
    /// welcome received (`arg` = device id, `bytes` = handshake payload
    /// bytes).
    ClusterHandshake,
    /// A reconnect-with-backoff recovery of one node's link, ending with a
    /// re-handshake at the current epoch (`arg` = device id, `bytes` =
    /// connection attempts).
    ClusterReconnect,
}

impl Stage {
    /// The stage's name — also the span name in the Chrome trace export and
    /// the key [`crate::CriticalPath`] aggregates by ([`Stage::Compute`]
    /// collapses onto one name; the volume stays in the span's arg).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::GatewayQueue => "gateway-queue",
            Stage::BatchForm => "batch-form",
            Stage::Submit => "submit",
            Stage::Scatter => "scatter",
            Stage::Recv => "recv",
            Stage::Compute(_) => "compute",
            Stage::Head => "head",
            Stage::Tx => "tx",
            Stage::Merge => "merge",
            Stage::Wait => "wait",
            Stage::Respond => "respond",
            Stage::Drain => "swap-drain",
            Stage::Reconfigure => "reconfigure",
            Stage::EpochFlip => "epoch-flip",
            Stage::Adapt => "adapt",
            Stage::Shed => "shed",
            Stage::FleetRoute => "fleet.route",
            Stage::FleetScaleUp => "fleet.scale_up",
            Stage::FleetScaleDown => "fleet.scale_down",
            Stage::ClusterConnect => "cluster.connect",
            Stage::ClusterHandshake => "cluster.handshake",
            Stage::ClusterReconnect => "cluster.reconnect",
        }
    }

    /// Whether the stage is a point event (Chrome `ph:"i"`), not a span.
    pub fn is_instant(&self) -> bool {
        matches!(
            self,
            Stage::BatchForm
                | Stage::Respond
                | Stage::EpochFlip
                | Stage::Adapt
                | Stage::Shed
                | Stage::FleetRoute
        )
    }

    /// Whether the stage is part of the per-image execution pipeline — the
    /// candidate set [`crate::TraceReport::critical_path`] picks the
    /// dominant stage from.  Queueing (`GatewayQueue`) and client blocking
    /// (`Wait`, `Submit`) are excluded: they *wait on* the pipeline, so
    /// counting them would always name the symptom instead of the stage
    /// re-planning can actually move.
    pub fn is_pipeline(&self) -> bool {
        matches!(
            self,
            Stage::Scatter
                | Stage::Recv
                | Stage::Compute(_)
                | Stage::Head
                | Stage::Tx
                | Stage::Merge
        )
    }

    fn code(self) -> u16 {
        match self {
            Stage::GatewayQueue => 0,
            Stage::BatchForm => 1,
            Stage::Submit => 2,
            Stage::Scatter => 3,
            Stage::Recv => 4,
            Stage::Compute(_) => 5,
            Stage::Head => 6,
            Stage::Tx => 7,
            Stage::Merge => 8,
            Stage::Wait => 9,
            Stage::Respond => 10,
            Stage::Drain => 11,
            Stage::Reconfigure => 12,
            Stage::EpochFlip => 13,
            Stage::Adapt => 14,
            Stage::Shed => 15,
            Stage::FleetRoute => 16,
            Stage::FleetScaleUp => 17,
            Stage::FleetScaleDown => 18,
            Stage::ClusterConnect => 19,
            Stage::ClusterHandshake => 20,
            Stage::ClusterReconnect => 21,
        }
    }

    fn stage_arg(self) -> u16 {
        match self {
            Stage::Compute(v) => v,
            _ => 0,
        }
    }

    fn from_parts(code: u16, stage_arg: u16) -> Option<Self> {
        Some(match code {
            0 => Stage::GatewayQueue,
            1 => Stage::BatchForm,
            2 => Stage::Submit,
            3 => Stage::Scatter,
            4 => Stage::Recv,
            5 => Stage::Compute(stage_arg),
            6 => Stage::Head,
            7 => Stage::Tx,
            8 => Stage::Merge,
            9 => Stage::Wait,
            10 => Stage::Respond,
            11 => Stage::Drain,
            12 => Stage::Reconfigure,
            13 => Stage::EpochFlip,
            14 => Stage::Adapt,
            15 => Stage::Shed,
            16 => Stage::FleetRoute,
            17 => Stage::FleetScaleUp,
            18 => Stage::FleetScaleDown,
            19 => Stage::ClusterConnect,
            20 => Stage::ClusterHandshake,
            21 => Stage::ClusterReconnect,
            _ => return None,
        })
    }
}

/// Number of `u64` words one encoded event occupies in a ring slot.
pub(crate) const EVENT_WORDS: usize = 6;

/// One recorded span (or instant, when `t_start_us == t_end_us` and the
/// stage [`Stage::is_instant`]).  Timestamps are microseconds since the
/// owning [`crate::Telemetry`] hub's anchor, so spans from every thread and
/// device share one clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Which request this span belongs to.
    pub trace: TraceId,
    /// The device the work ran on ([`REQUESTER`] for requester-side work).
    pub device: u32,
    /// What the span measures.
    pub stage: Stage,
    /// Start, microseconds on the hub clock.
    pub t_start_us: u64,
    /// End, microseconds on the hub clock.
    pub t_end_us: u64,
    /// Payload bytes the stage moved (0 when not meaningful).
    pub bytes: u64,
    /// Stage-specific argument (destination device, wave size, drift, ...).
    pub arg: u32,
}

impl SpanEvent {
    /// Span duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.t_end_us.saturating_sub(self.t_start_us) as f64 / 1e3
    }

    pub(crate) fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            self.trace.epoch,
            u64::from(self.trace.image) | (u64::from(self.device) << 32),
            u64::from(self.stage.code())
                | (u64::from(self.stage.stage_arg()) << 16)
                | (u64::from(self.arg) << 32),
            self.t_start_us,
            self.t_end_us,
            self.bytes,
        ]
    }

    pub(crate) fn decode(words: &[u64; EVENT_WORDS]) -> Option<Self> {
        let stage = Stage::from_parts(
            (words[2] & 0xffff) as u16,
            ((words[2] >> 16) & 0xffff) as u16,
        )?;
        Some(Self {
            trace: TraceId {
                epoch: words[0],
                image: (words[1] & 0xffff_ffff) as u32,
            },
            device: (words[1] >> 32) as u32,
            stage,
            t_start_us: words[3],
            t_end_us: words[4],
            bytes: words[5],
            arg: (words[2] >> 32) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_words() {
        let stages = [
            Stage::GatewayQueue,
            Stage::BatchForm,
            Stage::Submit,
            Stage::Scatter,
            Stage::Recv,
            Stage::Compute(7),
            Stage::Head,
            Stage::Tx,
            Stage::Merge,
            Stage::Wait,
            Stage::Respond,
            Stage::Drain,
            Stage::Reconfigure,
            Stage::EpochFlip,
            Stage::Adapt,
            Stage::Shed,
            Stage::FleetRoute,
            Stage::FleetScaleUp,
            Stage::FleetScaleDown,
            Stage::ClusterConnect,
            Stage::ClusterHandshake,
            Stage::ClusterReconnect,
        ];
        for (i, stage) in stages.into_iter().enumerate() {
            let ev = SpanEvent {
                trace: TraceId {
                    epoch: 3,
                    image: 41 + i as u32,
                },
                device: (i as u32) % 4,
                stage,
                t_start_us: 1_000 + i as u64,
                t_end_us: 2_500 + i as u64,
                bytes: 4096,
                arg: 0xdead_beef,
            };
            assert_eq!(SpanEvent::decode(&ev.encode()), Some(ev));
        }
    }

    #[test]
    fn requester_sentinels_survive_packing() {
        let ev = SpanEvent {
            trace: TraceId::session(9),
            device: REQUESTER,
            stage: Stage::EpochFlip,
            t_start_us: 5,
            t_end_us: 5,
            bytes: 0,
            arg: 0,
        };
        let back = SpanEvent::decode(&ev.encode()).unwrap();
        assert_eq!(back.trace.image, NO_IMAGE);
        assert_eq!(back.device, REQUESTER);
        assert!(back.stage.is_instant());
    }

    #[test]
    fn unknown_stage_codes_decode_to_none() {
        let mut words = SpanEvent {
            trace: TraceId { epoch: 0, image: 0 },
            device: 0,
            stage: Stage::Tx,
            t_start_us: 0,
            t_end_us: 0,
            bytes: 0,
            arg: 0,
        }
        .encode();
        words[2] = 999; // No such stage code.
        assert_eq!(SpanEvent::decode(&words), None);
    }
}
