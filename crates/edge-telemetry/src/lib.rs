//! Low-overhead distributed tracing and metrics for the DistrEdge serving
//! path.
//!
//! The runtime's aggregate reports (`RuntimeReport`, `GatewayMetrics`) say
//! *how fast* serving was; this crate answers *where one image's
//! milliseconds went* — gateway queue → batch form → submit → scatter →
//! per-band compute → wire tx/rx → merge → head → response — across every
//! device thread, on one shared clock.
//!
//! # Architecture
//!
//! - A [`Telemetry`] hub owns the clock anchor, the enabled flag, the
//!   per-thread event rings, and the metrics registry.  It is `Clone` and
//!   cheap to share; [`Telemetry::disabled`] is the no-op variant the
//!   untraced constructors use (capacity-0 rings, nothing allocated,
//!   nothing recorded).
//! - Each recording thread asks the hub for a [`Recorder`] — its own
//!   fixed-capacity, overwrite-oldest, lock-free ring.  Recording a span is
//!   a handful of relaxed atomic stores; when the hub is disabled it is one
//!   relaxed load.
//! - Spans are typed [`SpanEvent`]s keyed by [`TraceId`] `(epoch, image)` —
//!   the same pair every wire frame already carries, so spans recorded on
//!   different devices correlate with no extra plumbing.
//! - A [`Collector`] (or one-shot [`Telemetry::collect`]) drains the rings
//!   into a [`TraceReport`], which exports Chrome trace-event JSON
//!   ([`TraceReport::to_chrome_trace`], loadable in
//!   [Perfetto](https://ui.perfetto.dev)) and per-image critical-path
//!   breakdowns ([`TraceReport::critical_path`]).
//! - Subsystems register named [`Counter`]s / [`Gauge`]s on the hub
//!   ([`Telemetry::counter`] / [`Telemetry::gauge`]); one
//!   [`Telemetry::metrics`] call snapshots queue depths, shed counts,
//!   epoch flips, reconfigure bytes, ... uniformly.
//!
//! # Example
//!
//! ```
//! use edge_telemetry::{Stage, Telemetry, TraceId};
//!
//! let telemetry = Telemetry::new();
//! let mut rec = telemetry.recorder("worker", 0);
//!
//! let trace = TraceId { epoch: 0, image: 42 };
//! let t0 = rec.start().unwrap();
//! // ... do the work being measured ...
//! rec.span(Stage::Compute(3), trace, t0, 0, 0);
//! telemetry.counter("worker.images").inc();
//!
//! let report = telemetry.collect();
//! assert_eq!(report.span_count(), 1);
//! let path = report.critical_path(42).unwrap();
//! assert_eq!(path.dominant, "compute");
//! ```

mod event;
mod registry;
mod report;
mod ring;

pub use event::{SpanEvent, Stage, TraceId, NO_IMAGE, REQUESTER};
pub use registry::{Counter, Gauge, Metric, MetricKind};
pub use report::{CriticalPath, StageCost, TraceReport, TrackTrace};

use registry::MetricCell;
use ring::EventRing;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

struct HubShared {
    enabled: AtomicBool,
    capacity: usize,
    anchor: Instant,
    rings: Mutex<Vec<Arc<EventRing>>>,
    metrics: Mutex<BTreeMap<String, MetricCell>>,
}

/// The tracing hub: clock anchor, enabled flag, ring registry, metrics
/// registry.  Clones share the same hub.
#[derive(Clone)]
pub struct Telemetry {
    shared: Arc<HubShared>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An enabled hub with the default per-thread ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled hub whose rings hold `capacity` events each
    /// (overwrite-oldest beyond that).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            shared: Arc::new(HubShared {
                enabled: AtomicBool::new(true),
                capacity,
                anchor: Instant::now(),
                rings: Mutex::new(Vec::new()),
                metrics: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The no-op hub: capacity-0 rings (no slot storage), recording
    /// disabled.  This is what the untraced `deploy`/`over` constructors
    /// pass, so the instrumented code paths cost one relaxed atomic load.
    pub fn disabled() -> Self {
        let hub = Self::with_capacity(0);
        hub.set_enabled(false);
        hub
    }

    /// Toggle recording at runtime.  Metrics cells keep updating either
    /// way (they are plain shared atomics owned by their subsystems).
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether span recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed) && self.shared.capacity > 0
    }

    /// `Some(now)` when enabled, `None` when disabled — the guard
    /// instrumented code uses to skip timestamping entirely while tracing
    /// is off (mirrors [`Recorder::start`]).
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Microseconds from the hub's clock anchor to `t`.
    pub fn stamp(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.shared.anchor).as_micros() as u64
    }

    /// Register a new ring and hand its single-writer [`Recorder`] to the
    /// calling thread.  `track` names the Chrome-trace thread track;
    /// `device` tags every event ([`REQUESTER`] for requester-side work).
    pub fn recorder(&self, track: &str, device: u32) -> Recorder {
        let ring = Arc::new(EventRing::new(track, device, self.shared.capacity));
        self.shared.rings.lock().unwrap().push(Arc::clone(&ring));
        Recorder {
            shared: Arc::clone(&self.shared),
            ring,
        }
    }

    /// The named counter, registering it on first use.  If the name is
    /// already registered as a gauge, a detached cell is returned (recorded
    /// nowhere) rather than clobbering the registry.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.shared.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Counter(Counter::detached()))
        {
            MetricCell::Counter(c) => c.clone(),
            MetricCell::Gauge(_) => Counter::detached(),
        }
    }

    /// The named gauge, registering it on first use.  If the name is
    /// already registered as a counter, a detached cell is returned.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.shared.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricCell::Gauge(Gauge::detached()))
        {
            MetricCell::Gauge(g) => g.clone(),
            MetricCell::Counter(_) => Gauge::detached(),
        }
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn metrics(&self) -> Vec<Metric> {
        let metrics = self.shared.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(name, cell)| cell.snapshot(name))
            .collect()
    }

    /// One-shot drain of every ring from the beginning of retained history.
    /// For incremental draining keep a [`Collector`].
    pub fn collect(&self) -> TraceReport {
        Collector::new(self).collect()
    }
}

/// A single thread's span writer.  Requires `&mut self` to record, which is
/// what makes the underlying ring single-producer.
pub struct Recorder {
    shared: Arc<HubShared>,
    ring: Arc<EventRing>,
}

impl Recorder {
    /// Whether recording would do anything right now.  Instrumented code
    /// uses this to skip timestamping entirely on the disabled path.
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed) && self.shared.capacity > 0
    }

    /// The device this recorder tags events with.
    pub fn device(&self) -> u32 {
        self.ring.device()
    }

    /// `Some(now)` when enabled, `None` when disabled — so the common
    /// pattern `let t0 = rec.start();` costs one relaxed load when tracing
    /// is off.
    pub fn start(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record a span that started at `t0` and ends now.
    pub fn span(&mut self, stage: Stage, trace: TraceId, t0: Instant, bytes: u64, arg: u32) {
        if !self.enabled() {
            return;
        }
        self.span_between(stage, trace, t0, Instant::now(), bytes, arg);
    }

    /// Record a span with both endpoints supplied.
    pub fn span_between(
        &mut self,
        stage: Stage,
        trace: TraceId,
        t0: Instant,
        t1: Instant,
        bytes: u64,
        arg: u32,
    ) {
        if !self.enabled() {
            return;
        }
        let t_start_us = stamp(&self.shared, t0);
        let t_end_us = stamp(&self.shared, t1).max(t_start_us);
        self.ring.push(&SpanEvent {
            trace,
            device: self.ring.device(),
            stage,
            t_start_us,
            t_end_us,
            bytes,
            arg,
        });
    }

    /// Record a point event at the current time.
    pub fn instant(&mut self, stage: Stage, trace: TraceId, bytes: u64, arg: u32) {
        if !self.enabled() {
            return;
        }
        let now = Instant::now();
        self.span_between(stage, trace, now, now, bytes, arg);
    }
}

fn stamp(shared: &HubShared, t: Instant) -> u64 {
    t.saturating_duration_since(shared.anchor).as_micros() as u64
}

/// Incremental ring drainer: remembers a per-ring cursor so repeated
/// [`Collector::collect`] calls return only new events.  Rings registered
/// after the collector was created are picked up automatically.
pub struct Collector {
    shared: Arc<HubShared>,
    cursors: Vec<u64>,
}

impl Collector {
    /// A collector over `telemetry`'s rings, starting from the beginning
    /// of retained history.
    pub fn new(telemetry: &Telemetry) -> Self {
        Self {
            shared: Arc::clone(&telemetry.shared),
            cursors: Vec::new(),
        }
    }

    /// Drain every ring past this collector's cursors.
    pub fn collect(&mut self) -> TraceReport {
        let rings: Vec<Arc<EventRing>> = self.shared.rings.lock().unwrap().clone();
        self.cursors.resize(rings.len(), 0);
        let mut tracks = Vec::with_capacity(rings.len());
        for (ring, cursor) in rings.iter().zip(self.cursors.iter_mut()) {
            let (events, next) = ring.drain_since(*cursor);
            *cursor = next;
            tracks.push(TrackTrace {
                name: ring.name().to_string(),
                device: ring.device(),
                events,
            });
        }
        TraceReport { tracks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_records_nothing_and_allocates_no_slots() {
        let hub = Telemetry::disabled();
        let mut rec = hub.recorder("t", 0);
        assert!(!rec.enabled());
        assert!(rec.start().is_none());
        let now = Instant::now();
        rec.span(Stage::Tx, TraceId { epoch: 0, image: 0 }, now, 10, 0);
        rec.instant(Stage::Shed, TraceId::session(0), 0, 0);
        assert_eq!(hub.collect().span_count(), 0);
    }

    #[test]
    fn runtime_toggle_gates_recording() {
        let hub = Telemetry::new();
        let mut rec = hub.recorder("t", 0);
        hub.set_enabled(false);
        rec.instant(Stage::BatchForm, TraceId::session(0), 0, 4);
        hub.set_enabled(true);
        rec.instant(Stage::BatchForm, TraceId::session(0), 0, 4);
        assert_eq!(hub.collect().span_count(), 1);
    }

    #[test]
    fn incremental_collector_returns_only_new_events() {
        let hub = Telemetry::new();
        let mut rec = hub.recorder("t", 3);
        let mut collector = Collector::new(&hub);
        rec.instant(Stage::EpochFlip, TraceId::session(1), 0, 0);
        assert_eq!(collector.collect().span_count(), 1);
        assert_eq!(collector.collect().span_count(), 0);
        // A ring registered after the collector exists is still drained.
        let mut late = hub.recorder("late", 4);
        late.instant(Stage::EpochFlip, TraceId::session(2), 0, 0);
        rec.instant(Stage::EpochFlip, TraceId::session(2), 0, 0);
        let report = collector.collect();
        assert_eq!(report.span_count(), 2);
        assert_eq!(report.tracks.len(), 2);
    }

    #[test]
    fn metrics_registry_unifies_names() {
        let hub = Telemetry::new();
        hub.counter("session.images_completed").add(5);
        hub.counter("session.images_completed").add(2);
        hub.gauge("gateway.queue_depth").set(9);
        let metrics = hub.metrics();
        assert_eq!(metrics.len(), 2);
        let completed = metrics
            .iter()
            .find(|m| m.name == "session.images_completed")
            .unwrap();
        assert_eq!(completed.value, 7.0);
        assert_eq!(completed.kind, MetricKind::Counter);
        let depth = metrics
            .iter()
            .find(|m| m.name == "gateway.queue_depth")
            .unwrap();
        assert_eq!(depth.value, 9.0);
        assert_eq!(depth.kind, MetricKind::Gauge);
        // Kind mismatch yields a detached cell, not a clobbered registry.
        hub.gauge("session.images_completed").set(-1);
        assert_eq!(
            hub.metrics()
                .iter()
                .find(|m| m.name == "session.images_completed")
                .unwrap()
                .value,
            7.0
        );
    }

    #[test]
    fn spans_share_the_hub_clock() {
        let hub = Telemetry::new();
        let mut a = hub.recorder("a", 0);
        let mut b = hub.recorder("b", 1);
        let t0 = a.start().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let trace = TraceId { epoch: 0, image: 1 };
        a.span(Stage::Compute(0), trace, t0, 0, 0);
        b.instant(Stage::Respond, trace, 0, 0);
        let report = hub.collect();
        let compute = &report.tracks[0].events[0];
        let respond = &report.tracks[1].events[0];
        assert!(compute.t_end_us >= compute.t_start_us + 1_000);
        // Respond was recorded after the compute span ended, on one clock.
        assert!(respond.t_start_us >= compute.t_end_us);
    }
}
