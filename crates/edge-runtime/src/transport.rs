//! Transports: how frames move between the requester and the providers.
//!
//! The runtime only ever sees [`Transport`]: a fabric that opens directed
//! [`FrameTx`] handles and hands out per-endpoint inboxes of encoded frames.
//! Two fabrics are provided — an in-process channel fabric (the default,
//! zero-copy apart from encode/decode) and a loopback-TCP fabric that
//! pushes every frame through real sockets — plus [`ShapedTransport`], a
//! decorator that paces sends with a token-bucket driven by `netsim`
//! bandwidth traces so a laptop can reproduce the testbed's shaped WiFi.

use crate::wire::{check_frame_len, Frame};
use crate::{Result, RuntimeError, TransportError, TransportErrorKind};
use edgesim::{Cluster, Endpoint};
use netsim::BandwidthTrace;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sending half of a directed link.  Implementations serialize the frame
/// onto their medium; the returned value is the encoded byte count.
pub trait FrameTx: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &Frame) -> Result<usize>;
}

/// A fabric connecting the requester and the providers.
pub trait Transport {
    /// Opens the directed link `from -> to`.
    fn open(&mut self, from: Endpoint, to: Endpoint) -> Result<Box<dyn FrameTx>>;

    /// Takes the inbox of `at`: every frame any peer sends to `at`, encoded.
    /// Each endpoint's inbox can be taken once.
    fn inbox(&mut self, at: Endpoint) -> Result<Receiver<Vec<u8>>>;
}

// ---------------------------------------------------------------------------
// In-process channels
// ---------------------------------------------------------------------------

/// The default fabric: one mpsc channel per endpoint, frames byte-encoded so
/// the wire format is exercised even in process.
pub struct ChannelTransport {
    senders: HashMap<Endpoint, Sender<Vec<u8>>>,
    receivers: HashMap<Endpoint, Receiver<Vec<u8>>>,
}

impl ChannelTransport {
    /// A fabric for `num_devices` providers plus the requester.
    pub fn new(num_devices: usize) -> Self {
        let mut senders = HashMap::new();
        let mut receivers = HashMap::new();
        let mut add = |ep: Endpoint| {
            let (tx, rx) = channel();
            senders.insert(ep, tx);
            receivers.insert(ep, rx);
        };
        add(Endpoint::Requester);
        for d in 0..num_devices {
            add(Endpoint::Device(d));
        }
        Self { senders, receivers }
    }
}

struct ChannelTx {
    tx: Sender<Vec<u8>>,
}

impl FrameTx for ChannelTx {
    fn send(&mut self, frame: &Frame) -> Result<usize> {
        let bytes = frame.encode();
        let n = bytes.len();
        self.tx
            .send(bytes)
            .map_err(|_| RuntimeError::transport_disconnected("receiver endpoint is gone"))?;
        Ok(n)
    }
}

impl Transport for ChannelTransport {
    fn open(&mut self, _from: Endpoint, to: Endpoint) -> Result<Box<dyn FrameTx>> {
        let tx = self
            .senders
            .get(&to)
            .ok_or_else(|| {
                RuntimeError::Transport(
                    TransportError::new(TransportErrorKind::Config, "unknown endpoint").at(to),
                )
            })?
            .clone();
        Ok(Box::new(ChannelTx { tx }))
    }

    fn inbox(&mut self, at: Endpoint) -> Result<Receiver<Vec<u8>>> {
        self.receivers.remove(&at).ok_or_else(|| {
            RuntimeError::Transport(
                TransportError::new(TransportErrorKind::Config, "inbox already taken").at(at),
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Loopback TCP
// ---------------------------------------------------------------------------

/// A fabric where every directed link is a real `TcpStream` over loopback:
/// one listener per endpoint, one connection per `open`, and a reader thread
/// per connection pumping length-prefixed frames into the endpoint's inbox.
pub struct TcpTransport {
    addrs: HashMap<Endpoint, SocketAddr>,
    receivers: HashMap<Endpoint, Receiver<Vec<u8>>>,
    shutdown: Arc<AtomicBool>,
    accept_threads: Vec<JoinHandle<()>>,
}

impl TcpTransport {
    /// Binds loopback listeners for `num_devices` providers plus the
    /// requester and starts their accept loops.
    pub fn new(num_devices: usize) -> Result<Self> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut addrs = HashMap::new();
        let mut receivers = HashMap::new();
        let mut accept_threads = Vec::new();
        let mut endpoints = vec![Endpoint::Requester];
        endpoints.extend((0..num_devices).map(Endpoint::Device));
        for ep in endpoints {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| RuntimeError::transport_io(format!("bind failed: {e}")))?;
            let addr = listener
                .local_addr()
                .map_err(|e| RuntimeError::transport_io(format!("local_addr failed: {e}")))?;
            let (tx, rx) = channel::<Vec<u8>>();
            addrs.insert(ep, addr);
            receivers.insert(ep, rx);
            let flag = Arc::clone(&shutdown);
            accept_threads.push(std::thread::spawn(move || {
                accept_loop(listener, tx, flag);
            }));
        }
        Ok(Self {
            addrs,
            receivers,
            shutdown,
            accept_threads,
        })
    }
}

fn accept_loop(listener: TcpListener, inbox: Sender<Vec<u8>>, shutdown: Arc<AtomicBool>) {
    let mut readers = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { break };
        let inbox = inbox.clone();
        readers.push(std::thread::spawn(move || {
            // Pump frames until the peer closes its half of the connection.
            // Bytes are forwarded verbatim — decoding (and validation)
            // happens once, in the endpoint's receive thread.
            while let Ok(Some(bytes)) = read_raw_frame(&mut stream) {
                if inbox.send(bytes).is_err() {
                    break;
                }
            }
        }));
    }
    for r in readers {
        let _ = r.join();
    }
}

/// Reads one length-prefixed frame as raw bytes (prefix included), without
/// decoding the payload.  Returns `None` on clean EOF at a frame boundary.
/// The length prefix is capped at [`crate::MAX_FRAME_LEN`] before any
/// allocation happens, so a corrupt header cannot balloon memory.
/// Fills `len_buf` from the stream: `Ok(false)` on clean EOF before any
/// byte, an `Io` transport error on EOF *inside* the prefix (a mid-frame
/// disconnect, not a frame boundary).
fn read_len_prefix(stream: &mut impl std::io::Read, len_buf: &mut [u8; 4]) -> Result<bool> {
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(RuntimeError::transport_io(format!(
                        "EOF inside length prefix after {got} bytes"
                    )))
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RuntimeError::transport_io(format!("read failed: {e}"))),
        }
    }
    Ok(true)
}

pub fn read_raw_frame(stream: &mut impl std::io::Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !read_len_prefix(stream, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    check_frame_len(len)?;
    let mut bytes = Vec::with_capacity(4 + len);
    bytes.extend_from_slice(&len_buf);
    bytes.resize(4 + len, 0);
    stream
        .read_exact(&mut bytes[4..])
        .map_err(|e| RuntimeError::transport_io(format!("truncated frame: {e}")))?;
    Ok(Some(bytes))
}

struct TcpTx {
    stream: TcpStream,
}

impl FrameTx for TcpTx {
    fn send(&mut self, frame: &Frame) -> Result<usize> {
        let bytes = frame.encode();
        self.stream
            .write_all(&bytes)
            .map_err(|e| RuntimeError::transport_io(format!("tcp write failed: {e}")))?;
        Ok(bytes.len())
    }
}

impl Transport for TcpTransport {
    fn open(&mut self, _from: Endpoint, to: Endpoint) -> Result<Box<dyn FrameTx>> {
        let addr = self.addrs.get(&to).ok_or_else(|| {
            RuntimeError::Transport(
                TransportError::new(TransportErrorKind::Config, "unknown endpoint").at(to),
            )
        })?;
        let stream = TcpStream::connect(addr).map_err(|e| {
            RuntimeError::Transport(
                TransportError::new(
                    TransportErrorKind::Disconnected,
                    format!("connect failed: {e}"),
                )
                .at(to),
            )
        })?;
        stream
            .set_nodelay(true)
            .map_err(|e| RuntimeError::transport_io(format!("set_nodelay failed: {e}")))?;
        Ok(Box::new(TcpTx { stream }))
    }

    fn inbox(&mut self, at: Endpoint) -> Result<Receiver<Vec<u8>>> {
        self.receivers.remove(&at).ok_or_else(|| {
            RuntimeError::Transport(
                TransportError::new(TransportErrorKind::Config, "inbox already taken").at(at),
            )
        })
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake each accept loop with a throw-away connection.
        for addr in self.addrs.values() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Bandwidth shaping
// ---------------------------------------------------------------------------

/// The shared shaping state of one device's radio: its bandwidth trace, its
/// per-frame I/O overhead, and the time its air is busy until.  Every link
/// touching the device holds the same bucket, so concurrent flows through
/// one device serialise on it — the simulator's per-device contention model.
struct DeviceBucket {
    trace: BandwidthTrace,
    io_overhead_ms: f64,
    busy_until_ms: Mutex<f64>,
}

/// Token-bucket pacing for one directed link: the sender blocks until the
/// frame would have finished its wire time under the link's trace, so the
/// receive side observes shaped-WiFi arrival times.  The buckets are shared
/// per *device*, not per directed pair: a frame reserves serial air time on
/// every device it touches, so simultaneous flows through one device
/// contend instead of each enjoying the full link rate.
struct ShapedTx {
    inner: Box<dyn FrameTx>,
    /// Buckets of the devices this link touches, sorted by device index so
    /// concurrent sends lock them in one global order.
    buckets: Vec<Arc<DeviceBucket>>,
    started: Instant,
}

impl FrameTx for ShapedTx {
    fn send(&mut self, frame: &Frame) -> Result<usize> {
        let bytes = frame.encoded_len() as f64;
        let now_ms = self.started.elapsed().as_secs_f64() * 1e3;
        // Reserve the air of every touched device atomically: lock all
        // buckets (in device order — every link locks in the same order, so
        // two-bucket reservations cannot deadlock), find the first instant
        // all of them are free, and push each device's busy horizon past the
        // frame's wire time.
        let free_at = {
            let mut slots: Vec<MutexGuard<'_, f64>> = self
                .buckets
                .iter()
                .map(|b| b.busy_until_ms.lock().expect("shaping bucket poisoned"))
                .collect();
            let begin = slots.iter().map(|s| **s).fold(now_ms, f64::max);
            let mbps = self
                .buckets
                .iter()
                .map(|b| b.trace.bandwidth_at(begin))
                .fold(f64::INFINITY, f64::min)
                .max(0.01);
            let io_overhead_ms = self
                .buckets
                .iter()
                .map(|b| b.io_overhead_ms)
                .fold(0.0, f64::max);
            let wire_ms = bytes / netsim::mbps_to_bytes_per_ms(mbps) + io_overhead_ms;
            for slot in &mut slots {
                **slot = begin + wire_ms;
            }
            begin + wire_ms
        };
        let sleep_ms = free_at - now_ms;
        if sleep_ms > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(sleep_ms / 1e3));
        }
        self.inner.send(frame)
    }
}

/// Decorates another fabric with token-bucket shaping derived from a
/// cluster's `netsim` traces.
///
/// A device↔device link is paced by the slower of the two devices' traces at
/// the moment the frame departs — the same "bounded by the slower link"
/// model the simulator uses.  The bucket state is shared per *device*: all
/// flows through one device's WiFi contend for its serial air time
/// (fan-in/fan-out heavy plans pay for it), matching the simulator's
/// per-link serialisation.
pub struct ShapedTransport<T: Transport> {
    inner: T,
    buckets: Vec<Arc<DeviceBucket>>,
    started: Instant,
}

impl<T: Transport> ShapedTransport<T> {
    /// Wraps `inner`, pacing each link with the matching device trace of
    /// `cluster`.
    pub fn new(inner: T, cluster: &Cluster) -> Self {
        let buckets = (0..cluster.len())
            .map(|d| {
                let link = cluster.link(d);
                Arc::new(DeviceBucket {
                    trace: link.trace().clone(),
                    io_overhead_ms: link.io_overhead_ms(),
                    busy_until_ms: Mutex::new(0.0),
                })
            })
            .collect();
        Self {
            inner,
            buckets,
            started: Instant::now(),
        }
    }
}

impl<T: Transport> Transport for ShapedTransport<T> {
    fn open(&mut self, from: Endpoint, to: Endpoint) -> Result<Box<dyn FrameTx>> {
        let inner = self.inner.open(from, to)?;
        let mut devices: Vec<usize> = [from, to]
            .iter()
            .filter_map(|ep| match ep {
                Endpoint::Device(d) => Some(*d),
                Endpoint::Requester => None,
            })
            .collect();
        devices.sort_unstable();
        devices.dedup();
        if devices.is_empty() {
            // Requester-to-requester never happens; fall through unshaped.
            return Ok(inner);
        }
        let buckets = devices
            .into_iter()
            .map(|d| Arc::clone(&self.buckets[d]))
            .collect();
        Ok(Box::new(ShapedTx {
            inner,
            buckets,
            started: self.started,
        }))
    }

    fn inbox(&mut self, at: Endpoint) -> Result<Receiver<Vec<u8>>> {
        self.inner.inbox(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameKind;
    use tensor::Tensor;

    fn frame(image: u32) -> Frame {
        Frame::data(
            FrameKind::Rows,
            0,
            image,
            0,
            0,
            Tensor::filled([1, 2, 3], image as f32),
        )
    }

    #[test]
    fn channel_fabric_delivers_in_order() {
        let mut fabric = ChannelTransport::new(2);
        let mut tx = fabric
            .open(Endpoint::Device(0), Endpoint::Device(1))
            .unwrap();
        let rx = fabric.inbox(Endpoint::Device(1)).unwrap();
        tx.send(&frame(1)).unwrap();
        tx.send(&frame(2)).unwrap();
        let a = Frame::decode(&rx.recv().unwrap()).unwrap();
        let b = Frame::decode(&rx.recv().unwrap()).unwrap();
        assert_eq!(a.image, 1);
        assert_eq!(b.image, 2);
    }

    #[test]
    fn channel_inbox_taken_once() {
        let mut fabric = ChannelTransport::new(1);
        fabric.inbox(Endpoint::Device(0)).unwrap();
        assert!(fabric.inbox(Endpoint::Device(0)).is_err());
    }

    #[test]
    fn tcp_fabric_roundtrips_frames() {
        let mut fabric = TcpTransport::new(2).unwrap();
        let rx = fabric.inbox(Endpoint::Device(1)).unwrap();
        let mut tx = fabric
            .open(Endpoint::Device(0), Endpoint::Device(1))
            .unwrap();
        tx.send(&frame(7)).unwrap();
        let got = Frame::decode(&rx.recv_timeout(Duration::from_secs(5)).unwrap()).unwrap();
        assert_eq!(got, frame(7));
        let mut tx2 = fabric
            .open(Endpoint::Requester, Endpoint::Device(1))
            .unwrap();
        tx2.send(&Frame::halt()).unwrap();
        let halt = Frame::decode(&rx.recv_timeout(Duration::from_secs(5)).unwrap()).unwrap();
        assert_eq!(halt.kind, FrameKind::Halt);
    }

    #[test]
    fn shaped_link_paces_sends() {
        use device_profile::{DeviceSpec, DeviceType};
        use netsim::LinkConfig;
        // 8 Mbps => 1000 bytes/ms; a ~100 byte frame plus 2 ms I/O overhead
        // should take ~2.1 ms; ten of them ~21 ms.
        let cluster = Cluster::uniform(
            vec![
                DeviceSpec::new("a", DeviceType::Xavier),
                DeviceSpec::new("b", DeviceType::Xavier),
            ],
            LinkConfig::constant(8.0),
        );
        let mut fabric = ShapedTransport::new(ChannelTransport::new(2), &cluster);
        let rx = fabric.inbox(Endpoint::Device(1)).unwrap();
        let mut tx = fabric
            .open(Endpoint::Device(0), Endpoint::Device(1))
            .unwrap();
        let t0 = Instant::now();
        for i in 0..10 {
            tx.send(&frame(i)).unwrap();
        }
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(elapsed_ms >= 15.0, "shaping too weak: {elapsed_ms:.2} ms");
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn concurrent_flows_through_one_device_contend() {
        use device_profile::{DeviceSpec, DeviceType};
        use netsim::LinkConfig;
        // Device 0 fans out to devices 1 and 2 simultaneously.  Both flows
        // share device 0's bucket, so the two senders together must take
        // about as long as all frames sent serially — not half of it.
        let cluster = Cluster::uniform(
            vec![
                DeviceSpec::new("a", DeviceType::Xavier),
                DeviceSpec::new("b", DeviceType::Xavier),
                DeviceSpec::new("c", DeviceType::Xavier),
            ],
            LinkConfig::constant(8.0), // 1000 bytes/ms
        );
        const FRAMES: u32 = 8;
        // ~4 KB per frame gives each send ~4 ms of shaped wire time, so the
        // measured ratio is dominated by pacing rather than by scheduler
        // noise when the whole workspace's test binaries run in parallel.
        let big_frame = |image: u32| {
            Frame::data(
                FrameKind::Rows,
                0,
                image,
                0,
                0,
                Tensor::filled([4, 16, 16], image as f32),
            )
        };
        let mut fabric = ShapedTransport::new(ChannelTransport::new(3), &cluster);
        let rx1 = fabric.inbox(Endpoint::Device(1)).unwrap();
        let rx2 = fabric.inbox(Endpoint::Device(2)).unwrap();
        let mut tx1 = fabric
            .open(Endpoint::Device(0), Endpoint::Device(1))
            .unwrap();
        let mut tx2 = fabric
            .open(Endpoint::Device(0), Endpoint::Device(2))
            .unwrap();

        // Serial reference: one flow alone.
        let t0 = Instant::now();
        for i in 0..FRAMES {
            tx1.send(&big_frame(i)).unwrap();
        }
        let single_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Contended: both flows at once, same frame count each.
        let t1 = Instant::now();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..FRAMES {
                    tx1.send(&big_frame(i)).unwrap();
                }
            });
            scope.spawn(move || {
                for i in 0..FRAMES {
                    tx2.send(&big_frame(i)).unwrap();
                }
            });
        });
        let contended_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(
            contended_ms >= 1.6 * single_ms,
            "flows through one device must serialise: \
             {contended_ms:.2} ms for 2x vs {single_ms:.2} ms for 1x"
        );
        for _ in 0..2 * FRAMES {
            rx1.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        for _ in 0..FRAMES {
            rx2.recv_timeout(Duration::from_secs(5)).unwrap();
        }
    }
}
