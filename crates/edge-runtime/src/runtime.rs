//! The requester driver: streams images through the provider workers and
//! assembles the measurement.
//!
//! The requester plays the phone of the paper's testbed: it scatters each
//! image's input rows to the providers that need them, keeps up to
//! `max_in_flight` images in the pipeline, stitches result rows back
//! together, and timestamps everything.

use crate::provider::{spawn_provider, Assembly, ProviderHandle, Shared};
use crate::report::{DeviceMetrics, RuntimeReport};
use crate::routing::RouteTable;
use crate::transport::{ChannelTransport, FrameTx, Transport};
use crate::wire::{Frame, FrameKind};
use crate::{Result, RuntimeError};
use cnn_model::exec::ModelWeights;
use cnn_model::Model;
use edgesim::{Endpoint, ExecutionPlan, SimReport};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tensor::slice::slice_rows;
use tensor::Tensor;

/// Options of a runtime execution.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeOptions {
    /// Maximum images in flight at once.  `1` reproduces the paper's (and
    /// the simulator's) closed loop — the requester waits for each result
    /// before sending the next image; larger values pipeline.
    pub max_in_flight: usize,
    /// How long the requester waits for any single result frame before
    /// declaring the cluster wedged.
    pub recv_timeout: Duration,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            max_in_flight: 4,
            recv_timeout: Duration::from_secs(120),
        }
    }
}

/// What an execution returns: the measurement and the per-image outputs.
pub struct RuntimeOutcome {
    /// Measured metrics.
    pub report: RuntimeReport,
    /// Final output tensor of every image, in stream order: the FC-head
    /// output for models with a head, the stitched last-volume feature map
    /// otherwise.
    pub outputs: Vec<Tensor>,
}

/// Executes `plan` over the in-process channel fabric.
pub fn execute_in_process(
    model: &Model,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    images: &[Tensor],
    options: &RuntimeOptions,
) -> Result<RuntimeOutcome> {
    let n = plan.volumes.first().map(|v| v.parts.len()).unwrap_or(0);
    let mut transport = ChannelTransport::new(n);
    execute(model, plan, weights, images, &mut transport, options)
}

/// Executes `plan` on concurrent provider workers over `transport`.
pub fn execute(
    model: &Model,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    images: &[Tensor],
    transport: &mut dyn Transport,
    options: &RuntimeOptions,
) -> Result<RuntimeOutcome> {
    if images.is_empty() {
        return Err(RuntimeError::Execution("no images to stream".into()));
    }
    if options.max_in_flight == 0 {
        return Err(RuntimeError::Execution(
            "max_in_flight must be at least 1".into(),
        ));
    }
    let input_shape = model.input();
    for (i, img) in images.iter().enumerate() {
        if img.shape() != input_shape.as_array() {
            return Err(RuntimeError::Execution(format!(
                "image {i} has shape {:?}, model expects {:?}",
                img.shape(),
                input_shape.as_array()
            )));
        }
    }

    let route = RouteTable::new(model, plan)?;
    let n = route.num_devices;
    let shared = Arc::new(Shared {
        model: model.clone(),
        weights: weights.clone(),
        route: route.clone(),
    });

    // Wire up the fabric: requester inbox first, then one worker per device
    // with links to every peer and back to the requester.
    let requester_inbox = transport.inbox(Endpoint::Requester)?;
    let mut handles: Vec<ProviderHandle> = Vec::with_capacity(n);
    for d in 0..n {
        let inbox = transport.inbox(Endpoint::Device(d))?;
        let mut txs: HashMap<Endpoint, Box<dyn FrameTx>> = HashMap::new();
        for peer in 0..n {
            if peer != d {
                txs.insert(
                    Endpoint::Device(peer),
                    transport.open(Endpoint::Device(d), Endpoint::Device(peer))?,
                );
            }
        }
        txs.insert(
            Endpoint::Requester,
            transport.open(Endpoint::Device(d), Endpoint::Requester)?,
        );
        handles.push(spawn_provider(d, Arc::clone(&shared), inbox, txs));
    }
    let mut requester_txs: Vec<Box<dyn FrameTx>> = (0..n)
        .map(|d| transport.open(Endpoint::Requester, Endpoint::Device(d)))
        .collect::<Result<_>>()?;

    // Stream.
    let scatter = route.scatter_targets();
    let total = images.len();
    let finish_stage = route.finish_stage();
    let (result_c, result_w) = route.stage_geom(finish_stage as usize);
    let has_head = route.head_device.is_some();

    let mut scatter_ms = vec![0.0f64; n];
    let mut latencies_ms = vec![0.0f64; total];
    let mut starts: Vec<Option<Instant>> = vec![None; total];
    let mut outputs: Vec<Option<Tensor>> = (0..total).map(|_| None).collect();
    let mut result_asms: HashMap<u32, Assembly> = HashMap::new();
    let mut sent = 0usize;
    let mut completed = 0usize;
    let mut max_in_flight_observed = 0usize;
    let t_start = Instant::now();

    // The stream loop runs inside a closure so the shutdown path below
    // (halt + join) executes even when streaming fails — otherwise provider
    // threads leak mid-error and a TcpTransport drop would deadlock on its
    // reader threads.
    let stream_result = (|| -> Result<()> {
        while completed < total {
            // Fill the pipeline.
            while sent < total && sent - completed < options.max_in_flight {
                let image = sent;
                starts[image] = Some(Instant::now());
                for &(d, (lo, hi)) in &scatter {
                    let rows = slice_rows(&images[image], lo, hi)?;
                    let frame = Frame {
                        kind: FrameKind::Rows,
                        image: image as u32,
                        stage: 0,
                        row_lo: lo as u32,
                        tensor: rows,
                    };
                    let t0 = Instant::now();
                    requester_txs[d].send(&frame)?;
                    scatter_ms[d] += t0.elapsed().as_secs_f64() * 1e3;
                }
                sent += 1;
                max_in_flight_observed = max_in_flight_observed.max(sent - completed);
            }

            // Wait for result rows.
            let bytes = requester_inbox
                .recv_timeout(options.recv_timeout)
                .map_err(|_| RuntimeError::Transport("timed out waiting for results".into()))?;
            let frame = Frame::decode(&bytes)?;
            if frame.kind != FrameKind::Result {
                return Err(RuntimeError::Execution(format!(
                    "requester received unexpected {:?} frame",
                    frame.kind
                )));
            }
            let image = frame.image as usize;
            if image >= total || outputs[image].is_some() {
                return Err(RuntimeError::Execution(format!(
                    "duplicate result for image {image}"
                )));
            }
            let done = if has_head {
                // The head output arrives whole.
                Some(frame.tensor)
            } else {
                let asm = result_asms
                    .entry(frame.image)
                    .or_insert_with(|| Assembly::new(result_c, result_w, (0, route.last_height)));
                asm.insert(frame.row_lo as usize, &frame.tensor)?;
                if asm.complete() {
                    Some(
                        result_asms
                            .remove(&frame.image)
                            .expect("present")
                            .into_band(),
                    )
                } else {
                    None
                }
            };
            if let Some(out) = done {
                outputs[image] = Some(out);
                let start = starts[image].expect("result for an image never sent");
                latencies_ms[image] = start.elapsed().as_secs_f64() * 1e3;
                completed += 1;
            }
        }
        Ok(())
    })();
    let wall_ms = t_start.elapsed().as_secs_f64() * 1e3;

    // Shutdown runs on both the success and the error path: halt every
    // provider (best effort — a dead peer cannot be halted twice) and join
    // all worker threads, so no thread outlives this call.
    let mut shutdown_err: Option<RuntimeError> = None;
    for tx in &mut requester_txs {
        if let Err(e) = tx.send(&Frame::halt()) {
            shutdown_err.get_or_insert(e);
        }
    }
    let mut devices = Vec::with_capacity(n);
    for (d, handle) in handles.into_iter().enumerate() {
        let recv = join_worker(handle.recv, d, "receive");
        let comp = join_worker(handle.comp, d, "compute");
        let send = join_worker(handle.send, d, "send");
        match (recv, comp, send) {
            (Ok(recv), Ok(comp), Ok(send)) => devices.push(DeviceMetrics {
                compute_ms: comp.compute_ms + comp.head_ms,
                tx_ms: send.tx_ms,
                scatter_ms: scatter_ms[d],
                per_volume_ms: comp.per_volume_ms,
                per_volume_images: comp.per_volume_images,
                head_ms: comp.head_ms,
                head_images: comp.head_images,
                frames_in: recv.frames_in,
                bytes_in: recv.bytes_in,
                frames_out: send.frames_out,
                bytes_out: send.bytes_out,
                max_concurrent_images: comp.max_concurrent_images,
            }),
            (recv, comp, send) => {
                for e in [recv.err(), comp.err(), send.err()].into_iter().flatten() {
                    shutdown_err.get_or_insert(e);
                }
            }
        }
    }
    // Streaming errors outrank shutdown collateral: they are the cause.
    stream_result?;
    if let Some(e) = shutdown_err {
        return Err(e);
    }

    let compute_totals: Vec<f64> = devices.iter().map(|m| m.compute_ms).collect();
    let tx_totals: Vec<f64> = devices.iter().map(|m| m.tx_ms + m.scatter_ms).collect();
    let sim = SimReport::from_raw(latencies_ms, compute_totals, tx_totals);
    let measured_ips = if wall_ms > 0.0 {
        total as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };

    let outputs: Vec<Tensor> = outputs
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.ok_or_else(|| RuntimeError::Execution(format!("image {i} never finished"))))
        .collect::<Result<_>>()?;

    Ok(RuntimeOutcome {
        report: RuntimeReport {
            sim,
            images: total,
            wall_ms,
            measured_ips,
            max_in_flight_observed,
            devices,
        },
        outputs,
    })
}

fn join_worker<T>(handle: std::thread::JoinHandle<Result<T>>, d: usize, role: &str) -> Result<T> {
    handle
        .join()
        .map_err(|_| RuntimeError::WorkerPanic(format!("device {d} {role} thread")))?
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::exec::{self, deterministic_input};
    use cnn_model::{LayerOp, PartitionScheme, VolumeSplit};
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "runtime-test",
            Shape::new(2, 24, 16),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(6, 3, 1, 1),
                LayerOp::fc(5),
            ],
        )
        .unwrap()
    }

    fn split_plan(m: &Model, devices: usize) -> ExecutionPlan {
        let scheme = PartitionScheme::new(m, vec![0, 3, 4]).unwrap();
        let splits: Vec<VolumeSplit> = scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(devices, v.last_output_height(m)))
            .collect();
        ExecutionPlan::from_splits(m, &scheme, &splits, devices).unwrap()
    }

    fn reference_output(m: &Model, weights: &ModelWeights, input: &Tensor) -> Tensor {
        let outs = exec::run_full(m, weights, input).unwrap();
        outs.last().unwrap().clone()
    }

    #[test]
    fn distributed_output_is_bit_exact() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 3);
        let images: Vec<Tensor> = (0..3).map(|i| deterministic_input(&m, 100 + i)).collect();
        let plan = split_plan(&m, 3);
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        assert_eq!(outcome.outputs.len(), 3);
        for (img, out) in images.iter().zip(&outcome.outputs) {
            let reference = reference_output(&m, &weights, img);
            assert_eq!(
                out, &reference,
                "distributed output differs from single-device"
            );
        }
    }

    #[test]
    fn headless_model_stitches_rows_at_requester() {
        let m = Model::new(
            "nohead",
            Shape::new(2, 16, 12),
            &[LayerOp::conv(3, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let weights = ModelWeights::deterministic(&m, 5);
        let images = vec![deterministic_input(&m, 9)];
        let scheme = PartitionScheme::single_volume(&m);
        let split = VolumeSplit::equal(2, m.prefix_output().h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        let reference = reference_output(&m, &weights, &images[0]);
        assert_eq!(outcome.outputs[0], reference);
    }

    #[test]
    fn offload_plan_runs_on_one_device() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 1);
        let images = vec![deterministic_input(&m, 2)];
        let plan = ExecutionPlan::offload(&m, 1, 3).unwrap();
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        let reference = reference_output(&m, &weights, &images[0]);
        assert_eq!(outcome.outputs[0], reference);
        // Only device 1 computed anything.
        assert!(outcome.report.devices[1].compute_ms > 0.0);
        assert_eq!(outcome.report.devices[0].frames_in, 1); // halt only
        assert_eq!(outcome.report.devices[2].frames_in, 1);
    }

    #[test]
    fn pipelining_keeps_multiple_images_in_flight() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let images: Vec<Tensor> = (0..6).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let opts = RuntimeOptions {
            max_in_flight: 4,
            ..RuntimeOptions::default()
        };
        let outcome = execute_in_process(&m, &plan, &weights, &images, &opts).unwrap();
        assert!(
            outcome.report.max_in_flight_observed >= 2,
            "expected pipelining, saw {} in flight",
            outcome.report.max_in_flight_observed
        );
    }

    #[test]
    fn closed_loop_keeps_one_image_in_flight() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let images: Vec<Tensor> = (0..3).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let opts = RuntimeOptions {
            max_in_flight: 1,
            ..RuntimeOptions::default()
        };
        let outcome = execute_in_process(&m, &plan, &weights, &images, &opts).unwrap();
        assert_eq!(outcome.report.max_in_flight_observed, 1);
        for d in &outcome.report.devices {
            assert!(d.max_concurrent_images <= 1);
        }
    }

    #[test]
    fn streaming_error_still_shuts_workers_down() {
        // A mid-stream failure (here: an absurdly short result timeout) must
        // not leak worker threads — over TCP a leaked worker would deadlock
        // the transport's Drop on its reader threads.
        use crate::transport::TcpTransport;
        let m = model();
        let weights = ModelWeights::deterministic(&m, 31);
        let images: Vec<Tensor> = (0..3).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let opts = RuntimeOptions {
            max_in_flight: 2,
            recv_timeout: Duration::from_micros(1),
        };
        let mut tcp = TcpTransport::new(2).unwrap();
        let result = execute(&m, &plan, &weights, &images, &mut tcp, &opts);
        assert!(result.is_err(), "a 1µs result timeout must fail");
        // The real assertion: dropping the transport completes instead of
        // hanging on leaked reader threads (the test harness would time out).
        drop(tcp);
    }

    #[test]
    fn rejects_bad_input_shape() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let images = vec![Tensor::zeros([1, 2, 3])];
        let plan = split_plan(&m, 2);
        let err = execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn report_totals_are_consistent() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 11);
        let images: Vec<Tensor> = (0..4).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        let r = &outcome.report;
        assert_eq!(r.sim.per_image_latency_ms.len(), 4);
        assert!(r.sim.ips > 0.0);
        assert!(r.measured_ips > 0.0);
        assert_eq!(r.devices.len(), 2);
        // Every device computed all four images of both volumes.
        for d in &r.devices {
            assert_eq!(d.per_volume_images, vec![4, 4]);
            assert!(d.compute_ms > 0.0);
        }
        // The head ran on exactly one device.
        let heads: u64 = r.devices.iter().map(|d| d.head_images).sum();
        assert_eq!(heads, 4);
    }
}
