//! One-shot execution entry points over the session API.
//!
//! [`execute`] / [`execute_in_process`] are compatibility wrappers kept for
//! batch callers and tests: they [`Runtime::deploy`] a [`Session`], stream
//! the whole image batch through it (submission is credit-gated by
//! `max_in_flight`), and shut the cluster down again.  Serving callers that
//! want the cluster to stay resident between waves use the session API
//! directly — see [`crate::session`].

use crate::report::RuntimeReport;
use crate::session::{Runtime, Session};
use crate::transport::Transport;
use crate::{Result, RuntimeError};
use cnn_model::exec::ModelWeights;
use cnn_model::Model;
use edgesim::ExecutionPlan;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use tensor::Tensor;

/// Options of a runtime session (and of the one-shot wrappers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOptions {
    /// The credit window: maximum images in flight at once.  `1` reproduces
    /// the paper's (and the simulator's) closed loop — the requester waits
    /// for each result before sending the next image; larger values
    /// pipeline.  Submission blocks (or `try_submit` declines) while the
    /// window is full, which also bounds every provider inbox.
    pub max_in_flight: usize,
    /// How long the requester waits for any single result frame before
    /// declaring the cluster wedged.  Also bounds a plan swap: if a
    /// `Session::apply_plan` drain or its epoch acks take longer than this,
    /// the swap fails instead of blocking admission forever.
    pub recv_timeout: Duration,
    /// Serve with int8 quantized inference: eligible layers run the
    /// int8×int8→i32 GEMM kernels from per-layer calibrated activation
    /// scales, quantized layers keep int8-only weight panels resident
    /// (~4× smaller), and inter-device `Rows` activations travel as q8
    /// slabs (~4× fewer wire bytes).  Outputs track the f32 reference
    /// within the quantization tolerance instead of bit-exactly.
    #[serde(default)]
    pub quantized: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            max_in_flight: 4,
            recv_timeout: Duration::from_secs(120),
            quantized: false,
        }
    }
}

impl RuntimeOptions {
    /// Overrides the credit window (images in flight at once).
    pub fn with_max_in_flight(mut self, window: usize) -> Self {
        self.max_in_flight = window;
        self
    }

    /// Overrides the result-frame timeout.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Enables int8 quantized serving (see [`RuntimeOptions::quantized`]).
    pub fn with_quantized(mut self, on: bool) -> Self {
        self.quantized = on;
        self
    }
}

/// What an execution returns: the measurement and the per-image outputs.
pub struct RuntimeOutcome {
    /// Measured metrics.
    pub report: RuntimeReport,
    /// Final output tensor of every image, in stream order: the FC-head
    /// output for models with a head, the stitched last-volume feature map
    /// otherwise.
    pub outputs: Vec<Tensor>,
}

/// Executes `plan` over the in-process channel fabric.
pub fn execute_in_process(
    model: &Model,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    images: &[Tensor],
    options: &RuntimeOptions,
) -> Result<RuntimeOutcome> {
    validate_batch(model, images)?;
    let session = Runtime::deploy_in_process(model, plan, weights, options)?;
    stream_batch(session, images)
}

/// Executes `plan` on concurrent provider workers over `transport`.
pub fn execute(
    model: &Model,
    plan: &ExecutionPlan,
    weights: &ModelWeights,
    images: &[Tensor],
    transport: &mut dyn Transport,
    options: &RuntimeOptions,
) -> Result<RuntimeOutcome> {
    validate_batch(model, images)?;
    let session = Runtime::deploy(model, plan, weights, transport, options)?;
    stream_batch(session, images)
}

fn validate_batch(model: &Model, images: &[Tensor]) -> Result<()> {
    if images.is_empty() {
        return Err(RuntimeError::Execution("no images to stream".into()));
    }
    let input_shape = model.input();
    for (i, img) in images.iter().enumerate() {
        if img.shape() != input_shape.as_array() {
            return Err(RuntimeError::Execution(format!(
                "image {i} has shape {:?}, model expects {:?}",
                img.shape(),
                input_shape.as_array()
            )));
        }
    }
    Ok(())
}

/// Streams one batch through a freshly deployed session and shuts it down.
/// `submit` blocks whenever the credit window is full, so the old
/// `max_in_flight` pipelining behaviour falls out of the session's
/// backpressure.  The session's `Drop` tears the workers down on the error
/// paths.
fn stream_batch(session: Session, images: &[Tensor]) -> Result<RuntimeOutcome> {
    let mut tickets = Vec::with_capacity(images.len());
    for img in images {
        tickets.push(session.submit(img)?);
    }
    let outputs = tickets
        .into_iter()
        .map(|t| session.wait(t))
        .collect::<Result<Vec<Tensor>>>()?;
    let report = session.shutdown()?;
    Ok(RuntimeOutcome { report, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::exec::{self, deterministic_input};
    use cnn_model::{LayerOp, PartitionScheme, VolumeSplit};
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "runtime-test",
            Shape::new(2, 24, 16),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(6, 3, 1, 1),
                LayerOp::fc(5),
            ],
        )
        .unwrap()
    }

    fn split_plan(m: &Model, devices: usize) -> ExecutionPlan {
        let scheme = PartitionScheme::new(m, vec![0, 3, 4]).unwrap();
        let splits: Vec<VolumeSplit> = scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(devices, v.last_output_height(m)))
            .collect();
        ExecutionPlan::from_splits(m, &scheme, &splits, devices).unwrap()
    }

    fn reference_output(m: &Model, weights: &ModelWeights, input: &Tensor) -> Tensor {
        let outs = exec::run_full(m, weights, input).unwrap();
        outs.last().unwrap().clone()
    }

    #[test]
    fn distributed_output_is_bit_exact() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 3);
        let images: Vec<Tensor> = (0..3).map(|i| deterministic_input(&m, 100 + i)).collect();
        let plan = split_plan(&m, 3);
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        assert_eq!(outcome.outputs.len(), 3);
        for (img, out) in images.iter().zip(&outcome.outputs) {
            let reference = reference_output(&m, &weights, img);
            assert_eq!(
                out, &reference,
                "distributed output differs from single-device"
            );
        }
    }

    #[test]
    fn headless_model_stitches_rows_at_requester() {
        let m = Model::new(
            "nohead",
            Shape::new(2, 16, 12),
            &[LayerOp::conv(3, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let weights = ModelWeights::deterministic(&m, 5);
        let images = vec![deterministic_input(&m, 9)];
        let scheme = PartitionScheme::single_volume(&m);
        let split = VolumeSplit::equal(2, m.prefix_output().h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        let reference = reference_output(&m, &weights, &images[0]);
        assert_eq!(outcome.outputs[0], reference);
    }

    #[test]
    fn offload_plan_runs_on_one_device() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 1);
        let images = vec![deterministic_input(&m, 2)];
        let plan = ExecutionPlan::offload(&m, 1, 3).unwrap();
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        let reference = reference_output(&m, &weights, &images[0]);
        assert_eq!(outcome.outputs[0], reference);
        // Only device 1 computed anything.
        assert!(outcome.report.devices[1].compute_ms > 0.0);
        assert_eq!(outcome.report.devices[0].frames_in, 1); // halt only
        assert_eq!(outcome.report.devices[2].frames_in, 1);
    }

    #[test]
    fn pipelining_keeps_multiple_images_in_flight() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let images: Vec<Tensor> = (0..6).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let opts = RuntimeOptions {
            max_in_flight: 4,
            ..RuntimeOptions::default()
        };
        let outcome = execute_in_process(&m, &plan, &weights, &images, &opts).unwrap();
        assert!(
            outcome.report.max_in_flight_observed >= 2,
            "expected pipelining, saw {} in flight",
            outcome.report.max_in_flight_observed
        );
    }

    #[test]
    fn closed_loop_keeps_one_image_in_flight() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let images: Vec<Tensor> = (0..3).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let opts = RuntimeOptions {
            max_in_flight: 1,
            ..RuntimeOptions::default()
        };
        let outcome = execute_in_process(&m, &plan, &weights, &images, &opts).unwrap();
        assert_eq!(outcome.report.max_in_flight_observed, 1);
        for d in &outcome.report.devices {
            assert!(d.max_concurrent_images <= 1);
        }
    }

    #[test]
    fn streaming_error_still_shuts_workers_down() {
        // A mid-stream failure (here: an absurdly short result timeout) must
        // not leak worker threads — over TCP a leaked worker would deadlock
        // the transport's Drop on its reader threads.
        use crate::transport::TcpTransport;
        let m = model();
        let weights = ModelWeights::deterministic(&m, 31);
        let images: Vec<Tensor> = (0..3).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let opts = RuntimeOptions {
            max_in_flight: 2,
            recv_timeout: Duration::from_micros(1),
            quantized: false,
        };
        let mut tcp = TcpTransport::new(2).unwrap();
        let result = execute(&m, &plan, &weights, &images, &mut tcp, &opts);
        assert!(result.is_err(), "a 1µs result timeout must fail");
        // The real assertion: dropping the transport completes instead of
        // hanging on leaked reader threads (the test harness would time out).
        drop(tcp);
    }

    #[test]
    fn rejects_bad_input_shape() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let images = vec![Tensor::zeros([1, 2, 3])];
        let plan = split_plan(&m, 2);
        let err = execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn report_totals_are_consistent() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 11);
        let images: Vec<Tensor> = (0..4).map(|i| deterministic_input(&m, i)).collect();
        let plan = split_plan(&m, 2);
        let outcome =
            execute_in_process(&m, &plan, &weights, &images, &RuntimeOptions::default()).unwrap();
        let r = &outcome.report;
        assert_eq!(r.sim.per_image_latency_ms.len(), 4);
        assert!(r.sim.ips > 0.0);
        assert!(r.measured_ips > 0.0);
        assert_eq!(r.devices.len(), 2);
        // Every device computed all four images of both volumes.
        for d in &r.devices {
            assert_eq!(d.per_volume_images, vec![4, 4]);
            assert!(d.compute_ms > 0.0);
        }
        // The head ran on exactly one device.
        let heads: u64 = r.devices.iter().map(|d| d.head_images).sum();
        assert_eq!(heads, 4);
    }
}
