//! The provider worker: the paper's three-thread receive / compute / send
//! pipeline (§V-A), one worker per device.
//!
//! * the **receive** thread drains the device's transport inbox, decodes
//!   frames and hands them to compute — so the wire never waits on a kernel;
//! * the **compute** thread assembles input bands (halo rows may arrive from
//!   several peers), runs the split-part kernels via
//!   `cnn_model::exec::run_part_on_band`, and chains locally-satisfied
//!   stages without touching the transport;
//! * the **send** thread slices each computed band into per-destination
//!   overlap rows and pushes them out — so a slow link never blocks the next
//!   kernel.
//!
//! Frames for different images interleave freely, which is what makes the
//! requester's multi-image streaming genuine pipelining.
//!
//! Routing is **epoch-versioned**: the worker does not own a plan, it reads
//! the current [`PlanEpoch`] through the shared [`EpochSlot`] on every
//! frame.  A [`FrameKind::Reconfigure`] frame installs the next epoch in
//! place — it applies the delta weight shard (only the layers this device
//! does not already hold resident), rebuilds the routing table, publishes it
//! through the slot, and acks back to the requester — so a plan swap never
//! tears the worker down.  The swap protocol drains the old epoch before
//! reconfiguring and resumes admission only after every device has acked,
//! so a data frame whose epoch differs from this device's installed epoch
//! is always a protocol violation, never a race.
//!
//! Weights are resident as a **deploy-time packed artifact**: the compute
//! thread packs its sharded raw weights into GEMM panels
//! ([`cnn_model::exec::PackedModelWeights`]) once at spawn and discards the
//! raw copies; a `Reconfigure` delta repacks only the layers that actually
//! shipped.  The per-frame kernels consume the packed panels directly — no
//! frame ever pays packing cost ([`ComputeStats::layers_packed`] is the
//! observable proof: it moves at deploy and swap time only).  The compute
//! thread signals [`ProviderHandle::wait_ready`] once its pack completes,
//! so deploy — and the session's throughput clock — finishes only after
//! every provider can serve its first frame at full speed.

use crate::report::DeviceMetrics;
use crate::routing::{overlap, EpochSlot, PlanEpoch};
use crate::transport::FrameTx;
use crate::wire::{Frame, FrameKind, ReconfigurePayload};
use crate::{Result, RuntimeError, TransportError, TransportErrorKind};
use cnn_model::exec::{self, ModelWeights, PackedModelWeights, QuantSpec};
use cnn_model::Model;
use edge_telemetry::{Recorder, Stage, Telemetry, TraceId, REQUESTER};
use edgesim::Endpoint;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use tensor::slice::slice_rows;
use tensor::{Shape, Tensor};

/// Configuration shared by the three threads of one provider worker.
/// Weights are *not* here: the compute thread owns its resident
/// [`PackedModelWeights`] mutably so `Reconfigure` frames can grow the
/// packed set in place.
pub struct Shared {
    /// The model being served.
    pub model: Model,
    /// The current plan epoch, swapped in place on `Reconfigure`.
    pub slot: EpochSlot,
    /// Per-layer int8 quantization scales, when the session serves
    /// quantized.  The spawn-time packing pass (and every `Reconfigure`
    /// delta install) builds int8 panels for the layers this spec routes to
    /// the quantized kernels; `None` packs the classic f32 panels.
    pub quant: Option<QuantSpec>,
}

/// An in-progress input band: rows arrive from several sources (peers, the
/// requester, the local compute chain) and are stitched in place.
pub(crate) struct Assembly {
    needed: (usize, usize),
    band: Tensor,
    covered_rows: usize,
    /// When the first fragment opened this assembly — the start of the
    /// merge span recorded when the band completes.
    created: Instant,
}

impl Assembly {
    pub(crate) fn new(c: usize, w: usize, needed: (usize, usize)) -> Self {
        Self {
            needed,
            band: Tensor::zeros(Shape::new(c, needed.1 - needed.0, w)),
            covered_rows: 0,
            created: Instant::now(),
        }
    }

    /// When the assembly was opened (first fragment arrival).
    pub(crate) fn created(&self) -> Instant {
        self.created
    }

    /// Copies `rows` (full coordinates starting at `row_lo`) into the band.
    /// Sources are disjoint by construction, so coverage is a row count.
    pub(crate) fn insert(&mut self, row_lo: usize, rows: &Tensor) -> Result<()> {
        let [c, h, w] = rows.shape();
        let [bc, bh, bw] = self.band.shape();
        if c != bc || w != bw {
            return Err(RuntimeError::Execution(format!(
                "band geometry mismatch: got [{c}, {h}, {w}], assembling [{bc}, {bh}, {bw}]"
            )));
        }
        let lo = row_lo;
        let hi = row_lo + h;
        if lo < self.needed.0 || hi > self.needed.1 {
            return Err(RuntimeError::Execution(format!(
                "rows {lo}..{hi} outside needed {}..{}",
                self.needed.0, self.needed.1
            )));
        }
        let dst_lo = lo - self.needed.0;
        for ch in 0..c {
            let src = rows.channel(ch);
            let dst_start = (ch * bh + dst_lo) * bw;
            self.band.data_mut()[dst_start..dst_start + h * w].copy_from_slice(src);
        }
        self.covered_rows += h;
        Ok(())
    }

    pub(crate) fn complete(&self) -> bool {
        self.covered_rows >= self.needed.1 - self.needed.0
    }

    pub(crate) fn into_band(self) -> Tensor {
        self.band
    }
}

/// Receive-thread counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecvStats {
    /// Frames taken off the transport.
    pub frames_in: u64,
    /// Encoded bytes taken off the transport.
    pub bytes_in: u64,
}

/// Compute-thread counters.
#[derive(Debug, Clone, Default)]
pub struct ComputeStats {
    /// Total kernel time.
    pub compute_ms: f64,
    /// Kernel time per volume (indexed by stage; sized to the largest
    /// epoch's volume count seen so far).
    pub per_volume_ms: Vec<f64>,
    /// Images whose part of each volume this device computed.
    pub per_volume_images: Vec<u64>,
    /// FC-head kernel time (head device only).
    pub head_ms: f64,
    /// Images whose head this device computed.
    pub head_images: u64,
    /// High-water mark of distinct images simultaneously in assembly —
    /// direct evidence of cross-image pipelining on this device.
    pub max_concurrent_images: usize,
    /// Plan epochs installed by `Reconfigure` frames (0 until the first
    /// swap).
    pub epochs_installed: u64,
    /// Weight layers packed into GEMM panels on this device — counted at
    /// deploy (the initial shard) and on `Reconfigure` delta installs
    /// *only*.  Steady-state serving never moves this counter: per-frame
    /// packing would be a regression the residency tests catch here.
    pub layers_packed: u64,
    /// Data frames dropped because they carried an epoch older than the
    /// installed one — expected debris after an epoch re-sync, never
    /// triggered by a drained plan swap.
    pub stale_frames: u64,
}

/// Send-thread counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SendStats {
    /// Wall time spent inside `FrameTx::send` (wire + shaping time).
    pub tx_ms: f64,
    /// Frames pushed to peers / the requester.
    pub frames_out: u64,
    /// Encoded bytes pushed.
    pub bytes_out: u64,
}

/// Live counters of one provider's three threads, updated in place while
/// the worker runs so a `Session` can snapshot per-device metrics
/// mid-stream (the counters only ever grow, so snapshots are monotone).
#[derive(Debug, Default)]
pub struct ProviderStats {
    /// Receive-thread counters.
    pub recv: Mutex<RecvStats>,
    /// Compute-thread counters.
    pub comp: Mutex<ComputeStats>,
    /// Send-thread counters.
    pub send: Mutex<SendStats>,
}

impl ProviderStats {
    /// Snapshots the counters into the report's per-device shape.
    pub fn snapshot(&self, scatter_ms: f64) -> DeviceMetrics {
        let recv = self.recv.lock().expect("recv stats poisoned");
        let comp = self.comp.lock().expect("comp stats poisoned");
        let send = self.send.lock().expect("send stats poisoned");
        DeviceMetrics {
            compute_ms: comp.compute_ms + comp.head_ms,
            tx_ms: send.tx_ms,
            scatter_ms,
            per_volume_ms: comp.per_volume_ms.clone(),
            per_volume_images: comp.per_volume_images.clone(),
            head_ms: comp.head_ms,
            head_images: comp.head_images,
            frames_in: recv.frames_in,
            bytes_in: recv.bytes_in,
            frames_out: send.frames_out,
            bytes_out: send.bytes_out,
            max_concurrent_images: comp.max_concurrent_images,
            layers_packed: comp.layers_packed,
        }
    }
}

/// What a provider worker is given to make its weights resident.
///
/// The classic deploy path shards the raw weights per device and each
/// compute thread packs its own shard at spawn.  A fleet of replica
/// sessions serving the *same* model instead shares one deploy-time
/// [`PackedModelWeights`] artifact across every provider of every replica
/// via `Arc` — K replicas cost one packing pass and one resident copy.
pub enum ProviderWeights {
    /// This device's sharded raw weights; the compute thread packs them
    /// into GEMM panels at spawn and drops the raw copy.
    Sharded(ModelWeights),
    /// A full-model packed artifact shared with other providers (and other
    /// replica sessions).  No packing happens at spawn, and
    /// [`ComputeStats::layers_packed`] stays 0 — the observable proof of
    /// sharing.  Shared packs are immutable: they are deployed with every
    /// layer resident, so plan swaps never ship weight deltas to them.
    Prepacked(Arc<PackedModelWeights>),
}

/// The compute thread's resident weight set: owned-and-growable on the
/// sharded path, immutable-and-shared on the prepacked path.
enum ResidentWeights {
    Owned(PackedModelWeights),
    Shared(Arc<PackedModelWeights>),
}

impl ResidentWeights {
    fn get(&self) -> &PackedModelWeights {
        match self {
            ResidentWeights::Owned(w) => w,
            ResidentWeights::Shared(w) => w,
        }
    }

    fn install_layer(
        &mut self,
        model: &Model,
        layer: usize,
        weights: &[f32],
        bias: &[f32],
    ) -> Result<()> {
        match self {
            ResidentWeights::Owned(w) => Ok(w.install_layer(model, layer, weights, bias)?),
            // A shared pack is fully resident by construction, so the
            // requester's residency diff ships empty deltas to it; a
            // non-empty delta addressed here is a protocol violation.
            ResidentWeights::Shared(w) => {
                if weights.is_empty() && w.is_resident(layer) {
                    Ok(())
                } else {
                    Err(RuntimeError::Execution(format!(
                        "reconfigure shipped a weight delta for layer {layer} to a provider \
                         serving shared prepacked weights"
                    )))
                }
            }
        }
    }
}

/// Join handles of one provider's three threads, plus its live counters.
pub struct ProviderHandle {
    pub(crate) recv: JoinHandle<Result<()>>,
    pub(crate) comp: JoinHandle<Result<()>>,
    pub(crate) send: JoinHandle<Result<()>>,
    pub(crate) stats: Arc<ProviderStats>,
    /// Signalled once by the compute thread when its resident weights are
    /// ready to serve frames (after the spawn-time packing pass on the
    /// sharded path; immediately on the prepacked path).  Behind a mutex
    /// only so the handle stays `Sync` inside a shared `Session`.
    ready: Mutex<Receiver<()>>,
}

impl ProviderHandle {
    /// Blocks until the compute thread's resident weights are ready — the
    /// deploy-side half of the packing barrier.  Deploy completes (and the
    /// throughput clock starts) only after this returns, so spawn-time
    /// packing is deploy cost, never stream cost.  Errors if the compute
    /// thread exited before signalling (its packing pass failed).
    pub fn wait_ready(&self) -> Result<()> {
        let ready = self.ready.lock().expect("ready channel poisoned");
        ready.recv().map_err(|_| {
            RuntimeError::Execution(
                "provider compute thread exited before its weights were ready".into(),
            )
        })
    }

    /// Waits for the provider's three threads to exit (they do once a
    /// `Halt` frame reaches the inbox, or on a worker error); the first
    /// thread error wins.  This is how a standalone node process (the
    /// `edge-cluster` runloop) blocks on its provider's lifetime.
    pub fn join(self) -> Result<()> {
        let mut err: Option<RuntimeError> = None;
        for (role, h) in [
            ("receive", self.recv),
            ("compute", self.comp),
            ("send", self.send),
        ] {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    err.get_or_insert(e);
                }
                Err(_) => {
                    err.get_or_insert(RuntimeError::WorkerPanic(format!("{role} thread")));
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

enum OutMsg {
    /// A computed volume-output band to distribute (stage = the volume).
    /// Carries the epoch it was computed under so the send thread routes it
    /// by the matching table even if the slot flips concurrently.
    Band {
        image: u32,
        stage: usize,
        band: Arc<Tensor>,
        epoch: Arc<PlanEpoch>,
    },
    /// The FC-head output, heading to the requester.
    HeadResult {
        image: u32,
        tensor: Tensor,
        epoch: Arc<PlanEpoch>,
    },
    /// Confirmation that this device installed a new epoch.
    EpochAck { epoch: u64 },
}

/// Spawns the three threads of provider `d`.  On the
/// [`ProviderWeights::Sharded`] path only the layers `d`'s parts need are
/// resident; the compute thread packs them into GEMM panels once at spawn
/// (then drops the raw copy) and grows the packed set on `Reconfigure`
/// deltas.  On the [`ProviderWeights::Prepacked`] path the worker shares an
/// immutable full-model pack and never packs anything itself.
pub fn spawn_provider(
    d: usize,
    shared: Arc<Shared>,
    weights: ProviderWeights,
    inbox: Receiver<Vec<u8>>,
    txs: HashMap<Endpoint, Box<dyn FrameTx>>,
    telemetry: &Telemetry,
) -> ProviderHandle {
    let (to_comp, comp_rx) = channel::<Frame>();
    let (to_send, send_rx) = channel::<OutMsg>();
    let (ready_tx, ready_rx) = channel::<()>();

    // One ring per thread, named after the Chrome-trace track it becomes.
    let recv_rec = telemetry.recorder(&format!("dev{d}.recv"), d as u32);
    let comp_rec = telemetry.recorder(&format!("dev{d}.comp"), d as u32);
    let send_rec = telemetry.recorder(&format!("dev{d}.send"), d as u32);

    let stats = Arc::new(ProviderStats::default());
    // Size the per-volume counters up front so mid-stream snapshots always
    // see full-length vectors (reconfigures grow them if a later epoch has
    // more volumes).
    {
        let num_volumes = shared.slot.load().route.num_volumes;
        let mut comp = stats.comp.lock().expect("comp stats poisoned");
        comp.per_volume_ms = vec![0.0; num_volumes];
        comp.per_volume_images = vec![0; num_volumes];
    }

    let recv_stats = Arc::clone(&stats);
    let recv = std::thread::Builder::new()
        .name(format!("edge-rt-recv-{d}"))
        .spawn(move || receive_loop(inbox, to_comp, recv_stats, recv_rec))
        .expect("spawn receive thread");

    let comp_shared = Arc::clone(&shared);
    let comp_stats = Arc::clone(&stats);
    let comp = std::thread::Builder::new()
        .name(format!("edge-rt-comp-{d}"))
        .spawn(move || {
            compute_loop(
                d,
                comp_shared,
                weights,
                ready_tx,
                comp_rx,
                to_send,
                comp_stats,
                comp_rec,
            )
        })
        .expect("spawn compute thread");

    let send_stats = Arc::clone(&stats);
    let send = std::thread::Builder::new()
        .name(format!("edge-rt-send-{d}"))
        .spawn(move || send_loop(d, send_rx, txs, send_stats, send_rec))
        .expect("spawn send thread");

    ProviderHandle {
        recv,
        comp,
        send,
        stats,
        ready: Mutex::new(ready_rx),
    }
}

fn receive_loop(
    inbox: Receiver<Vec<u8>>,
    to_comp: Sender<Frame>,
    stats: Arc<ProviderStats>,
    mut rec: Recorder,
) -> Result<()> {
    while let Ok(bytes) = inbox.recv() {
        let t0 = rec.start();
        {
            let mut recv = stats.recv.lock().expect("recv stats poisoned");
            recv.frames_in += 1;
            recv.bytes_in += bytes.len() as u64;
        }
        let frame = Frame::decode(&bytes)?;
        if let Some(t0) = t0 {
            let trace = match frame.kind {
                FrameKind::Rows => TraceId {
                    epoch: frame.epoch,
                    image: frame.image,
                },
                _ => TraceId::session(frame.epoch),
            };
            rec.span(Stage::Recv, trace, t0, bytes.len() as u64, frame.stage);
        }
        let halt = frame.kind == FrameKind::Halt;
        if to_comp.send(frame).is_err() {
            break; // Compute died; stop pumping.
        }
        if halt {
            break;
        }
    }
    Ok(())
}

struct ComputeState {
    d: usize,
    shared: Arc<Shared>,
    /// The device's resident weights: packed into GEMM panels at spawn
    /// (deploy time) and grown in place by `Reconfigure` delta shards on
    /// the owned path, or an immutable shared full-model pack — never
    /// touched on the frame path either way.
    weights: ResidentWeights,
    assemblies: HashMap<(u32, u32), Assembly>,
    /// Open-assembly count per image — tracked incrementally so the
    /// high-water mark costs O(1) per frame, not a scan of all assemblies.
    open_images: HashMap<u32, usize>,
    to_send: Sender<OutMsg>,
    stats: Arc<ProviderStats>,
    rec: Recorder,
}

#[allow(clippy::too_many_arguments)]
fn compute_loop(
    d: usize,
    shared: Arc<Shared>,
    weights: ProviderWeights,
    ready: Sender<()>,
    rx: Receiver<Frame>,
    to_send: Sender<OutMsg>,
    stats: Arc<ProviderStats>,
    rec: Recorder,
) -> Result<()> {
    let resident = match weights {
        // Deploy-time packing: turn the sharded raw weights into GEMM
        // panels once, before the first frame, and drop the raw copies.
        // From here on the only packing this worker ever does is per-layer
        // `Reconfigure` delta installs.
        ProviderWeights::Sharded(raw) => {
            let packed = PackedModelWeights::pack_with(&shared.model, &raw, shared.quant.as_ref())?;
            drop(raw);
            {
                let mut comp = stats.comp.lock().expect("comp stats poisoned");
                comp.layers_packed += packed.packed_layer_count() as u64;
            }
            ResidentWeights::Owned(packed)
        }
        // Someone else already paid the packing pass; `layers_packed`
        // stays 0 on this worker.
        ProviderWeights::Prepacked(shared_pack) => ResidentWeights::Shared(shared_pack),
    };
    // Packing done (or skipped): release the deploy barrier.  A dropped
    // receiver just means nobody is waiting (a rejoined cluster node's
    // requester, for example), which is fine.
    let _ = ready.send(());
    drop(ready);
    let mut state = ComputeState {
        d,
        shared,
        weights: resident,
        assemblies: HashMap::new(),
        open_images: HashMap::new(),
        to_send,
        stats,
        rec,
    };
    while let Ok(frame) = rx.recv() {
        match frame.kind {
            FrameKind::Halt => break,
            FrameKind::Rows => state.handle_rows(frame)?,
            FrameKind::Reconfigure => state.handle_reconfigure(frame)?,
            FrameKind::Result | FrameKind::EpochAck => {
                return Err(RuntimeError::Execution(format!(
                    "provider {d} received a {:?} frame",
                    frame.kind
                )))
            }
        }
    }
    Ok(())
}

impl ComputeState {
    /// Inserts rows into the (image, stage) assembly of the current epoch;
    /// if that completes the band, runs the compute chain from there.
    ///
    /// A frame from an *older* epoch is dropped: after an epoch re-sync
    /// (a rejoined device) a surviving peer can have old-epoch bands still
    /// queued on its send side, and those must evaporate rather than kill
    /// the worker.  A frame from a *future* epoch is a protocol violation —
    /// admission only resumes once every device has acked the new epoch, so
    /// no frame can legally run ahead of this device's installed epoch.
    fn handle_rows(&mut self, frame: Frame) -> Result<()> {
        let current = self.shared.slot.load();
        if frame.epoch < current.id {
            let mut comp = self.stats.comp.lock().expect("comp stats poisoned");
            comp.stale_frames += 1;
            return Ok(());
        }
        if frame.epoch > current.id {
            return Err(RuntimeError::Execution(format!(
                "device {} received a frame of epoch {} while serving epoch {}",
                self.d, frame.epoch, current.id
            )));
        }
        let image = frame.image;
        let stage = frame.stage as usize;
        if let Some(band) =
            self.insert(&current, image, stage, frame.row_lo as usize, &frame.tensor)?
        {
            self.run_chain(&current, image, stage, band)?;
        }
        Ok(())
    }

    /// Installs the next epoch: applies the delta weight shard, rebuilds
    /// the routing table, publishes it through the slot, and acks to the
    /// requester.
    fn handle_reconfigure(&mut self, frame: Frame) -> Result<()> {
        let current = self.shared.slot.load();
        if frame.epoch != current.id + 1 {
            return Err(RuntimeError::Execution(format!(
                "device {} asked to reconfigure from epoch {} to {}; epochs must advance by one",
                self.d, current.id, frame.epoch
            )));
        }
        let t_install = self.rec.start();
        let payload = ReconfigurePayload::decode(&frame.payload)?;
        let mut installed = 0u64;
        for delta in payload.delta {
            if delta.layer >= self.weights.get().layers().len() {
                return Err(RuntimeError::Wire(format!(
                    "reconfigure delta addresses layer {} of a {}-layer model",
                    delta.layer,
                    self.weights.get().layers().len()
                )));
            }
            // Pack only what shipped: layers already resident were diffed
            // out by the requester and keep their panels untouched.
            self.weights.install_layer(
                &self.shared.model,
                delta.layer,
                &delta.weights,
                &delta.bias,
            )?;
            if !delta.weights.is_empty() {
                installed += 1;
            }
        }
        // The epoch's wire precision is re-negotiated on every reconfigure:
        // a payload carrying a quant spec keeps serving q8 activations.
        let epoch = PlanEpoch::new(frame.epoch, &self.shared.model, &payload.plan)?
            .with_wire_q8(payload.quant.is_some());
        {
            let mut comp = self.stats.comp.lock().expect("comp stats poisoned");
            if epoch.route.num_volumes > comp.per_volume_ms.len() {
                comp.per_volume_ms.resize(epoch.route.num_volumes, 0.0);
                comp.per_volume_images.resize(epoch.route.num_volumes, 0);
            }
            comp.epochs_installed += 1;
            comp.layers_packed += installed;
        }
        self.shared.slot.store(epoch);
        // Partial band assemblies belong to the epoch that produced them.
        // On a drained swap there are none; on an epoch re-sync (device
        // rejoin) they are half-built attempts whose missing rows died with
        // the old peer — the requester replays those images at the new
        // epoch, so keeping stale fragments would double-count rows.
        self.assemblies.clear();
        self.open_images.clear();
        if let Some(t0) = t_install {
            let trace = TraceId::session(frame.epoch);
            self.rec.span(
                Stage::Reconfigure,
                trace,
                t0,
                frame.payload.len() as u64,
                installed as u32,
            );
            self.rec.instant(Stage::EpochFlip, trace, 0, self.d as u32);
        }
        self.to_send
            .send(OutMsg::EpochAck { epoch: frame.epoch })
            .map_err(|_| RuntimeError::transport_disconnected("send thread is gone"))?;
        Ok(())
    }

    fn insert(
        &mut self,
        epoch: &PlanEpoch,
        image: u32,
        stage: usize,
        row_lo: usize,
        rows: &Tensor,
    ) -> Result<Option<Tensor>> {
        let needed = epoch.route.stage_needs(stage, self.d).ok_or_else(|| {
            RuntimeError::Execution(format!(
                "device {} received rows for stage {stage} it does not participate in",
                self.d
            ))
        })?;
        let (c, w) = epoch.route.stage_geom(stage);
        let key = (image, stage as u32);
        let asm = match self.assemblies.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                *self.open_images.entry(image).or_insert(0) += 1;
                let mut comp = self.stats.comp.lock().expect("comp stats poisoned");
                comp.max_concurrent_images = comp.max_concurrent_images.max(self.open_images.len());
                drop(comp);
                e.insert(Assembly::new(c, w, needed))
            }
        };
        asm.insert(row_lo, rows)?;
        if asm.complete() {
            let asm = self.assemblies.remove(&key).expect("present");
            if let Some(count) = self.open_images.get_mut(&image) {
                *count -= 1;
                if *count == 0 {
                    self.open_images.remove(&image);
                }
            }
            self.rec.span(
                Stage::Merge,
                TraceId {
                    epoch: epoch.id,
                    image,
                },
                asm.created(),
                0,
                stage as u32,
            );
            Ok(Some(asm.into_band()))
        } else {
            Ok(None)
        }
    }

    /// Runs the kernels for `stage` under `epoch`, forwards the output, and
    /// keeps going through any later stage this device can now complete
    /// locally.
    fn run_chain(
        &mut self,
        epoch: &Arc<PlanEpoch>,
        image: u32,
        mut stage: usize,
        mut band: Tensor,
    ) -> Result<()> {
        let route = &epoch.route;
        let finish = route.num_volumes;
        loop {
            if stage == finish {
                // Head gather complete: run the FC head, return the result.
                let t0 = Instant::now();
                let out = exec::run_head_packed(&self.shared.model, self.weights.get(), &band)?;
                let t1 = Instant::now();
                {
                    let mut comp = self.stats.comp.lock().expect("comp stats poisoned");
                    comp.head_ms += (t1 - t0).as_secs_f64() * 1e3;
                    comp.head_images += 1;
                }
                self.rec.span_between(
                    Stage::Head,
                    TraceId {
                        epoch: epoch.id,
                        image,
                    },
                    t0,
                    t1,
                    0,
                    0,
                );
                self.to_send
                    .send(OutMsg::HeadResult {
                        image,
                        tensor: out,
                        epoch: Arc::clone(epoch),
                    })
                    .map_err(|_| RuntimeError::transport_disconnected("send thread is gone"))?;
                return Ok(());
            }

            let part = &route.parts[stage][self.d];
            let t0 = Instant::now();
            let out =
                exec::run_part_on_band_packed(&self.shared.model, self.weights.get(), part, band)?;
            let t1 = Instant::now();
            let ms = (t1 - t0).as_secs_f64() * 1e3;
            {
                let mut comp = self.stats.comp.lock().expect("comp stats poisoned");
                comp.compute_ms += ms;
                comp.per_volume_ms[stage] += ms;
                comp.per_volume_images[stage] += 1;
            }
            self.rec.span_between(
                Stage::Compute(stage as u16),
                TraceId {
                    epoch: epoch.id,
                    image,
                },
                t0,
                t1,
                0,
                0,
            );

            let out = Arc::new(out);
            let out_range = part.output_rows;
            self.to_send
                .send(OutMsg::Band {
                    image,
                    stage,
                    band: Arc::clone(&out),
                    epoch: Arc::clone(epoch),
                })
                .map_err(|_| RuntimeError::transport_disconnected("send thread is gone"))?;

            // Keep whatever the next stage needs from us locally.
            let next = stage + 1;
            let Some(need) = route.stage_needs(next, self.d) else {
                return Ok(());
            };
            let Some((lo, hi)) = overlap(out_range, need) else {
                return Ok(());
            };
            let local = slice_rows(&out, lo - out_range.0, hi - out_range.0)?;
            match self.insert(epoch, image, next, lo, &local)? {
                Some(next_band) => {
                    stage = next;
                    band = next_band;
                }
                None => return Ok(()),
            }
        }
    }
}

fn send_loop(
    d: usize,
    rx: Receiver<OutMsg>,
    mut txs: HashMap<Endpoint, Box<dyn FrameTx>>,
    stats: Arc<ProviderStats>,
    mut rec: Recorder,
) -> Result<()> {
    let mut timed_send = |txs: &mut HashMap<Endpoint, Box<dyn FrameTx>>,
                          to: Endpoint,
                          frame: &Frame,
                          trace: TraceId|
     -> Result<()> {
        let tx = txs.get_mut(&to).ok_or_else(|| {
            RuntimeError::Transport(
                TransportError::new(
                    TransportErrorKind::Config,
                    format!("device {d} has no link to this peer"),
                )
                .at(to),
            )
        })?;
        let t0 = Instant::now();
        let n = tx.send(frame)?;
        let t1 = Instant::now();
        {
            let mut send = stats.send.lock().expect("send stats poisoned");
            send.tx_ms += (t1 - t0).as_secs_f64() * 1e3;
            send.frames_out += 1;
            send.bytes_out += n as u64;
        }
        let dest = match to {
            Endpoint::Device(p) => p as u32,
            Endpoint::Requester => REQUESTER,
        };
        rec.span_between(Stage::Tx, trace, t0, t1, n as u64, dest);
        Ok(())
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            OutMsg::Band {
                image,
                stage,
                band,
                epoch,
            } => {
                let out_lo = epoch.route.out_ranges[stage][d].0;
                for target in epoch.route.send_targets(stage, d) {
                    let (lo, hi) = target.rows;
                    let rows = slice_rows(&band, lo - out_lo, hi - out_lo)?;
                    // Inter-device activations travel as q8 slabs on
                    // quantized epochs; head/requester results stay f32.
                    let frame = if epoch.wire_q8 && target.kind == FrameKind::Rows {
                        Frame::rows_q8(epoch.id, image, target.stage, lo as u32, &rows)
                    } else {
                        Frame::data(target.kind, epoch.id, image, target.stage, lo as u32, rows)
                    };
                    let trace = TraceId {
                        epoch: epoch.id,
                        image,
                    };
                    timed_send(&mut txs, target.to, &frame, trace)?;
                }
            }
            OutMsg::HeadResult {
                image,
                tensor,
                epoch,
            } => {
                let frame = Frame::data(
                    FrameKind::Result,
                    epoch.id,
                    image,
                    epoch.route.finish_stage(),
                    0,
                    tensor,
                );
                let trace = TraceId {
                    epoch: epoch.id,
                    image,
                };
                timed_send(&mut txs, Endpoint::Requester, &frame, trace)?;
            }
            OutMsg::EpochAck { epoch } => {
                let frame = Frame::epoch_ack(epoch, d);
                timed_send(
                    &mut txs,
                    Endpoint::Requester,
                    &frame,
                    TraceId::session(epoch),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_stitches_disjoint_spans() {
        let mut asm = Assembly::new(2, 3, (4, 10));
        assert!(!asm.complete());
        let top = Tensor::from_fn([2, 2, 3], |c, y, x| (100 * c + 10 * y + x) as f32);
        let bottom = Tensor::from_fn([2, 4, 3], |c, y, x| -((100 * c + 10 * y + x) as f32));
        asm.insert(4, &top).unwrap();
        assert!(!asm.complete());
        asm.insert(6, &bottom).unwrap();
        assert!(asm.complete());
        let band = asm.into_band();
        assert_eq!(band.shape(), [2, 6, 3]);
        assert_eq!(band.get(0, 0, 1), 1.0); // top row 4 -> local row 0
        assert_eq!(band.get(1, 2, 0), -100.0); // bottom row 6 -> local row 2
    }

    #[test]
    fn assembly_rejects_out_of_range_rows() {
        let mut asm = Assembly::new(1, 2, (0, 4));
        let rows = Tensor::zeros([1, 2, 2]);
        assert!(asm.insert(3, &rows).is_err()); // 3..5 leaves needed 0..4
        let wrong_w = Tensor::zeros([1, 1, 3]);
        assert!(asm.insert(0, &wrong_w).is_err());
    }
}
