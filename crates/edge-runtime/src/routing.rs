//! Per-epoch routing: which rows of which volume each endpoint needs,
//! produces and forwards — versioned so the plan can be swapped while the
//! cluster serves.
//!
//! A [`RouteTable`] is derived once from an [`edgesim::ExecutionPlan`]; at
//! run time providers only look rows up, never plan.  Stages are numbered
//! `0..num_volumes` for the layer-volumes, and stage `num_volumes` is the
//! finish stage: the head gather (models with an FC head) or the result
//! return to the requester (models without).
//!
//! Since the plan is no longer a deploy-time constant, the table is wrapped
//! in a [`PlanEpoch`] — the plan, its routing, and a monotonically
//! increasing epoch id — and published through an [`EpochSlot`], an
//! `ArcSwap`-style shared slot the provider worker threads read on every
//! frame instead of owning a clone.  [`crate::Session::apply_plan`] builds
//! the next epoch, drains the in-flight window, broadcasts it, and stores
//! it into each worker's slot.

use crate::wire::FrameKind;
use crate::{Result, RuntimeError};
use cnn_model::{Model, PartPlan};
use edgesim::{Endpoint, ExecutionPlan};
use std::collections::HashSet;
use std::sync::{Arc, RwLock};

/// Overlap of two half-open row ranges, if non-empty.
pub fn overlap(a: (usize, usize), b: (usize, usize)) -> Option<(usize, usize)> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    (lo < hi).then_some((lo, hi))
}

/// One outgoing transfer of a provider's volume output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendTarget {
    /// Destination endpoint.
    pub to: Endpoint,
    /// Rows to carry, in full-feature-map coordinates of the volume output.
    pub rows: (usize, usize),
    /// Stage the rows feed at the destination.
    pub stage: u32,
    /// Frame kind (`Rows` between providers, `Result` back to the
    /// requester).
    pub kind: FrameKind,
}

/// The precomputed routing of one execution plan.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Split-part plans, `[volume][device]`.
    pub parts: Vec<Vec<PartPlan>>,
    /// Input rows each device needs per volume (`None` for empty parts).
    pub needs: Vec<Vec<Option<(usize, usize)>>>,
    /// Output rows each device produces per volume.
    pub out_ranges: Vec<Vec<(usize, usize)>>,
    /// `(channels, width)` of each volume's input feature map.
    pub in_geom: Vec<(usize, usize)>,
    /// `(channels, width)` of each volume's output feature map.
    pub out_geom: Vec<(usize, usize)>,
    /// The FC-head device, if the model has a head.
    pub head_device: Option<usize>,
    /// Number of layer-volumes.
    pub num_volumes: usize,
    /// Output height of the last volume.
    pub last_height: usize,
    /// Number of provider devices.
    pub num_devices: usize,
}

impl RouteTable {
    /// Builds the routing table for `plan` on `model`.
    pub fn new(model: &Model, plan: &ExecutionPlan) -> Result<Self> {
        plan.validate(model).map_err(RuntimeError::from)?;
        let num_volumes = plan.num_volumes();
        let num_devices = plan
            .volumes
            .first()
            .map(|v| v.parts.len())
            .ok_or_else(|| RuntimeError::Execution("plan has no volumes".into()))?;

        let mut parts = Vec::with_capacity(num_volumes);
        let mut needs = Vec::with_capacity(num_volumes);
        let mut out_ranges = Vec::with_capacity(num_volumes);
        let mut in_geom = Vec::with_capacity(num_volumes);
        let mut out_geom = Vec::with_capacity(num_volumes);

        for assignment in &plan.volumes {
            let volume = assignment.parts[0].volume;
            let first = &model.layers()[volume.start];
            let last = &model.layers()[volume.end - 1];
            in_geom.push((first.input.c, first.input.w));
            out_geom.push((last.output.c, last.output.w));
            needs.push(
                assignment
                    .parts
                    .iter()
                    .map(|p| (!p.is_empty()).then_some(p.input_rows))
                    .collect(),
            );
            out_ranges.push(assignment.parts.iter().map(|p| p.output_rows).collect());
            parts.push(assignment.parts.clone());
        }

        let last_volume = plan.volumes.last().expect("validated plan").parts[0].volume;
        let last_height = last_volume.last_output_height(model);

        Ok(Self {
            parts,
            needs,
            out_ranges,
            in_geom,
            out_geom,
            head_device: plan.head_device,
            num_volumes,
            last_height,
            num_devices,
        })
    }

    /// The finish stage index (head gather / result return).
    pub fn finish_stage(&self) -> u32 {
        self.num_volumes as u32
    }

    /// Rows device `d` must assemble for `stage` before it can compute
    /// (`None`: nothing to do at that stage).
    pub fn stage_needs(&self, stage: usize, d: usize) -> Option<(usize, usize)> {
        if stage < self.num_volumes {
            self.needs[stage][d]
        } else if self.head_device == Some(d) {
            Some((0, self.last_height))
        } else {
            None
        }
    }

    /// `(channels, width)` of the band assembled at `stage`.
    pub fn stage_geom(&self, stage: usize) -> (usize, usize) {
        if stage < self.num_volumes {
            self.in_geom[stage]
        } else {
            self.out_geom[self.num_volumes - 1]
        }
    }

    /// Where device `d` sends its output of volume `v`, excluding rows it
    /// keeps locally.
    pub fn send_targets(&self, v: usize, d: usize) -> Vec<SendTarget> {
        let mine = self.out_ranges[v][d];
        if mine.0 == mine.1 {
            return Vec::new();
        }
        let mut targets = Vec::new();
        if v + 1 < self.num_volumes {
            for (j, need) in self.needs[v + 1].iter().enumerate() {
                if j == d {
                    continue;
                }
                if let Some(rows) = need.and_then(|n| overlap(mine, n)) {
                    targets.push(SendTarget {
                        to: Endpoint::Device(j),
                        rows,
                        stage: (v + 1) as u32,
                        kind: FrameKind::Rows,
                    });
                }
            }
        } else {
            match self.head_device {
                Some(h) if h != d => targets.push(SendTarget {
                    to: Endpoint::Device(h),
                    rows: mine,
                    stage: self.finish_stage(),
                    kind: FrameKind::Rows,
                }),
                Some(_) => {} // Head device keeps its own rows locally.
                None => targets.push(SendTarget {
                    to: Endpoint::Requester,
                    rows: mine,
                    stage: self.finish_stage(),
                    kind: FrameKind::Result,
                }),
            }
        }
        targets
    }

    /// The requester's scatter list for one image: per device, the rows of
    /// the model input to send for volume 0.
    pub fn scatter_targets(&self) -> Vec<(usize, (usize, usize))> {
        self.needs[0]
            .iter()
            .enumerate()
            .filter_map(|(d, need)| need.map(|rows| (d, rows)))
            .collect()
    }

    /// The weight layers device `d` must hold resident to execute this
    /// routing: every layer of its non-empty parts, plus the FC head on the
    /// head device.  This is the sharding key of [`crate::Runtime::deploy`]
    /// and the diff basis of [`crate::Session::apply_plan`]'s delta shards.
    pub fn keep_layers(&self, model: &Model, d: usize) -> HashSet<usize> {
        let mut keep: HashSet<usize> = self
            .parts
            .iter()
            .filter(|volume| !volume[d].is_empty())
            .flat_map(|volume| volume[d].layers.iter().map(|lr| lr.layer))
            .collect();
        if self.head_device == Some(d) {
            keep.extend(model.head_layers().iter().map(|l| l.index));
        }
        keep
    }
}

/// One version of the execution plan: the plan itself, its precomputed
/// routing, and the epoch id that orders it against past and future plans.
#[derive(Debug, Clone)]
pub struct PlanEpoch {
    /// Monotonically increasing epoch id (`0` at deploy).
    pub id: u64,
    /// The execution plan serving in this epoch.
    pub plan: ExecutionPlan,
    /// The routing derived from the plan.
    pub route: RouteTable,
    /// Whether inter-device `Rows` frames travel as int8 (q8 slabs) this
    /// epoch.  Negotiated at deploy/reconfigure time: every participant of
    /// an epoch agrees, so a band producer quantizes exactly when its
    /// consumers expect quantized frames.  `Result` frames stay f32.
    pub wire_q8: bool,
}

impl PlanEpoch {
    /// Builds epoch `id` for `plan` on `model` (f32 activation transfer).
    pub fn new(id: u64, model: &Model, plan: &ExecutionPlan) -> Result<Self> {
        Ok(Self {
            id,
            plan: plan.clone(),
            route: RouteTable::new(model, plan)?,
            wire_q8: false,
        })
    }

    /// Switches this epoch's inter-device activation transfer to int8.
    pub fn with_wire_q8(mut self, on: bool) -> Self {
        self.wire_q8 = on;
        self
    }
}

/// An `ArcSwap`-style publication slot for the current [`PlanEpoch`].
///
/// Readers (`load`) take a cheap shared lock and clone the `Arc`; the single
/// writer (`store`) swaps the `Arc` atomically under the write lock.  Built
/// on `std::sync::RwLock` because the workspace vendors no lock-free swap
/// crate — the read path is a handful of nanoseconds against kernels that
/// run for milliseconds, so the simplicity is free.
#[derive(Debug)]
pub struct EpochSlot {
    slot: RwLock<Arc<PlanEpoch>>,
}

impl EpochSlot {
    /// A slot initially publishing `epoch`.
    pub fn new(epoch: PlanEpoch) -> Self {
        Self {
            slot: RwLock::new(Arc::new(epoch)),
        }
    }

    /// The currently published epoch.
    pub fn load(&self) -> Arc<PlanEpoch> {
        Arc::clone(&self.slot.read().expect("epoch slot poisoned"))
    }

    /// Publishes `epoch`, replacing the previous one.  Readers holding the
    /// old `Arc` keep routing in-flight work by it; new loads see the new
    /// epoch.
    pub fn store(&self, epoch: PlanEpoch) {
        *self.slot.write().expect("epoch slot poisoned") = Arc::new(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::{LayerOp, PartitionScheme, VolumeSplit};
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "route-test",
            Shape::new(3, 32, 32),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    fn two_volume_plan(model: &Model, n: usize) -> ExecutionPlan {
        let scheme = PartitionScheme::new(model, vec![0, 2, 3]).unwrap();
        let splits: Vec<VolumeSplit> = scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(n, v.last_output_height(model)))
            .collect();
        ExecutionPlan::from_splits(model, &scheme, &splits, n).unwrap()
    }

    #[test]
    fn needs_and_geometry() {
        let m = model();
        let plan = two_volume_plan(&m, 2);
        let route = RouteTable::new(&m, &plan).unwrap();
        assert_eq!(route.num_volumes, 2);
        assert_eq!(route.num_devices, 2);
        assert_eq!(route.in_geom[0], (3, 32));
        // Second volume consumes the pooled 8-channel 16-wide map.
        assert_eq!(route.in_geom[1], (8, 16));
        assert_eq!(route.out_geom[1], (16, 16));
        assert_eq!(route.last_height, 16);
        // Both devices need a slice of the input image.
        assert!(route.needs[0].iter().all(|n| n.is_some()));
    }

    #[test]
    fn interior_volume_routes_halo_to_peers() {
        let m = model();
        let plan = two_volume_plan(&m, 2);
        let route = RouteTable::new(&m, &plan).unwrap();
        // Device 0 produces the top half of volume 0's output; device 1's
        // part of volume 1 needs a halo band reaching into it.
        let targets = route.send_targets(0, 0);
        assert!(targets
            .iter()
            .any(|t| t.to == Endpoint::Device(1) && t.kind == FrameKind::Rows && t.stage == 1));
        // Rows sent must be inside device 0's own output.
        let mine = route.out_ranges[0][0];
        for t in &targets {
            assert!(t.rows.0 >= mine.0 && t.rows.1 <= mine.1);
        }
    }

    #[test]
    fn last_volume_routes_to_head() {
        let m = model();
        let plan = two_volume_plan(&m, 2);
        let route = RouteTable::new(&m, &plan).unwrap();
        let head = route.head_device.unwrap();
        let other = 1 - head;
        let targets = route.send_targets(1, other);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].to, Endpoint::Device(head));
        assert_eq!(targets[0].stage, route.finish_stage());
        // The head keeps its own rows local.
        assert!(route.send_targets(1, head).is_empty());
        assert_eq!(
            route.stage_needs(route.finish_stage() as usize, head),
            Some((0, 16))
        );
        assert_eq!(
            route.stage_needs(route.finish_stage() as usize, other),
            None
        );
    }

    #[test]
    fn headless_model_routes_results_to_requester() {
        let m = Model::new(
            "nohead",
            Shape::new(3, 16, 16),
            &[LayerOp::conv(4, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let scheme = PartitionScheme::single_volume(&m);
        let split = VolumeSplit::equal(2, m.prefix_output().h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        let route = RouteTable::new(&m, &plan).unwrap();
        for d in 0..2 {
            let targets = route.send_targets(0, d);
            assert_eq!(targets.len(), 1);
            assert_eq!(targets[0].to, Endpoint::Requester);
            assert_eq!(targets[0].kind, FrameKind::Result);
        }
    }

    #[test]
    fn empty_parts_are_skipped() {
        let m = model();
        let plan = ExecutionPlan::offload(&m, 1, 3).unwrap();
        let route = RouteTable::new(&m, &plan).unwrap();
        assert_eq!(route.scatter_targets().len(), 1);
        assert_eq!(route.scatter_targets()[0].0, 1);
        assert!(route.send_targets(0, 0).is_empty());
        assert_eq!(route.stage_needs(0, 0), None);
        assert_eq!(route.stage_needs(0, 2), None);
    }

    #[test]
    fn overlap_helper() {
        assert_eq!(overlap((0, 5), (3, 9)), Some((3, 5)));
        assert_eq!(overlap((0, 3), (3, 9)), None);
        assert_eq!(overlap((4, 8), (0, 16)), Some((4, 8)));
    }

    #[test]
    fn keep_layers_covers_parts_and_head() {
        let m = model();
        let offload = ExecutionPlan::offload(&m, 1, 3).unwrap();
        let route = RouteTable::new(&m, &offload).unwrap();
        // The offload target holds every layer (prefix + head); idle
        // devices hold nothing.
        assert_eq!(route.keep_layers(&m, 1).len(), m.layers().len());
        assert!(route.keep_layers(&m, 0).is_empty());
        assert!(route.keep_layers(&m, 2).is_empty());

        let split = two_volume_plan(&m, 2);
        let route = RouteTable::new(&m, &split).unwrap();
        let head = route.head_device.unwrap();
        assert!(route.keep_layers(&m, head).len() > route.keep_layers(&m, 1 - head).len());
    }

    #[test]
    fn epoch_slot_publishes_new_epochs() {
        let m = model();
        let a = PlanEpoch::new(0, &m, &two_volume_plan(&m, 2)).unwrap();
        let slot = EpochSlot::new(a);
        assert_eq!(slot.load().id, 0);
        let held = slot.load();
        let b = PlanEpoch::new(1, &m, &ExecutionPlan::offload(&m, 0, 2).unwrap()).unwrap();
        slot.store(b);
        // New loads see the new epoch; the old Arc stays valid for frames
        // still routed by it.
        assert_eq!(slot.load().id, 1);
        assert_eq!(held.id, 0);
        assert_eq!(held.route.num_volumes, 2);
    }
}
