//! A concurrent execution runtime for DistrEdge execution plans.
//!
//! Where `edgesim` *predicts* what a distribution strategy would do on the
//! paper's testbed, this crate *actually runs it*: one provider worker per
//! device, each with the paper's three-thread receive / compute / send
//! pipeline (§V-A), executing real `tensor` conv/pool/linear kernels on the
//! split-parts of each layer-volume and exchanging halo row bands over a
//! [`transport::Transport`].  The requester streams several images in
//! flight, so pipelining across providers is real concurrency, not a model.
//!
//! * [`wire`] — the length-prefixed binary frame format carrying tensor
//!   slabs plus (image, stage, row range) routing metadata,
//! * [`transport`] — the transport abstraction with an in-process channel
//!   fabric (default), a loopback-TCP fabric, and a token-bucket bandwidth
//!   shaper driven by `netsim` traces,
//! * [`routing`] — the per-epoch routing table derived from an
//!   [`edgesim::ExecutionPlan`] ([`routing::PlanEpoch`]), published to the
//!   workers through an `ArcSwap`-style [`routing::EpochSlot`],
//! * [`provider`] — the three-thread provider worker,
//! * [`session`] — the serving API: [`Runtime::deploy`] keeps the cluster
//!   resident and returns a [`Session`] with credit-gated `submit`,
//!   `wait` / `wait_timeout` / `try_recv`, mid-stream `metrics()`
//!   snapshots, a hot [`Session::apply_plan`] swap (drain the window,
//!   reconfigure with delta weight shards, flip the epoch — no redeploy)
//!   and a draining `shutdown()`,
//! * [`runtime`] — one-shot batch wrappers (`execute*`) over the session,
//! * [`report`] — measured metrics plus the [`report::MeasuredCompute`]
//!   bridge that feeds measured kernel times back into the simulator so
//!   predictions can be validated against execution.
//!
//! # Example
//!
//! Deploy once, then serve: submissions are credit-gated by
//! `max_in_flight`, outputs are claimed by ticket, and the cluster stays
//! resident between waves until `shutdown`.
//!
//! ```
//! use cnn_model::exec::{deterministic_input, ModelWeights};
//! use cnn_model::{LayerOp, Model};
//! use edgesim::ExecutionPlan;
//! use edge_runtime::{Runtime, RuntimeOptions};
//! use tensor::Shape;
//!
//! let model = Model::new(
//!     "tiny",
//!     Shape::new(2, 16, 16),
//!     &[LayerOp::conv(4, 3, 1, 1), LayerOp::pool(2, 2), LayerOp::fc(4)],
//! )
//! .unwrap();
//! let plan = ExecutionPlan::offload(&model, 0, 2).unwrap();
//! let weights = ModelWeights::deterministic(&model, 7);
//! let options = RuntimeOptions::default().with_max_in_flight(2);
//!
//! let session = Runtime::deploy_in_process(&model, &plan, &weights, &options).unwrap();
//! // First wave.
//! let ticket = session.submit(&deterministic_input(&model, 1)).unwrap();
//! let output = session.wait(ticket).unwrap();
//! assert_eq!(output.shape(), [4, 1, 1]);
//! // Mid-stream measurement, then a second wave on the same deployment.
//! assert_eq!(session.metrics().images, 1);
//! let ticket = session.submit(&deterministic_input(&model, 2)).unwrap();
//! session.wait(ticket).unwrap();
//! let report = session.shutdown().unwrap();
//! assert_eq!(report.images, 2);
//! ```

pub mod provider;
pub mod report;
pub mod routing;
pub mod runtime;
pub mod session;
pub mod transport;
pub mod wire;

pub use provider::ProviderWeights;
pub use report::{DeviceMetrics, MeasuredCompute, RuntimeReport};
pub use routing::{EpochSlot, PlanEpoch, RouteTable};
pub use runtime::{execute, execute_in_process, RuntimeOptions, RuntimeOutcome};
pub use session::{ResyncReport, Runtime, Session, SessionLoad, SwapReport, Ticket};
pub use transport::{ChannelTransport, ShapedTransport, TcpTransport, Transport};
pub use wire::{Frame, FrameKind, ReconfigurePayload, WeightDelta, MAX_FRAME_LEN};

use edgesim::Endpoint;
use std::fmt;

/// What class of transport failure occurred — reconnect logic keys off this
/// to decide whether a retry can possibly help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportErrorKind {
    /// An I/O operation failed mid-flight (reset, broken pipe, short read).
    Io,
    /// The peer is gone: EOF, refused connection, or a closed channel.
    Disconnected,
    /// A deadline elapsed waiting on the peer.
    Timeout,
    /// The peer sent bytes that violate the wire protocol (bad magic,
    /// oversized length prefix, unknown frame kind, epoch misuse).
    Protocol,
    /// The endpoint/topology itself is wrong (unknown peer, inbox reused).
    Config,
}

/// A structured transport failure: which peer, what class, and detail text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// The peer the failure is attributed to, when known.
    pub peer: Option<Endpoint>,
    /// Failure class; drives retry decisions.
    pub kind: TransportErrorKind,
    /// Human-readable detail.
    pub detail: String,
}

impl TransportError {
    /// A new error of `kind` with no peer attribution.
    pub fn new(kind: TransportErrorKind, detail: impl Into<String>) -> Self {
        Self {
            peer: None,
            kind,
            detail: detail.into(),
        }
    }

    /// Attributes the error to `peer`.
    pub fn at(mut self, peer: Endpoint) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Whether reconnecting and retrying can plausibly clear this error.
    /// Protocol violations and topology mistakes are never retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.kind,
            TransportErrorKind::Io | TransportErrorKind::Disconnected | TransportErrorKind::Timeout
        )
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TransportErrorKind::Io => "io",
            TransportErrorKind::Disconnected => "disconnected",
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::Protocol => "protocol",
            TransportErrorKind::Config => "config",
        };
        match self.peer {
            Some(peer) => write!(f, "[{kind}] {peer:?}: {}", self.detail),
            None => write!(f, "[{kind}] {}", self.detail),
        }
    }
}

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// A wire frame could not be decoded.
    Wire(String),
    /// The transport failed (peer gone, socket error, ...).
    Transport(TransportError),
    /// The plan and model disagree, or a kernel failed.
    Execution(String),
    /// A worker thread panicked.
    WorkerPanic(String),
}

impl RuntimeError {
    /// An I/O-class transport error (retryable).
    pub fn transport_io(detail: impl Into<String>) -> Self {
        RuntimeError::Transport(TransportError::new(TransportErrorKind::Io, detail))
    }

    /// A peer-gone transport error (retryable).
    pub fn transport_disconnected(detail: impl Into<String>) -> Self {
        RuntimeError::Transport(TransportError::new(
            TransportErrorKind::Disconnected,
            detail,
        ))
    }

    /// A deadline-elapsed transport error (retryable).
    pub fn transport_timeout(detail: impl Into<String>) -> Self {
        RuntimeError::Transport(TransportError::new(TransportErrorKind::Timeout, detail))
    }

    /// A wire-protocol violation (not retryable).
    pub fn transport_protocol(detail: impl Into<String>) -> Self {
        RuntimeError::Transport(TransportError::new(TransportErrorKind::Protocol, detail))
    }

    /// A topology/config mistake (not retryable).
    pub fn transport_config(detail: impl Into<String>) -> Self {
        RuntimeError::Transport(TransportError::new(TransportErrorKind::Config, detail))
    }

    /// The structured transport payload, when this is a transport error.
    pub fn as_transport(&self) -> Option<&TransportError> {
        match self {
            RuntimeError::Transport(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Wire(m) => write!(f, "wire error: {m}"),
            RuntimeError::Transport(m) => write!(f, "transport error: {m}"),
            RuntimeError::Execution(m) => write!(f, "execution error: {m}"),
            RuntimeError::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<cnn_model::ModelError> for RuntimeError {
    fn from(e: cnn_model::ModelError) -> Self {
        RuntimeError::Execution(e.to_string())
    }
}

impl From<tensor::TensorError> for RuntimeError {
    fn from(e: tensor::TensorError) -> Self {
        RuntimeError::Execution(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;
