//! Measured metrics of a runtime execution, in the simulator's vocabulary.
//!
//! [`RuntimeReport`] embeds an [`edgesim::SimReport`] built from *measured*
//! per-image latencies and per-device compute/transmission breakdowns, so
//! every consumer of simulator output (figure binaries, comparisons, tests)
//! can read runtime measurements unchanged.  [`MeasuredCompute`] closes the
//! loop in the other direction: it feeds the runtime's measured kernel times
//! into the simulator as a `PartCompute` backend, which is how the
//! runtime-vs-simulator agreement tests work.

use cnn_model::{LayerVolume, Model, PartPlan};
use device_profile::{DeviceSpec, DeviceType};
use edgesim::{simulate, Cluster, ExecutionPlan, PartCompute, SimOptions, SimReport};
use netsim::{LinkConfig, TraceKind};
use serde::Serialize;
use std::collections::HashMap;

/// Per-device measurements of one execution.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DeviceMetrics {
    /// Total kernel time across all images (split-parts plus head).
    pub compute_ms: f64,
    /// Wall time this device's send thread spent on the wire.
    pub tx_ms: f64,
    /// Wall time the requester spent scattering input rows to this device.
    pub scatter_ms: f64,
    /// Kernel time per volume (summed over images).
    pub per_volume_ms: Vec<f64>,
    /// Images of each volume this device computed.
    pub per_volume_images: Vec<u64>,
    /// FC-head kernel time (head device only).
    pub head_ms: f64,
    /// Head executions.
    pub head_images: u64,
    /// Frames / bytes in and out of the transport.
    pub frames_in: u64,
    /// Encoded bytes received.
    pub bytes_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Encoded bytes sent.
    pub bytes_out: u64,
    /// High-water mark of distinct images simultaneously in assembly on
    /// this device — pipelining evidence.
    pub max_concurrent_images: usize,
    /// Weight layers this device packed into GEMM panels — moves at deploy
    /// and on `Reconfigure` delta installs only, never per frame (the
    /// residency tests assert exactly that).
    pub layers_packed: u64,
}

/// The full measurement of one runtime execution.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeReport {
    /// Measured metrics in the simulator's report shape: per-image latency,
    /// IPS over the stream, per-device compute/transmission means.
    pub sim: SimReport,
    /// Images streamed.
    pub images: usize,
    /// Wall-clock time of the whole stream.
    pub wall_ms: f64,
    /// Throughput over the wall clock — with pipelining this exceeds the
    /// closed-loop `sim.ips` (which divides by summed latencies).
    pub measured_ips: f64,
    /// High-water mark of images in flight at the requester.
    pub max_in_flight_observed: usize,
    /// The serving epoch the snapshot was taken under (`0` until the first
    /// [`crate::Session::apply_plan`] swap).  Metrics windows taken before
    /// and after a swap carry different epochs, so consumers (the online
    /// adaptation, dashboards) can tell them apart.
    pub epoch: u64,
    /// Per-device measurements.
    pub devices: Vec<DeviceMetrics>,
}

impl RuntimeReport {
    /// Builds a report from requester-side measurements and per-device
    /// counters.  `latencies_ms` holds one entry per *completed* image (in
    /// completion order), which is what makes mid-stream snapshots and
    /// final reports share one constructor.
    pub fn from_measured(
        latencies_ms: Vec<f64>,
        devices: Vec<DeviceMetrics>,
        wall_ms: f64,
        max_in_flight_observed: usize,
        epoch: u64,
    ) -> Self {
        let images = latencies_ms.len();
        let compute_totals: Vec<f64> = devices.iter().map(|m| m.compute_ms).collect();
        let tx_totals: Vec<f64> = devices.iter().map(|m| m.tx_ms + m.scatter_ms).collect();
        let sim = SimReport::from_raw(latencies_ms, compute_totals, tx_totals);
        let measured_ips = if wall_ms > 0.0 {
            images as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        Self {
            sim,
            images,
            wall_ms,
            measured_ips,
            max_in_flight_observed,
            epoch,
            devices,
        }
    }
}

/// An `edgesim` compute backend backed by a runtime's measured kernel
/// times: device `d`'s part of volume `v` costs the mean wall time the
/// runtime measured for exactly that (device, volume) pair.
///
/// Only meaningful for the plan the report was measured under — the lookup
/// is by layer-volume identity, not by part geometry.
#[derive(Debug, Clone)]
pub struct MeasuredCompute {
    volume_index: HashMap<LayerVolume, usize>,
    mean_ms: Vec<Vec<f64>>,
    head_mean_ms: f64,
}

impl MeasuredCompute {
    /// Builds the backend from a report and the plan it measured.
    pub fn from_report(report: &RuntimeReport, plan: &ExecutionPlan) -> Self {
        let volume_index: HashMap<LayerVolume, usize> = plan
            .volumes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.parts[0].volume, i))
            .collect();
        let mean_ms = report
            .devices
            .iter()
            .map(|m| {
                m.per_volume_ms
                    .iter()
                    .zip(&m.per_volume_images)
                    .map(|(ms, n)| if *n > 0 { ms / *n as f64 } else { 0.0 })
                    .collect()
            })
            .collect();
        let head_mean_ms = report
            .devices
            .iter()
            .filter(|m| m.head_images > 0)
            .map(|m| m.head_ms / m.head_images as f64)
            .fold(0.0, f64::max);
        Self {
            volume_index,
            mean_ms,
            head_mean_ms,
        }
    }
}

impl PartCompute for MeasuredCompute {
    fn part_compute_ms(&self, device: usize, _model: &Model, part: &PartPlan) -> f64 {
        if part.is_empty() {
            return 0.0;
        }
        self.volume_index
            .get(&part.volume)
            .map(|&i| self.mean_ms[device][i])
            .unwrap_or(0.0)
    }

    fn head_compute_ms(&self, _device: usize, _model: &Model) -> f64 {
        self.head_mean_ms
    }
}

/// Simulates the plan with the report's measured kernel times over an ideal
/// wire (the in-process transport's regime: effectively infinite bandwidth,
/// no I/O overhead).  Comparing the returned `ips` against the runtime's
/// closed-loop `sim.ips` validates the simulator's *structure* — dependency
/// graph, gather/compute ordering, head placement — against real execution.
pub fn predicted_report(
    model: &Model,
    plan: &ExecutionPlan,
    report: &RuntimeReport,
    num_images: usize,
) -> SimReport {
    let n = report.devices.len();
    let devices = (0..n)
        .map(|d| DeviceSpec::new(format!("measured-{d}"), DeviceType::Xavier))
        .collect();
    let ideal = LinkConfig {
        kind: TraceKind::Constant { mbps: 1e7 },
        io_overhead_ms: 0.0,
    };
    let cluster = Cluster::uniform(devices, ideal);
    let compute = MeasuredCompute::from_report(report, plan);
    simulate(
        model,
        &cluster,
        &compute,
        plan,
        SimOptions {
            num_images,
            start_ms: 0.0,
        },
    )
}

/// Like [`predicted_report`] but over a real cluster's links — the
/// comparison point for shaped-transport runs.
pub fn predicted_report_on_cluster(
    model: &Model,
    cluster: &Cluster,
    plan: &ExecutionPlan,
    report: &RuntimeReport,
    num_images: usize,
) -> SimReport {
    let compute = MeasuredCompute::from_report(report, plan);
    simulate(
        model,
        cluster,
        &compute,
        plan,
        SimOptions {
            num_images,
            start_ms: 0.0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::{LayerOp, PartitionScheme, VolumeSplit};
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "report-test",
            Shape::new(2, 16, 16),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(3),
            ],
        )
        .unwrap()
    }

    fn report_for(plan: &ExecutionPlan, per_volume_ms: &[Vec<f64>]) -> RuntimeReport {
        let num_volumes = plan.num_volumes();
        let devices = per_volume_ms
            .iter()
            .map(|ms| DeviceMetrics {
                per_volume_ms: ms.clone(),
                per_volume_images: vec![1; num_volumes],
                head_ms: 2.0,
                head_images: 1,
                ..DeviceMetrics::default()
            })
            .collect();
        RuntimeReport {
            sim: SimReport::from_raw(
                vec![10.0],
                vec![0.0; per_volume_ms.len()],
                vec![0.0; per_volume_ms.len()],
            ),
            images: 1,
            wall_ms: 10.0,
            measured_ips: 100.0,
            max_in_flight_observed: 1,
            epoch: 0,
            devices,
        }
    }

    #[test]
    fn measured_compute_looks_up_by_volume() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let split = VolumeSplit::equal(2, m.prefix_output().h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        let report = report_for(&plan, &[vec![5.0], vec![7.5]]);
        let mc = MeasuredCompute::from_report(&report, &plan);
        let part = &plan.volumes[0].parts[0];
        assert_eq!(mc.part_compute_ms(0, &m, part), 5.0);
        assert_eq!(mc.part_compute_ms(1, &m, part), 7.5);
        assert_eq!(mc.head_compute_ms(0, &m), 2.0);
    }

    #[test]
    fn predicted_report_reflects_measured_times() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let split = VolumeSplit::equal(2, m.prefix_output().h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        let slow = predicted_report(&m, &plan, &report_for(&plan, &[vec![50.0], vec![50.0]]), 4);
        let fast = predicted_report(&m, &plan, &report_for(&plan, &[vec![5.0], vec![5.0]]), 4);
        assert!(
            fast.ips > slow.ips * 5.0,
            "fast {} vs slow {}",
            fast.ips,
            slow.ips
        );
    }
}
