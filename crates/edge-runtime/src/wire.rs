//! The binary wire format: length-prefixed frames carrying tensor slabs,
//! tagged with the plan epoch they belong to.
//!
//! Every message between endpoints is one frame:
//!
//! ```text
//! [len: u32]                      -- bytes after this field
//! [magic: u16 = 0xED6E]           -- "edge"
//! [kind: u8]                      -- Rows / Result / Halt / Reconfigure /
//!                                    EpochAck
//! [epoch: u64]                    -- plan epoch the frame belongs to
//! [image: u32]                    -- image sequence number (device index
//!                                    for EpochAck frames)
//! [stage: u32]                    -- volume index the rows feed
//!                                    (num_volumes = head gather / result)
//! [row_lo: u32]                   -- first carried row, full coordinates
//! [body]                          -- tensor::slab encoding of the band,
//!                                    or the raw ReconfigurePayload bytes
//!                                    for Reconfigure frames
//! ```
//!
//! The carried band is `[c, rows, w]`; `row_hi` is implied by `row_lo` plus
//! the slab height.  `Reconfigure` frames carry a [`ReconfigurePayload`]
//! instead of a slab: the next epoch's execution plan plus only the weight
//! layers the receiving device does not already hold resident (the delta
//! shard), so a hot plan swap never re-ships weights a device kept from an
//! earlier epoch.
//!
//! When a deployment negotiates **quantized activation transfer**, `Rows`
//! frames ship their band as a q8 slab (one i8 code per element plus one
//! f32 scale, ~4× smaller) under the dedicated wire kind byte
//! [`KIND_ROWS_Q8`].  The kind byte — not a flag on [`FrameKind`] — marks
//! the quantized body, so an f32 session decoding a q8 frame (or vice
//! versa) still sees a plain `Rows` frame with a usable f32 tensor: the
//! decoder dequantizes into [`Frame::tensor`] and keeps the raw codes in
//! [`Frame::quant`] so re-encoding is byte-exact.  `Result` frames always
//! stay f32 — the requester gets full-precision outputs back.

use crate::{Result, RuntimeError};
use cnn_model::exec::QuantSpec;
use edgesim::ExecutionPlan;
use std::io::{Read, Write};
use tensor::ops::{dequantize_slice, quant_scale, quantize_slice};
use tensor::{slab, Tensor};

/// Frame magic (sanity check against stream desync).
pub const MAGIC: u16 = 0xED6E;

/// Upper bound on a frame's body length (bytes after the length prefix).
///
/// Weight-bearing `Reconfigure` payloads for paper-scale models run to
/// hundreds of megabytes, so the cap is generous — its job is to reject a
/// corrupt or adversarial length prefix *before* the allocation, not to
/// bound legitimate traffic.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Rejects a length prefix larger than [`MAX_FRAME_LEN`] with a typed
/// protocol error, so a corrupt header cannot drive an unbounded allocation.
pub fn check_frame_len(len: usize) -> Result<()> {
    if len > MAX_FRAME_LEN {
        return Err(RuntimeError::transport_protocol(format!(
            "frame length {len} exceeds cap {MAX_FRAME_LEN}"
        )));
    }
    Ok(())
}

/// Byte length of the frame header after the length prefix
/// (magic + kind + epoch + image + stage + row_lo).
const HEADER_LEN: usize = 2 + 1 + 8 + 4 + 4 + 4;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Rows of a volume's input feature map (or of the head gather).
    Rows,
    /// Rows of the final output, heading back to the requester.
    Result,
    /// Orderly shutdown marker.
    Halt,
    /// A plan swap: the next epoch's plan plus the delta weight shard the
    /// receiving device is missing (requester → provider).
    Reconfigure,
    /// A provider's confirmation that it installed an epoch
    /// (provider → requester; `image` carries the device index).
    EpochAck,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Rows => 0,
            FrameKind::Result => 1,
            FrameKind::Halt => 2,
            FrameKind::Reconfigure => 3,
            FrameKind::EpochAck => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(FrameKind::Rows),
            1 => Ok(FrameKind::Result),
            2 => Ok(FrameKind::Halt),
            3 => Ok(FrameKind::Reconfigure),
            4 => Ok(FrameKind::EpochAck),
            other => Err(RuntimeError::Wire(format!("unknown frame kind {other}"))),
        }
    }
}

/// Wire kind byte of a `Rows` frame whose body is a q8 slab.  Maps back to
/// [`FrameKind::Rows`] at decode; the quantized body is visible only via
/// [`Frame::quant`].
pub const KIND_ROWS_Q8: u8 = 5;

/// The int8 codes of a quantized `Rows` frame, kept alongside the
/// dequantized [`Frame::tensor`] so consumers stay precision-agnostic and
/// re-encoding reproduces the received bytes exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantBand {
    /// Symmetric dequantization step of the codes.
    pub scale: f32,
    /// One i8 code per tensor element, CHW order.
    pub data: Vec<i8>,
}

/// One wire message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Plan epoch the frame belongs to.  The swap protocol drains the old
    /// epoch and resumes admission only after every device installed the
    /// new one, so providers reject any data frame whose epoch differs
    /// from their installed epoch as a protocol violation.
    pub epoch: u64,
    /// Image sequence number (device index for `EpochAck` frames).
    pub image: u32,
    /// Volume index the carried rows feed (`num_volumes` for the head
    /// gather / final result).
    pub stage: u32,
    /// First carried row in full-feature-map coordinates.
    pub row_lo: u32,
    /// The row band, `[c, rows, w]` (empty for control frames).  For a
    /// quantized frame this is the *dequantized* view of [`Frame::quant`].
    pub tensor: Tensor,
    /// Raw payload of `Reconfigure` frames (empty for every other kind).
    pub payload: Vec<u8>,
    /// The int8 codes when the frame travels quantized (`Rows` only).
    pub quant: Option<QuantBand>,
}

impl Frame {
    /// A data frame (`Rows` / `Result`) carrying a row band.
    pub fn data(
        kind: FrameKind,
        epoch: u64,
        image: u32,
        stage: u32,
        row_lo: u32,
        tensor: Tensor,
    ) -> Self {
        Frame {
            kind,
            epoch,
            image,
            stage,
            row_lo,
            tensor,
            payload: Vec::new(),
            quant: None,
        }
    }

    /// A `Rows` frame that travels as int8: the band is quantized against
    /// its own max-abs scale here, and `tensor` becomes the dequantized
    /// view — so the sender's local picture of the band matches what every
    /// receiver reconstructs, and `decode(encode(f)) == f` holds bitwise.
    pub fn rows_q8(epoch: u64, image: u32, stage: u32, row_lo: u32, tensor: &Tensor) -> Self {
        let scale = quant_scale(tensor.data());
        let data = quantize_slice(tensor.data(), scale);
        let deq = Tensor::from_vec(tensor.shape(), dequantize_slice(&data, scale))
            .expect("dequantized band keeps its shape");
        Frame {
            kind: FrameKind::Rows,
            epoch,
            image,
            stage,
            row_lo,
            tensor: deq,
            payload: Vec::new(),
            quant: Some(QuantBand { scale, data }),
        }
    }

    /// The halt marker.
    pub fn halt() -> Self {
        Self::data(FrameKind::Halt, 0, 0, 0, 0, Tensor::zeros([0, 0, 0]))
    }

    /// A plan-swap frame installing `epoch` with the given payload bytes.
    pub fn reconfigure(epoch: u64, payload: Vec<u8>) -> Self {
        Frame {
            kind: FrameKind::Reconfigure,
            epoch,
            image: 0,
            stage: 0,
            row_lo: 0,
            tensor: Tensor::zeros([0, 0, 0]),
            payload,
            quant: None,
        }
    }

    /// Device `d`'s confirmation that it installed `epoch`.
    pub fn epoch_ack(epoch: u64, device: usize) -> Self {
        Self::data(
            FrameKind::EpochAck,
            epoch,
            device as u32,
            0,
            0,
            Tensor::zeros([0, 0, 0]),
        )
    }

    /// One past the last carried row.
    pub fn row_hi(&self) -> usize {
        self.row_lo as usize + self.tensor.height()
    }

    fn body_len(&self) -> usize {
        let [c, h, w] = self.tensor.shape();
        let tail = if self.kind == FrameKind::Reconfigure {
            self.payload.len()
        } else if self.kind == FrameKind::Rows && self.quant.is_some() {
            slab::q8_slab_len(c, h, w)
        } else {
            slab::slab_len(c, h, w)
        };
        HEADER_LEN + tail
    }

    /// Byte length of [`Frame::encode`]'s output, without encoding.
    pub fn encoded_len(&self) -> usize {
        4 + self.body_len()
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let body_len = self.body_len();
        let quant = match &self.quant {
            Some(q) if self.kind == FrameKind::Rows => Some(q),
            _ => None,
        };
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(if quant.is_some() {
            KIND_ROWS_Q8
        } else {
            self.kind.to_u8()
        });
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.image.to_le_bytes());
        out.extend_from_slice(&self.stage.to_le_bytes());
        out.extend_from_slice(&self.row_lo.to_le_bytes());
        if self.kind == FrameKind::Reconfigure {
            out.extend_from_slice(&self.payload);
        } else if let Some(q) = quant {
            slab::write_q8_slab(self.tensor.shape().into(), q.scale, &q.data, &mut out)
                .expect("quant codes match the tensor shape");
        } else {
            slab::write_slab(&self.tensor, &mut out);
        }
        out
    }

    /// Decodes a frame body (the bytes *after* the length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Self> {
        if body.len() < HEADER_LEN {
            return Err(RuntimeError::Wire(format!(
                "frame body too short: {} bytes",
                body.len()
            )));
        }
        let magic = u16::from_le_bytes([body[0], body[1]]);
        if magic != MAGIC {
            return Err(RuntimeError::Wire(format!("bad magic {magic:#06x}")));
        }
        let quantized = body[2] == KIND_ROWS_Q8;
        let kind = if quantized {
            FrameKind::Rows
        } else {
            FrameKind::from_u8(body[2])?
        };
        let u32_at =
            |at: usize| u32::from_le_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
        let epoch = u64::from_le_bytes([
            body[3], body[4], body[5], body[6], body[7], body[8], body[9], body[10],
        ]);
        let image = u32_at(11);
        let stage = u32_at(15);
        let row_lo = u32_at(19);
        let (tensor, payload, quant) = if kind == FrameKind::Reconfigure {
            (Tensor::zeros([0, 0, 0]), body[HEADER_LEN..].to_vec(), None)
        } else if quantized {
            let (shape, scale, data, used) = slab::read_q8_slab(&body[HEADER_LEN..])
                .map_err(|e| RuntimeError::Wire(format!("bad q8 slab: {e}")))?;
            if used != body.len() - HEADER_LEN {
                return Err(RuntimeError::Wire(format!(
                    "q8 slab has {} trailing bytes",
                    body.len() - HEADER_LEN - used
                )));
            }
            let tensor = Tensor::from_vec(shape, dequantize_slice(&data, scale))
                .map_err(|e| RuntimeError::Wire(format!("bad q8 slab: {e}")))?;
            (tensor, Vec::new(), Some(QuantBand { scale, data }))
        } else {
            let tensor = slab::from_slab(&body[HEADER_LEN..])
                .map_err(|e| RuntimeError::Wire(format!("bad slab: {e}")))?;
            (tensor, Vec::new(), None)
        };
        Ok(Frame {
            kind,
            epoch,
            image,
            stage,
            row_lo,
            tensor,
            payload,
            quant,
        })
    }

    /// Decodes a full encoding produced by [`Frame::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(RuntimeError::Wire("missing length prefix".into()));
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        check_frame_len(len)?;
        if bytes.len() != 4 + len {
            return Err(RuntimeError::Wire(format!(
                "length prefix {len} does not match body of {}",
                bytes.len() - 4
            )));
        }
        Self::decode_body(&bytes[4..])
    }

    /// Writes the frame to a byte stream (TCP framing).
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&self.encode())
            .map_err(|e| RuntimeError::transport_io(format!("write failed: {e}")))
    }

    /// Reads one frame from a byte stream.  Returns `None` on clean EOF at
    /// a frame boundary; EOF *inside* the length prefix is a truncation
    /// error, not a boundary.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Self>> {
        let mut len_buf = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            match r.read(&mut len_buf[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => {
                    return Err(RuntimeError::transport_io(format!(
                        "EOF inside length prefix after {got} bytes"
                    )))
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(RuntimeError::transport_io(format!("read failed: {e}"))),
            }
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        check_frame_len(len)?;
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)
            .map_err(|e| RuntimeError::transport_io(format!("truncated frame: {e}")))?;
        Self::decode_body(&body).map(Some)
    }
}

/// One layer's weights shipped in a plan swap: a layer the receiving device
/// needs under the new plan but does not hold resident from earlier epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightDelta {
    /// Model-wide index of the layer.
    pub layer: usize,
    /// The layer's weights.
    pub weights: Vec<f32>,
    /// The layer's bias.
    pub bias: Vec<f32>,
}

impl WeightDelta {
    /// Bytes of weight data this delta ships.
    pub fn bytes(&self) -> usize {
        (self.weights.len() + self.bias.len()) * std::mem::size_of::<f32>()
    }
}

/// The body of a [`FrameKind::Reconfigure`] frame: the next epoch's plan
/// plus only the weight layers the receiving device is missing.
///
/// Encoding: `[plan_json_len: u32][plan JSON][n: u32]` followed by `n`
/// entries of `[layer: u32][w_len: u32][b_len: u32][w: f32s][b: f32s]`,
/// then an optional quantization section `[flag: u8 = 1][n: u32][scales:
/// f32s]` (absent or `flag = 0` means the epoch runs f32).  The plan rides
/// as JSON (it is small and already serde-enabled); the weight data — the
/// bulk of the payload — is raw little-endian f32.  Payloads from older
/// peers simply end after the delta entries and decode with no quant spec,
/// so f32 and int8 builds interoperate.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigurePayload {
    /// The execution plan of the new epoch.
    pub plan: ExecutionPlan,
    /// Weight layers the receiving device must add to its resident set.
    pub delta: Vec<WeightDelta>,
    /// Per-layer activation scales when the epoch serves quantized; the
    /// receiver packs its shard against these and ships `Rows` frames as
    /// q8 slabs.
    pub quant: Option<QuantSpec>,
}

impl ReconfigurePayload {
    /// Bytes of weight data shipped (the delta-shard size, excluding the
    /// plan itself).
    pub fn delta_bytes(&self) -> usize {
        self.delta.iter().map(WeightDelta::bytes).sum()
    }

    /// Encodes the payload.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let plan_json = serde_json::to_string(&self.plan)
            .map_err(|e| RuntimeError::Wire(format!("plan serialization failed: {e}")))?;
        let mut out = Vec::with_capacity(4 + plan_json.len() + 4 + self.delta_bytes());
        out.extend_from_slice(&(plan_json.len() as u32).to_le_bytes());
        out.extend_from_slice(plan_json.as_bytes());
        out.extend_from_slice(&(self.delta.len() as u32).to_le_bytes());
        for d in &self.delta {
            out.extend_from_slice(&(d.layer as u32).to_le_bytes());
            out.extend_from_slice(&(d.weights.len() as u32).to_le_bytes());
            out.extend_from_slice(&(d.bias.len() as u32).to_le_bytes());
            for v in &d.weights {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for v in &d.bias {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        match &self.quant {
            Some(spec) => {
                out.push(1);
                out.extend_from_slice(&(spec.scales().len() as u32).to_le_bytes());
                for s in spec.scales() {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            None => out.push(0),
        }
        Ok(out)
    }

    /// Decodes a payload produced by [`ReconfigurePayload::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut at = 0usize;
        let read_u32 = |bytes: &[u8], at: &mut usize| -> Result<u32> {
            let end = *at + 4;
            if end > bytes.len() {
                return Err(RuntimeError::Wire("reconfigure payload truncated".into()));
            }
            let v =
                u32::from_le_bytes([bytes[*at], bytes[*at + 1], bytes[*at + 2], bytes[*at + 3]]);
            *at = end;
            Ok(v)
        };
        let read_f32s = |bytes: &[u8], at: &mut usize, n: usize| -> Result<Vec<f32>> {
            let end = *at + n * 4;
            if end > bytes.len() {
                return Err(RuntimeError::Wire("reconfigure payload truncated".into()));
            }
            let out = bytes[*at..end]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            *at = end;
            Ok(out)
        };

        let plan_len = read_u32(bytes, &mut at)? as usize;
        if at + plan_len > bytes.len() {
            return Err(RuntimeError::Wire("reconfigure payload truncated".into()));
        }
        let plan_json = std::str::from_utf8(&bytes[at..at + plan_len])
            .map_err(|e| RuntimeError::Wire(format!("plan JSON not UTF-8: {e}")))?;
        let plan: ExecutionPlan = serde_json::from_str(plan_json)
            .map_err(|e| RuntimeError::Wire(format!("plan deserialization failed: {e}")))?;
        at += plan_len;

        let n = read_u32(bytes, &mut at)? as usize;
        let mut delta = Vec::with_capacity(n);
        for _ in 0..n {
            let layer = read_u32(bytes, &mut at)? as usize;
            let w_len = read_u32(bytes, &mut at)? as usize;
            let b_len = read_u32(bytes, &mut at)? as usize;
            let weights = read_f32s(bytes, &mut at, w_len)?;
            let bias = read_f32s(bytes, &mut at, b_len)?;
            delta.push(WeightDelta {
                layer,
                weights,
                bias,
            });
        }
        // The quantization section is optional: payloads from builds that
        // predate int8 serving end right after the delta entries.
        let quant = if at == bytes.len() {
            None
        } else {
            let flag = bytes[at];
            at += 1;
            match flag {
                0 => None,
                1 => {
                    let n = read_u32(bytes, &mut at)? as usize;
                    Some(QuantSpec::new(read_f32s(bytes, &mut at, n)?))
                }
                other => {
                    return Err(RuntimeError::Wire(format!(
                        "unknown quant section flag {other}"
                    )))
                }
            }
        };
        if at != bytes.len() {
            return Err(RuntimeError::Wire(format!(
                "reconfigure payload has {} trailing bytes",
                bytes.len() - at
            )));
        }
        Ok(Self { plan, delta, quant })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        Frame::data(
            FrameKind::Rows,
            5,
            42,
            3,
            17,
            Tensor::from_fn([2, 4, 5], |c, y, x| (c * 100 + y * 10 + x) as f32 * 0.5),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = sample_frame();
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.row_hi(), 21);
        assert_eq!(back.epoch, 5);
    }

    #[test]
    fn stream_roundtrip_multiple_frames() {
        let a = sample_frame();
        let b = Frame::halt();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        b.write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(Frame::read_from(&mut cursor).unwrap().unwrap(), a);
        assert_eq!(Frame::read_from(&mut cursor).unwrap().unwrap(), b);
        assert!(Frame::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_frame().encode();
        bytes[4] ^= 0xFF;
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample_frame().encode();
        assert!(Frame::decode(&bytes[..bytes.len() - 2]).is_err());
        assert!(Frame::decode(&bytes[..3]).is_err());
    }

    #[test]
    fn rejects_oversized_length_prefix() {
        // A corrupt header claiming a multi-gigabyte body must be rejected
        // with a typed protocol error before any allocation happens.
        let mut bytes = sample_frame().encode();
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::decode(&bytes).unwrap_err();
        let t = err.as_transport().expect("typed transport error");
        assert_eq!(t.kind, crate::TransportErrorKind::Protocol);
        assert!(!t.is_retryable());

        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&[0u8; 64]);
        let mut cursor = std::io::Cursor::new(stream);
        let err = Frame::read_from(&mut cursor).unwrap_err();
        assert_eq!(
            err.as_transport().unwrap().kind,
            crate::TransportErrorKind::Protocol
        );
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut bytes = sample_frame().encode();
        bytes[6] = 9; // kind byte: 4 length + 2 magic
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn epoch_ack_carries_device_and_epoch() {
        let f = Frame::epoch_ack(7, 2);
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.kind, FrameKind::EpochAck);
        assert_eq!(back.epoch, 7);
        assert_eq!(back.image, 2);
    }

    #[test]
    fn q8_frame_roundtrips_byte_exact_and_shrinks() {
        let t = Tensor::from_fn([8, 16, 12], |c, y, x| {
            ((c + 2 * y) as f32 - x as f32) * 0.17
        });
        let f32_frame = Frame::data(FrameKind::Rows, 2, 9, 1, 4, t.clone());
        let q = Frame::rows_q8(2, 9, 1, 4, &t);
        assert_eq!(q.kind, FrameKind::Rows);
        assert_eq!(q.row_hi(), 20);
        // The q8 body is ~4× smaller than the f32 slab.
        assert!(q.encoded_len() * 3 < f32_frame.encoded_len());
        let bytes = q.encode();
        assert_eq!(bytes.len(), q.encoded_len());
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.encode(), bytes, "re-encode must be byte-exact");
        // The carried view is the dequantized band — within half a step of
        // the original, and identical on sender and receiver.
        let step = back.quant.as_ref().unwrap().scale;
        assert!(back.tensor.max_abs_diff(&t).unwrap() <= 0.5 * step + 1e-6);
        // Truncated q8 bodies are rejected.
        assert!(Frame::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn q8_frame_streams_alongside_f32_frames() {
        // An f32 consumer and a q8 producer share one stream: both kinds
        // decode to FrameKind::Rows with a usable f32 tensor.
        let t = Tensor::from_fn([2, 3, 4], |c, y, x| (c + y + x) as f32 * 0.25 - 0.9);
        let mut buf = Vec::new();
        Frame::rows_q8(1, 0, 0, 0, &t).write_to(&mut buf).unwrap();
        Frame::data(FrameKind::Rows, 1, 1, 0, 0, t.clone())
            .write_to(&mut buf)
            .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let a = Frame::read_from(&mut cursor).unwrap().unwrap();
        let b = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(a.kind, FrameKind::Rows);
        assert!(a.quant.is_some());
        assert_eq!(a.tensor.shape(), t.shape());
        assert_eq!(b.kind, FrameKind::Rows);
        assert!(b.quant.is_none());
        assert_eq!(b.tensor, t);
    }

    fn sample_plan() -> ExecutionPlan {
        use cnn_model::{LayerOp, Model};
        use tensor::Shape;
        let m = Model::new(
            "wire-test",
            Shape::new(2, 16, 12),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(3),
            ],
        )
        .unwrap();
        ExecutionPlan::offload(&m, 1, 2).unwrap()
    }

    #[test]
    fn reconfigure_payload_roundtrips() {
        let payload = ReconfigurePayload {
            plan: sample_plan(),
            delta: vec![
                WeightDelta {
                    layer: 0,
                    weights: vec![0.5, -0.25, 3.0],
                    bias: vec![0.125],
                },
                WeightDelta {
                    layer: 2,
                    weights: vec![],
                    bias: vec![1.0, 2.0],
                },
            ],
            quant: None,
        };
        let bytes = payload.encode().unwrap();
        let back = ReconfigurePayload::decode(&bytes).unwrap();
        assert_eq!(back, payload);
        assert_eq!(back.delta_bytes(), (3 + 1 + 2) * 4);
        // A quant spec rides along and rountrips exactly.
        let quantized = ReconfigurePayload {
            quant: Some(QuantSpec::new(vec![0.0, 0.031, 0.0])),
            ..payload.clone()
        };
        let back = ReconfigurePayload::decode(&quantized.encode().unwrap()).unwrap();
        assert_eq!(back, quantized);
        // A payload that simply ends after the delta entries (an f32-era
        // peer) decodes with no quant spec.
        let legacy = &bytes[..bytes.len() - 1];
        let back = ReconfigurePayload::decode(legacy).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn reconfigure_frame_roundtrips_payload() {
        let payload = ReconfigurePayload {
            plan: sample_plan(),
            delta: vec![WeightDelta {
                layer: 1,
                weights: vec![9.0; 8],
                bias: vec![-1.0],
            }],
            quant: None,
        };
        let frame = Frame::reconfigure(3, payload.encode().unwrap());
        let back = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(back.kind, FrameKind::Reconfigure);
        assert_eq!(back.epoch, 3);
        assert_eq!(ReconfigurePayload::decode(&back.payload).unwrap(), payload);
    }

    #[test]
    fn reconfigure_payload_rejects_truncation() {
        let payload = ReconfigurePayload {
            plan: sample_plan(),
            delta: vec![WeightDelta {
                layer: 0,
                weights: vec![1.0, 2.0],
                bias: vec![],
            }],
            quant: None,
        };
        let bytes = payload.encode().unwrap();
        assert!(ReconfigurePayload::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
