//! The binary wire format: length-prefixed frames carrying tensor slabs.
//!
//! Every message between endpoints is one frame:
//!
//! ```text
//! [len: u32]                      -- bytes after this field
//! [magic: u16 = 0xED6E]           -- "edge"
//! [kind: u8]                      -- Rows / Result / Halt
//! [image: u32]                    -- image sequence number
//! [stage: u32]                    -- volume index the rows feed
//!                                    (num_volumes = head gather / result)
//! [row_lo: u32]                   -- first carried row, full coordinates
//! [slab]                          -- tensor::slab encoding of the band
//! ```
//!
//! The carried band is `[c, rows, w]`; `row_hi` is implied by `row_lo` plus
//! the slab height.

use crate::{Result, RuntimeError};
use std::io::{Read, Write};
use tensor::{slab, Tensor};

/// Frame magic (sanity check against stream desync).
pub const MAGIC: u16 = 0xED6E;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Rows of a volume's input feature map (or of the head gather).
    Rows,
    /// Rows of the final output, heading back to the requester.
    Result,
    /// Orderly shutdown marker.
    Halt,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Rows => 0,
            FrameKind::Result => 1,
            FrameKind::Halt => 2,
        }
    }

    fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(FrameKind::Rows),
            1 => Ok(FrameKind::Result),
            2 => Ok(FrameKind::Halt),
            other => Err(RuntimeError::Wire(format!("unknown frame kind {other}"))),
        }
    }
}

/// One wire message.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Image sequence number.
    pub image: u32,
    /// Volume index the carried rows feed (`num_volumes` for the head
    /// gather / final result).
    pub stage: u32,
    /// First carried row in full-feature-map coordinates.
    pub row_lo: u32,
    /// The row band, `[c, rows, w]`.
    pub tensor: Tensor,
}

impl Frame {
    /// The halt marker.
    pub fn halt() -> Self {
        Frame {
            kind: FrameKind::Halt,
            image: 0,
            stage: 0,
            row_lo: 0,
            tensor: Tensor::zeros([0, 0, 0]),
        }
    }

    /// One past the last carried row.
    pub fn row_hi(&self) -> usize {
        self.row_lo as usize + self.tensor.height()
    }

    /// Byte length of [`Frame::encode`]'s output, without encoding.
    pub fn encoded_len(&self) -> usize {
        let [c, h, w] = self.tensor.shape();
        4 + 2 + 1 + 4 + 4 + 4 + slab::slab_len(c, h, w)
    }

    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let [c, h, w] = self.tensor.shape();
        let body_len = 2 + 1 + 4 + 4 + 4 + slab::slab_len(c, h, w);
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.kind.to_u8());
        out.extend_from_slice(&self.image.to_le_bytes());
        out.extend_from_slice(&self.stage.to_le_bytes());
        out.extend_from_slice(&self.row_lo.to_le_bytes());
        slab::write_slab(&self.tensor, &mut out);
        out
    }

    /// Decodes a frame body (the bytes *after* the length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Self> {
        if body.len() < 15 {
            return Err(RuntimeError::Wire(format!(
                "frame body too short: {} bytes",
                body.len()
            )));
        }
        let magic = u16::from_le_bytes([body[0], body[1]]);
        if magic != MAGIC {
            return Err(RuntimeError::Wire(format!("bad magic {magic:#06x}")));
        }
        let kind = FrameKind::from_u8(body[2])?;
        let image = u32::from_le_bytes([body[3], body[4], body[5], body[6]]);
        let stage = u32::from_le_bytes([body[7], body[8], body[9], body[10]]);
        let row_lo = u32::from_le_bytes([body[11], body[12], body[13], body[14]]);
        let tensor = slab::from_slab(&body[15..])
            .map_err(|e| RuntimeError::Wire(format!("bad slab: {e}")))?;
        Ok(Frame {
            kind,
            image,
            stage,
            row_lo,
            tensor,
        })
    }

    /// Decodes a full encoding produced by [`Frame::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(RuntimeError::Wire("missing length prefix".into()));
        }
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() != 4 + len {
            return Err(RuntimeError::Wire(format!(
                "length prefix {len} does not match body of {}",
                bytes.len() - 4
            )));
        }
        Self::decode_body(&bytes[4..])
    }

    /// Writes the frame to a byte stream (TCP framing).
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&self.encode())
            .map_err(|e| RuntimeError::Transport(format!("write failed: {e}")))
    }

    /// Reads one frame from a byte stream.  Returns `None` on clean EOF at a
    /// frame boundary.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Self>> {
        let mut len_buf = [0u8; 4];
        match r.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(RuntimeError::Transport(format!("read failed: {e}"))),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)
            .map_err(|e| RuntimeError::Transport(format!("truncated frame: {e}")))?;
        Self::decode_body(&body).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        Frame {
            kind: FrameKind::Rows,
            image: 42,
            stage: 3,
            row_lo: 17,
            tensor: Tensor::from_fn([2, 4, 5], |c, y, x| (c * 100 + y * 10 + x) as f32 * 0.5),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = sample_frame();
        let bytes = f.encode();
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.row_hi(), 21);
    }

    #[test]
    fn stream_roundtrip_multiple_frames() {
        let a = sample_frame();
        let b = Frame::halt();
        let mut buf = Vec::new();
        a.write_to(&mut buf).unwrap();
        b.write_to(&mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(Frame::read_from(&mut cursor).unwrap().unwrap(), a);
        assert_eq!(Frame::read_from(&mut cursor).unwrap().unwrap(), b);
        assert!(Frame::read_from(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_frame().encode();
        bytes[4] ^= 0xFF;
        assert!(Frame::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample_frame().encode();
        assert!(Frame::decode(&bytes[..bytes.len() - 2]).is_err());
        assert!(Frame::decode(&bytes[..3]).is_err());
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut bytes = sample_frame().encode();
        bytes[6] = 9; // kind byte: 4 length + 2 magic
        assert!(Frame::decode(&bytes).is_err());
    }
}
