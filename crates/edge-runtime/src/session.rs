//! The long-lived serving session: a deployed cluster that stays resident
//! and serves a continuous image flow (§V-A's streaming loop as state, not
//! a function body).
//!
//! [`Runtime::deploy`] wires the provider workers up once and returns a
//! [`Session`].  From then on:
//!
//! * [`Session::submit`] scatters one image into the pipeline and returns a
//!   [`Ticket`].  Submission is **credit-gated**: at most
//!   `RuntimeOptions::max_in_flight` images are in the pipeline at once, so
//!   a slow provider throttles submitters instead of growing the provider
//!   inboxes without bound (every in-flight image contributes a bounded
//!   number of frames per inbox, so queue depth is bounded by the window).
//!   [`Session::try_submit`] is the non-blocking variant.
//! * [`Session::wait`] blocks until a ticket's output is ready;
//!   [`Session::wait_timeout`] bounds the wait; [`Session::try_recv`] polls
//!   for *any* ready output.
//! * [`Session::metrics`] snapshots a [`RuntimeReport`] mid-stream from the
//!   providers' live counters — the hook online re-planning consumes.
//! * [`Session::apply_plan`] **hot-swaps the execution plan** without a
//!   redeploy: admission stops at the old epoch, the in-flight window
//!   drains (reusing the credit accounting), every provider receives a
//!   `Reconfigure` frame carrying the new plan plus only the weight layers
//!   it is missing (the delta shard — resident weights are never re-sent),
//!   the epoch flips once every provider acks, and admission resumes.  The
//!   cluster, its worker threads and its resident weights survive the swap;
//!   the returned [`SwapReport`] measures the drain gap and the bytes
//!   shipped.
//! * [`Session::shutdown`] drains whatever is still in flight, halts the
//!   workers, joins every thread and returns the final report.
//!
//! A `Session` is `Sync`: multiple client threads can `submit`/`wait` on a
//! shared reference concurrently (see `examples/serving_session.rs`).  The
//! one-shot [`crate::runtime::execute`] entry points are thin wrappers that
//! deploy a session, stream a batch through it and shut it down.

use crate::provider::{spawn_provider, Assembly, ProviderHandle, ProviderWeights, Shared};
use crate::report::RuntimeReport;
use crate::routing::{EpochSlot, PlanEpoch, RouteTable};
use crate::runtime::RuntimeOptions;
use crate::transport::{ChannelTransport, FrameTx, Transport};
use crate::wire::{Frame, FrameKind, ReconfigurePayload, WeightDelta};
use crate::{Result, RuntimeError};
use cnn_model::exec::{ModelWeights, PackedModelWeights, QuantSpec};
use cnn_model::Model;
use edge_telemetry::{Counter, Gauge, Recorder, Stage, Telemetry, TraceId, REQUESTER};
use edgesim::{Endpoint, ExecutionPlan};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::slice::slice_rows;
use tensor::Tensor;

/// How often the gather thread wakes to check the stop flag and the wedge
/// timer when no frame arrives.
const GATHER_TICK: Duration = Duration::from_millis(25);

/// The deployment entry point of the serving API.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runtime;

/// How a deploy makes weights resident: sharded-per-device raw weights
/// (packed at spawn), or one shared full-model pack.
enum DeployWeights {
    Sharded(Arc<ModelWeights>),
    Prepacked {
        raw: Arc<ModelWeights>,
        packed: Arc<PackedModelWeights>,
    },
}

impl Runtime {
    /// Deploys `plan` onto resident provider workers over `transport` and
    /// returns the live [`Session`].  The transport is only borrowed for
    /// wiring; it must outlive the session only if its links do (the
    /// in-process and shaped fabrics hand out self-contained links, the
    /// TCP fabric's accept threads must stay alive).
    pub fn deploy(
        model: &Model,
        plan: &ExecutionPlan,
        weights: &ModelWeights,
        transport: &mut dyn Transport,
        options: &RuntimeOptions,
    ) -> Result<Session> {
        Self::deploy_traced(
            model,
            plan,
            weights,
            transport,
            options,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Runtime::deploy`], but records every stage of every image's
    /// lifecycle (scatter, per-band compute, wire tx/rx, merge, head, wait)
    /// plus swap-protocol events into `telemetry`'s per-thread rings, and
    /// registers the session's live counters (`session.*`) on its metrics
    /// registry.  Pass [`Telemetry::disabled`] (what `deploy` does) to make
    /// every instrumentation point a single relaxed atomic load.
    pub fn deploy_traced(
        model: &Model,
        plan: &ExecutionPlan,
        weights: &ModelWeights,
        transport: &mut dyn Transport,
        options: &RuntimeOptions,
        telemetry: &Telemetry,
    ) -> Result<Session> {
        Self::deploy_impl(
            model,
            plan,
            DeployWeights::Sharded(Arc::new(weights.clone())),
            transport,
            options,
            telemetry,
        )
    }

    /// Deploys with a pre-packed full-model weight artifact shared across
    /// every provider via `Arc` — no per-device sharding, no packing pass
    /// at spawn.  This is the fleet path: K replica sessions of the same
    /// model all deploy from one `Arc<PackedModelWeights>`, so K replicas
    /// cost one packing pass and one resident copy
    /// (`DeviceMetrics::layers_packed` stays 0 on every such provider).
    ///
    /// `raw` is kept for the swap protocol's delta diffing; because every
    /// layer is already resident, `apply_plan` ships zero weight bytes.
    pub fn deploy_prepacked(
        model: &Model,
        plan: &ExecutionPlan,
        raw: Arc<ModelWeights>,
        packed: Arc<PackedModelWeights>,
        transport: &mut dyn Transport,
        options: &RuntimeOptions,
        telemetry: &Telemetry,
    ) -> Result<Session> {
        // Weightless layers (pools) are resident without holding GEMM
        // panels, so residency — not the packed-panel count — is the
        // full-model check.
        let resident = (0..model.len()).filter(|&i| packed.is_resident(i)).count();
        if resident != model.len() {
            return Err(RuntimeError::Execution(format!(
                "shared pack holds {resident} of {} layers; prepacked deploys need the full model resident",
                model.len()
            )));
        }
        Self::deploy_impl(
            model,
            plan,
            DeployWeights::Prepacked { raw, packed },
            transport,
            options,
            telemetry,
        )
    }

    /// Deploys the *requester side only*: the gather thread, the scatter
    /// links and the swap machinery — no local provider workers.  The
    /// transport's device endpoints are expected to be served by remote
    /// processes (the `edge-cluster` crate's `distredge-node`) that were
    /// bootstrapped with the same model, plan and weight shards before this
    /// call.  [`Session::metrics`] consequently reports no per-device
    /// counters; completion and latency accounting are unaffected.
    pub fn deploy_remote(
        model: &Model,
        plan: &ExecutionPlan,
        weights: Arc<ModelWeights>,
        transport: &mut dyn Transport,
        options: &RuntimeOptions,
        telemetry: &Telemetry,
    ) -> Result<Session> {
        if options.max_in_flight == 0 {
            return Err(RuntimeError::Execution(
                "max_in_flight must be at least 1".into(),
            ));
        }
        // Quantized remote deploys calibrate here and ship the spec to the
        // node processes through the handshake (edge-cluster's hello).
        let quant = options
            .quantized
            .then(|| QuantSpec::calibrate(model, &weights))
            .transpose()?;
        let epoch0 = PlanEpoch::new(0, model, plan)?.with_wire_q8(quant.is_some());
        let route = &epoch0.route;
        let n = route.num_devices;
        let keep_sets: Vec<HashSet<usize>> = (0..n).map(|d| route.keep_layers(model, d)).collect();
        let resident_bytes: Vec<usize> = keep_sets
            .iter()
            .map(|k| weights.shard(k).resident_bytes())
            .collect();
        let requester_inbox = transport.inbox(Endpoint::Requester)?;
        let requester_txs: Vec<Box<dyn FrameTx>> = (0..n)
            .map(|d| transport.open(Endpoint::Requester, Endpoint::Device(d)))
            .collect::<Result<_>>()?;
        Self::finish_deploy(
            model,
            plan,
            route,
            requester_inbox,
            requester_txs,
            Vec::new(),
            keep_sets,
            resident_bytes,
            weights,
            quant,
            options,
            telemetry,
        )
    }

    fn deploy_impl(
        model: &Model,
        plan: &ExecutionPlan,
        weights: DeployWeights,
        transport: &mut dyn Transport,
        options: &RuntimeOptions,
        telemetry: &Telemetry,
    ) -> Result<Session> {
        if options.max_in_flight == 0 {
            return Err(RuntimeError::Execution(
                "max_in_flight must be at least 1".into(),
            ));
        }
        // Quantized serving calibrates per-layer activation scales up
        // front (on the sharded path, from the full raw weights; on the
        // prepacked path the artifact must already carry its spec — the
        // panels were built at pack time and cannot change here).  The spec
        // reaches every provider through `Shared` and every later epoch
        // through the `Reconfigure` payloads, and flips the epoch's wire
        // precision to q8.
        let quant: Option<QuantSpec> = if options.quantized {
            Some(match &weights {
                DeployWeights::Sharded(raw) => QuantSpec::calibrate(model, raw)?,
                DeployWeights::Prepacked { packed, .. } => {
                    packed.quant().cloned().ok_or_else(|| {
                        RuntimeError::Execution(
                            "quantized deploy needs a prepacked artifact built with a \
                             QuantSpec (PackedModelWeights::pack_with)"
                                .into(),
                        )
                    })?
                }
            })
        } else {
            None
        };
        let epoch0 = PlanEpoch::new(0, model, plan)?.with_wire_q8(quant.is_some());
        let route = &epoch0.route;
        let n = route.num_devices;

        // Weight residency per device.  On the sharded path each provider
        // is handed only the layers its assigned parts run (plus the FC
        // head on the head device), instead of preloading the full model
        // everywhere; the per-part layer sets are exactly what
        // `cnn_model::memory::part_footprint` accounts — and they are the
        // diff basis `apply_plan` uses to ship only delta shards on a swap.
        // On the prepacked path every device shares the one full-model
        // pack, so every layer is resident and swap deltas are empty.
        let (keep_sets, provider_weights, resident_bytes, raw_weights): (
            Vec<HashSet<usize>>,
            Vec<ProviderWeights>,
            Vec<usize>,
            Arc<ModelWeights>,
        ) = match weights {
            DeployWeights::Sharded(raw) => {
                let keep: Vec<HashSet<usize>> =
                    (0..n).map(|d| route.keep_layers(model, d)).collect();
                let sharded: Vec<ModelWeights> = keep.iter().map(|k| raw.shard(k)).collect();
                let bytes: Vec<usize> = sharded.iter().map(ModelWeights::resident_bytes).collect();
                let pw = sharded.into_iter().map(ProviderWeights::Sharded).collect();
                (keep, pw, bytes, raw)
            }
            DeployWeights::Prepacked { raw, packed } => {
                let all: HashSet<usize> = (0..model.len()).collect();
                let keep = vec![all; n];
                let bytes = vec![packed.resident_bytes(); n];
                let pw = (0..n)
                    .map(|_| ProviderWeights::Prepacked(Arc::clone(&packed)))
                    .collect();
                (keep, pw, bytes, raw)
            }
        };

        // Wire up the fabric: requester inbox first, then one worker per
        // device with links to every peer and back to the requester.
        let requester_inbox = transport.inbox(Endpoint::Requester)?;
        let mut providers: Vec<ProviderHandle> = Vec::with_capacity(n);
        for (d, device_weights) in provider_weights.into_iter().enumerate() {
            let inbox = transport.inbox(Endpoint::Device(d))?;
            let mut txs: HashMap<Endpoint, Box<dyn FrameTx>> = HashMap::new();
            for peer in 0..n {
                if peer != d {
                    txs.insert(
                        Endpoint::Device(peer),
                        transport.open(Endpoint::Device(d), Endpoint::Device(peer))?,
                    );
                }
            }
            txs.insert(
                Endpoint::Requester,
                transport.open(Endpoint::Device(d), Endpoint::Requester)?,
            );
            let shared = Arc::new(Shared {
                model: model.clone(),
                slot: EpochSlot::new(epoch0.clone()),
                quant: quant.clone(),
            });
            providers.push(spawn_provider(
                d,
                shared,
                device_weights,
                inbox,
                txs,
                telemetry,
            ));
        }
        let requester_txs: Vec<Box<dyn FrameTx>> = (0..n)
            .map(|d| transport.open(Endpoint::Requester, Endpoint::Device(d)))
            .collect::<Result<_>>()?;

        Self::finish_deploy(
            model,
            plan,
            route,
            requester_inbox,
            requester_txs,
            providers,
            keep_sets,
            resident_bytes,
            raw_weights,
            quant,
            options,
            telemetry,
        )
    }

    /// The transport-independent tail of every deploy: wait for every local
    /// provider's spawn-time packing pass to finish, then spawn the gather
    /// thread, set up telemetry, assemble the [`Session`].
    ///
    /// The packing barrier runs *before* `t_start` is taken, so the
    /// session's measured wall (and [`RuntimeReport::measured_ips`]) covers
    /// streaming only — deploy-time packing is deploy cost, exactly as the
    /// per-frame "no packing, ever" contract promises.  Remote deploys pass
    /// no local providers and skip the barrier (their nodes pack before
    /// acking bootstrap).
    ///
    /// [`RuntimeReport::measured_ips`]: crate::report::RuntimeReport
    #[allow(clippy::too_many_arguments)]
    fn finish_deploy(
        model: &Model,
        plan: &ExecutionPlan,
        route: &RouteTable,
        requester_inbox: Receiver<Vec<u8>>,
        requester_txs: Vec<Box<dyn FrameTx>>,
        providers: Vec<ProviderHandle>,
        keep_sets: Vec<HashSet<usize>>,
        resident_bytes: Vec<usize>,
        raw_weights: Arc<ModelWeights>,
        quant: Option<QuantSpec>,
        options: &RuntimeOptions,
        telemetry: &Telemetry,
    ) -> Result<Session> {
        for p in &providers {
            p.wait_ready()?;
        }
        let n = route.num_devices;
        let finish_stage = route.finish_stage() as usize;
        let (result_c, result_w) = route.stage_geom(finish_stage);
        let gather_cfg = GatherConfig {
            has_head: route.head_device.is_some(),
            result_c,
            result_w,
            last_height: route.last_height,
            recv_timeout: options.recv_timeout,
        };

        let tel = SessionTelemetry {
            hub: telemetry.clone(),
            rec: Mutex::new(telemetry.recorder("requester", REQUESTER)),
            in_flight: telemetry.gauge("session.in_flight"),
            epoch: telemetry.gauge("session.epoch"),
            completed: telemetry.counter("session.images_completed"),
            epoch_flips: telemetry.counter("session.epoch_flips"),
            reconfigure_bytes: telemetry.counter("session.reconfigure_bytes"),
        };
        telemetry
            .gauge("session.credit_window")
            .set(options.max_in_flight as i64);
        let gather_tel = GatherTel {
            rec: telemetry.recorder("requester.gather", REQUESTER),
            in_flight: tel.in_flight.clone(),
            completed: tel.completed.clone(),
        };
        let shared = Arc::new(SessionShared {
            state: Mutex::new(StreamState::default()),
            results: Condvar::new(),
            credits: Condvar::new(),
            tel,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let gather_shared = Arc::clone(&shared);
        let gather_stop = Arc::clone(&stop);
        let gather = std::thread::Builder::new()
            .name("edge-rt-gather".into())
            .spawn(move || {
                gather_loop(
                    requester_inbox,
                    gather_shared,
                    gather_stop,
                    gather_cfg,
                    gather_tel,
                )
            })
            .expect("spawn gather thread");

        Ok(Session {
            shared,
            scatter: Mutex::new(ScatterState {
                txs: requester_txs,
                scatter_ms: vec![0.0; n],
                targets: route.scatter_targets(),
                rec: telemetry.recorder("requester.submit", REQUESTER),
            }),
            plan_state: Mutex::new(PlanState {
                plan: plan.clone(),
                keep: keep_sets,
                resident_bytes,
            }),
            model: model.clone(),
            weights: raw_weights,
            quant,
            input_shape: model.input().as_array(),
            options: *options,
            stop,
            gather: Some(gather),
            providers,
            t_start: Instant::now(),
        })
    }

    /// Deploys over a fresh in-process channel fabric.
    pub fn deploy_in_process(
        model: &Model,
        plan: &ExecutionPlan,
        weights: &ModelWeights,
        options: &RuntimeOptions,
    ) -> Result<Session> {
        Self::deploy_in_process_traced(model, plan, weights, options, &Telemetry::disabled())
    }

    /// [`Runtime::deploy_traced`] over a fresh in-process channel fabric.
    pub fn deploy_in_process_traced(
        model: &Model,
        plan: &ExecutionPlan,
        weights: &ModelWeights,
        options: &RuntimeOptions,
        telemetry: &Telemetry,
    ) -> Result<Session> {
        let n = plan.volumes.first().map(|v| v.parts.len()).unwrap_or(0);
        let mut transport = ChannelTransport::new(n);
        Self::deploy_traced(model, plan, weights, &mut transport, options, telemetry)
    }
}

/// A point-in-time load snapshot of one session, cheap enough to take per
/// routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionLoad {
    /// Submits that would currently succeed without blocking (0 when the
    /// session has failed, halted, or is mid-swap).
    pub free_credits: usize,
    /// Completed outputs sitting unclaimed in the session — work the
    /// consumer side has not drained yet.
    pub queue_depth: usize,
    /// Images currently in the pipeline.
    pub in_flight: usize,
}

/// A claim on the output of one submitted image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    image: u32,
}

impl Ticket {
    /// The image sequence number this ticket tracks.
    pub fn image(&self) -> u32 {
        self.image
    }
}

/// What one [`Session::apply_plan`] swap measured.
#[derive(Debug, Clone, Serialize)]
pub struct SwapReport {
    /// The epoch the session now serves.
    pub epoch: u64,
    /// Images that were in flight when the swap began (the drain window).
    pub drained_images: usize,
    /// Wall time spent draining the in-flight window — the serving gap
    /// during which no *new* image could be admitted.
    pub drain_ms: f64,
    /// Wall time from the `Reconfigure` broadcast until every provider
    /// acked the new epoch.
    pub reconfigure_ms: f64,
    /// End-to-end swap time (drain + broadcast + acks + flip).
    pub total_ms: f64,
    /// Weight bytes shipped to each device (only layers it was missing).
    pub delta_bytes: Vec<usize>,
    /// Weight bytes each device needed under the new plan that were already
    /// resident from earlier epochs — the transfer the swap avoided.
    pub reused_bytes: Vec<usize>,
}

impl SwapReport {
    /// Total delta bytes shipped across all devices.
    pub fn total_delta_bytes(&self) -> usize {
        self.delta_bytes.iter().sum()
    }

    /// Total bytes the swap reused instead of re-shipping.
    pub fn total_reused_bytes(&self) -> usize {
        self.reused_bytes.iter().sum()
    }
}

/// What one [`Session::resync_epoch`] recovery pass did.
#[derive(Debug, Clone, Serialize)]
pub struct ResyncReport {
    /// The epoch the session now serves.
    pub epoch: u64,
    /// In-flight images re-scattered at the new epoch.
    pub replayed: usize,
    /// End-to-end re-sync time (broadcast + acks + replay).
    pub total_ms: f64,
}

#[derive(Default)]
struct StreamState {
    /// Images submitted so far (the next ticket id).
    submitted: u64,
    /// Images currently in the pipeline (submitted, not yet completed).
    in_flight: usize,
    /// High-water mark of `in_flight`.
    max_in_flight_observed: usize,
    /// Completed outputs not yet claimed by `wait` / `try_recv`.
    outputs: HashMap<u32, Tensor>,
    /// Tickets whose outputs have been claimed.
    claimed: HashSet<u32>,
    /// Submission timestamps of in-flight images.
    starts: HashMap<u32, Instant>,
    /// The retained inputs of in-flight images (bounded by the credit
    /// window), so an epoch re-sync can replay work lost to a dead device.
    pending: HashMap<u32, Tensor>,
    /// Per-image latency in completion order.
    latencies_ms: Vec<f64>,
    /// Completed images.
    finished: u64,
    /// The serving epoch (bumped by `apply_plan`).
    epoch: u64,
    /// A plan swap is in progress: admission is paused, the queue parks.
    swapping: bool,
    /// The epoch a swap is waiting on acks for (`0` when no swap runs —
    /// epoch ids of swaps start at 1).
    swap_target: u64,
    /// Providers that acked `swap_target` so far.
    acked: usize,
    /// A stream failure; fatal to the whole session once set.
    failed: Option<String>,
    /// Shutdown has begun; new submissions are rejected.
    halted: bool,
}

/// The session's handle on the telemetry hub: the requester-side control
/// recorder plus the `session.*` registry cells.  The recorder has its own
/// lock, never held together with the state mutex (record after dropping
/// the state guard).
struct SessionTelemetry {
    hub: Telemetry,
    /// Requester-side control events: wait spans, swap-protocol spans.
    rec: Mutex<Recorder>,
    in_flight: Gauge,
    epoch: Gauge,
    completed: Counter,
    epoch_flips: Counter,
    reconfigure_bytes: Counter,
}

struct SessionShared {
    state: Mutex<StreamState>,
    /// Signalled when an output completes (or the session fails).
    results: Condvar,
    /// Signalled when an in-flight credit frees up, an epoch ack arrives,
    /// or the session fails.
    credits: Condvar,
    tel: SessionTelemetry,
}

impl SessionShared {
    fn lock(&self) -> MutexGuard<'_, StreamState> {
        self.state.lock().expect("session state poisoned")
    }

    fn fail(&self, err: &RuntimeError) {
        let mut st = self.lock();
        if st.failed.is_none() {
            st.failed = Some(err.to_string());
        }
        self.results.notify_all();
        self.credits.notify_all();
    }
}

struct ScatterState {
    txs: Vec<Box<dyn FrameTx>>,
    scatter_ms: Vec<f64>,
    /// Per device, the rows of the model input to send for volume 0 —
    /// per-epoch state, replaced by `apply_plan`.
    targets: Vec<(usize, (usize, usize))>,
    /// Submit-path spans (whole-submit + per-device scatter); single-writer
    /// by virtue of living under the scatter lock.
    rec: Recorder,
}

/// The session's bookkeeping of what each device holds resident — the diff
/// basis of `apply_plan`'s delta shards.
struct PlanState {
    /// The plan of the current epoch.
    plan: ExecutionPlan,
    /// Layers resident on each device (the union of every epoch served so
    /// far — swaps add, never evict, so swapping back is free).
    keep: Vec<HashSet<usize>>,
    /// Weight bytes resident on each device.
    resident_bytes: Vec<usize>,
}

/// A deployed, resident cluster serving a continuous image flow.
pub struct Session {
    shared: Arc<SessionShared>,
    scatter: Mutex<ScatterState>,
    plan_state: Mutex<PlanState>,
    model: Model,
    /// The full weight set, kept for delta-shard computation on swaps.
    weights: Arc<ModelWeights>,
    /// The quantization spec the session serves with (`None` = f32).  It
    /// rides every `Reconfigure` payload so each new epoch re-negotiates
    /// the same kernel routing and q8 wire precision, and switches the
    /// scatter path to q8 input frames.
    quant: Option<QuantSpec>,
    input_shape: [usize; 3],
    options: RuntimeOptions,
    stop: Arc<AtomicBool>,
    gather: Option<JoinHandle<Receiver<Vec<u8>>>>,
    providers: Vec<ProviderHandle>,
    t_start: Instant,
}

impl Session {
    /// The credit window: the maximum number of images in flight.
    pub fn credit_window(&self) -> usize {
        self.options.max_in_flight
    }

    /// Whether the session serves int8 quantized (calibrated kernels plus
    /// q8 activation transfer).
    pub fn quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The serving epoch: `0` at deploy, bumped by every
    /// [`Session::apply_plan`].
    pub fn epoch(&self) -> u64 {
        self.shared.lock().epoch
    }

    /// The execution plan of the current epoch.
    pub fn current_plan(&self) -> ExecutionPlan {
        self.plan_state
            .lock()
            .expect("plan state poisoned")
            .plan
            .clone()
    }

    /// Weight bytes resident on each provider — only the layers a device's
    /// parts (and, on the head device, the FC head) have needed in any
    /// epoch served so far are loaded, so on asymmetric plans these differ
    /// per device and their sum can be far below `num_devices × full model
    /// size`.  Grows when a swap ships delta shards; never shrinks (weights
    /// stay resident so swapping back is free).
    pub fn resident_weight_bytes(&self) -> Vec<usize> {
        self.plan_state
            .lock()
            .expect("plan state poisoned")
            .resident_bytes
            .clone()
    }

    /// Images currently in the pipeline.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// Reconstructs the [`Ticket`] of an already-submitted image, for
    /// callers that track claims by image id across several sessions (the
    /// gateway's routing seam).  `None` if no such image was ever
    /// submitted here.
    pub fn ticket_for(&self, image: u32) -> Option<Ticket> {
        (u64::from(image) < self.shared.lock().submitted).then_some(Ticket { image })
    }

    /// A cheap load snapshot — one lock acquisition, three numbers — for
    /// schedulers that compare many sessions per routing decision (the
    /// fleet router) and must not pay the full [`Session::metrics`]
    /// collection per candidate.
    pub fn load(&self) -> SessionLoad {
        let st = self.shared.lock();
        let free_credits = if st.failed.is_some() || st.halted || st.swapping {
            0
        } else {
            self.options.max_in_flight.saturating_sub(st.in_flight)
        };
        SessionLoad {
            free_credits,
            queue_depth: st.outputs.len(),
            in_flight: st.in_flight,
        }
    }

    /// Free credits in the in-flight window right now: how many `submit`
    /// calls would currently succeed without blocking.  Zero once the
    /// session has failed or shutdown has begun, and zero while a plan swap
    /// drains (admission resumes at the new epoch).  A scheduler sitting in
    /// front of the session (the gateway dispatcher) uses this to size
    /// dispatch waves to the window instead of discovering the limit by
    /// blocking.
    pub fn available_credits(&self) -> usize {
        let st = self.shared.lock();
        if st.failed.is_some() || st.halted || st.swapping {
            return 0;
        }
        self.options.max_in_flight.saturating_sub(st.in_flight)
    }

    /// Blocks until at least one in-flight credit is free, the session
    /// fails/halts, or `timeout` elapses.  Returns the credits available on
    /// wake-up — `0` means the wait timed out (or the session can no longer
    /// accept work), so callers can poll other duties and come back.  While
    /// a plan swap drains, the wait keeps blocking — credits come back once
    /// the new epoch is serving.
    pub fn wait_for_credit(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.failed.is_some() || st.halted {
                return 0;
            }
            if !st.swapping {
                let free = self.options.max_in_flight.saturating_sub(st.in_flight);
                if free > 0 {
                    return free;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return 0;
            }
            st = self
                .shared
                .credits
                .wait_timeout(st, deadline - now)
                .expect("session state poisoned")
                .0;
        }
    }

    /// The stream failure, if the session has failed.  Once set, every
    /// `submit` / `wait` errors and `shutdown` surfaces the failure; a
    /// monitor thread can poll this to stop waiting on progress.
    pub fn failure(&self) -> Option<String> {
        self.shared.lock().failed.clone()
    }

    /// Submits one image, blocking while the credit window is full (or a
    /// plan swap is draining).
    pub fn submit(&self, image: &Tensor) -> Result<Ticket> {
        Ok(self
            .submit_inner(image, true)?
            .expect("blocking submit always yields a ticket"))
    }

    /// Submits one image if a credit is free; `Ok(None)` when the window is
    /// full or a swap is draining (backpressure: the caller decides whether
    /// to retry or shed).
    pub fn try_submit(&self, image: &Tensor) -> Result<Option<Ticket>> {
        self.submit_inner(image, false)
    }

    fn submit_inner(&self, image: &Tensor, block: bool) -> Result<Option<Ticket>> {
        if image.shape() != self.input_shape {
            return Err(RuntimeError::Execution(format!(
                "submitted image has shape {:?}, model expects {:?}",
                image.shape(),
                self.input_shape
            )));
        }
        let t_submit = self.shared.tel.hub.start();
        let (ticket, epoch) = {
            let mut st = self.shared.lock();
            loop {
                if let Some(f) = &st.failed {
                    return Err(RuntimeError::Execution(format!("session failed: {f}")));
                }
                if st.halted {
                    return Err(RuntimeError::Execution(
                        "session is shutting down; submissions are closed".into(),
                    ));
                }
                if !st.swapping && st.in_flight < self.options.max_in_flight {
                    break;
                }
                if !block {
                    return Ok(None);
                }
                // The gather thread's wedge detector fails the session if
                // the cluster stops producing results, which wakes this
                // wait; the timeout is a belt-and-braces bound on top.
                let (guard, timeout) = self
                    .shared
                    .credits
                    .wait_timeout(st, self.options.recv_timeout)
                    .expect("session state poisoned");
                st = guard;
                if timeout.timed_out()
                    && st.failed.is_none()
                    && (st.swapping || st.in_flight >= self.options.max_in_flight)
                {
                    return Err(RuntimeError::Execution(
                        "submit timed out waiting for an in-flight credit".into(),
                    ));
                }
            }
            let id = st.submitted as u32;
            st.submitted += 1;
            st.in_flight += 1;
            st.max_in_flight_observed = st.max_in_flight_observed.max(st.in_flight);
            st.starts.insert(id, Instant::now());
            st.pending.insert(id, image.clone());
            self.shared.tel.in_flight.set(st.in_flight as i64);
            (Ticket { image: id }, st.epoch)
        };
        let trace = TraceId {
            epoch,
            image: ticket.image,
        };

        // Scatter outside the state lock so slow links never block
        // completions; the scatter lock serialises concurrent submitters on
        // the wire.
        let mut sc = self.scatter.lock().expect("scatter state poisoned");
        let targets = sc.targets.clone();
        for (d, (lo, hi)) in targets {
            let rows = slice_rows(image, lo, hi)?;
            let frame = if self.quant.is_some() {
                Frame::rows_q8(epoch, ticket.image, 0, lo as u32, &rows)
            } else {
                Frame::data(FrameKind::Rows, epoch, ticket.image, 0, lo as u32, rows)
            };
            let t0 = Instant::now();
            let n = match sc.txs[d].send(&frame) {
                Ok(n) => n,
                Err(e) => {
                    drop(sc);
                    self.shared.fail(&e);
                    return Err(e);
                }
            };
            let t1 = Instant::now();
            sc.scatter_ms[d] += (t1 - t0).as_secs_f64() * 1e3;
            sc.rec
                .span_between(Stage::Scatter, trace, t0, t1, n as u64, d as u32);
        }
        if let Some(t0) = t_submit {
            // The whole submit call: credit wait (if any) plus the scatter.
            sc.rec.span(Stage::Submit, trace, t0, 0, 0);
        }
        Ok(Some(ticket))
    }

    /// Blocks until `ticket`'s output is ready and claims it.
    pub fn wait(&self, ticket: Ticket) -> Result<Tensor> {
        self.wait_deadline(ticket, None)
            .map(|out| out.expect("unbounded wait always yields an output"))
    }

    /// Like [`Session::wait`], but gives up after `timeout`: `Ok(None)`
    /// means the output was not ready in time (the ticket stays valid and
    /// can be waited on again).  This is what lets callers with other
    /// duties — the gateway dispatcher, a swap drain loop, a monitor —
    /// bound their waits instead of blocking forever.
    pub fn wait_timeout(&self, ticket: Ticket, timeout: Duration) -> Result<Option<Tensor>> {
        self.wait_deadline(ticket, Some(Instant::now() + timeout))
    }

    fn wait_deadline(&self, ticket: Ticket, deadline: Option<Instant>) -> Result<Option<Tensor>> {
        let t_wait = self.shared.tel.hub.start();
        let mut st = self.shared.lock();
        loop {
            if let Some(out) = st.outputs.remove(&ticket.image) {
                st.claimed.insert(ticket.image);
                let epoch = st.epoch;
                drop(st);
                self.record_wait(ticket.image, epoch, t_wait);
                return Ok(Some(out));
            }
            if st.claimed.contains(&ticket.image) {
                return Err(RuntimeError::Execution(format!(
                    "output of image {} was already claimed",
                    ticket.image
                )));
            }
            if u64::from(ticket.image) >= st.submitted {
                return Err(RuntimeError::Execution(format!(
                    "ticket for image {} was never submitted on this session",
                    ticket.image
                )));
            }
            if let Some(f) = &st.failed {
                return Err(RuntimeError::Execution(format!("session failed: {f}")));
            }
            // One bounded condvar wait for the full remaining time: every
            // transition this loop cares about (a completion, another
            // waiter claiming the output, a session failure) signals
            // `results`, so there is nothing to poll for — the old
            // GATHER_TICK chop woke this thread ~40×/s for nothing.  The
            // unbounded case still bounds each wait by `recv_timeout` as
            // belt-and-braces against a missed signal; the gather thread's
            // wedge detector fires and fails the session long before that.
            let timeout = match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        let epoch = st.epoch;
                        drop(st);
                        self.record_wait(ticket.image, epoch, t_wait);
                        return Ok(None);
                    }
                    dl - now
                }
                None => self.options.recv_timeout,
            };
            st = self
                .shared
                .results
                .wait_timeout(st, timeout)
                .expect("session state poisoned")
                .0;
        }
    }

    /// Records the time a client spent blocked in `wait`/`wait_timeout`.
    fn record_wait(&self, image: u32, epoch: u64, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let mut rec = self
                .shared
                .tel
                .rec
                .lock()
                .expect("telemetry recorder poisoned");
            rec.span(Stage::Wait, TraceId { epoch, image }, t0, 0, 0);
        }
    }

    /// Claims any ready output, without blocking.
    pub fn try_recv(&self) -> Option<(Ticket, Tensor)> {
        let mut st = self.shared.lock();
        let image = *st.outputs.keys().next()?;
        let out = st.outputs.remove(&image).expect("key just observed");
        st.claimed.insert(image);
        Some((Ticket { image }, out))
    }

    /// Hot-swaps the execution plan: after this returns, the same resident
    /// cluster serves `plan` as epoch `current + 1` — no redeploy, no
    /// weight reload for layers already resident, and every outstanding
    /// ticket stays valid.
    ///
    /// The swap protocol:
    /// 1. **Stop admitting** at the old epoch (`submit` blocks, `try_submit`
    ///    declines, the gateway queue parks).
    /// 2. **Drain** the in-flight window, reusing the credit accounting —
    ///    every admitted image completes under the plan it was submitted
    ///    against, so outputs stay bit-exact across the boundary.
    /// 3. **Broadcast** a `Reconfigure` frame to every provider carrying
    ///    the new plan plus only the weight layers that device is missing
    ///    (diffed against the session's resident-shard bookkeeping).
    /// 4. **Flip** the epoch once every provider acks, then resume
    ///    admission.
    ///
    /// Concurrent swaps are rejected; a failed session surfaces its
    /// failure.  The returned [`SwapReport`] measures the drain gap and the
    /// delta bytes shipped vs reused.
    pub fn apply_plan(&self, plan: &ExecutionPlan) -> Result<SwapReport> {
        let t_total = Instant::now();
        plan.validate(&self.model).map_err(RuntimeError::from)?;
        let route = RouteTable::new(&self.model, plan)?;
        // Device count comes from the scatter links, not `providers`:
        // remote sessions (`deploy_remote`) drive external node processes
        // and hold no local provider handles.
        let n = {
            let sc = self.scatter.lock().expect("scatter state poisoned");
            sc.txs.len()
        };
        if route.num_devices != n {
            return Err(RuntimeError::Execution(format!(
                "new plan addresses {} devices, session has {n}",
                route.num_devices
            )));
        }

        // 1. Stop admitting at the old epoch.
        let (old_epoch, drained_images) = {
            let mut st = self.shared.lock();
            if let Some(f) = &st.failed {
                return Err(RuntimeError::Execution(format!("session failed: {f}")));
            }
            if st.halted {
                return Err(RuntimeError::Execution(
                    "session is shutting down; cannot swap plans".into(),
                ));
            }
            if st.swapping {
                return Err(RuntimeError::Execution(
                    "another plan swap is already in progress".into(),
                ));
            }
            st.swapping = true;
            (st.epoch, st.in_flight)
        };
        let new_epoch = old_epoch + 1;

        // 2. Drain the in-flight window.  A wedged cluster is caught by the
        // gather thread's timeout, which sets `failed` and wakes this wait.
        let t_drain = Instant::now();
        {
            let mut st = self.shared.lock();
            while st.failed.is_none() && st.in_flight > 0 {
                st = self
                    .shared
                    .credits
                    .wait_timeout(st, GATHER_TICK)
                    .expect("session state poisoned")
                    .0;
            }
            if let Some(f) = st.failed.clone() {
                st.swapping = false;
                return Err(RuntimeError::Execution(format!("session failed: {f}")));
            }
            st.swap_target = new_epoch;
            st.acked = 0;
        }
        let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;
        {
            let mut rec = self
                .shared
                .tel
                .rec
                .lock()
                .expect("telemetry recorder poisoned");
            rec.span(
                Stage::Drain,
                TraceId::session(new_epoch),
                t_drain,
                0,
                drained_images as u32,
            );
        }

        // 3. Diff the new plan's per-device weight needs against what is
        // already resident and broadcast the Reconfigure frames.  The
        // broadcast goes through the scatter links so it is ordered after
        // every old-epoch scatter and before every new-epoch one.
        let t_reconf = Instant::now();
        let mut delta_bytes = vec![0usize; n];
        let mut reused_bytes = vec![0usize; n];
        let (payloads, new_keep): (Vec<ReconfigurePayload>, Vec<HashSet<usize>>) = {
            let ps = self.plan_state.lock().expect("plan state poisoned");
            let mut payloads = Vec::with_capacity(n);
            let mut keeps = Vec::with_capacity(n);
            for d in 0..n {
                let needed = route.keep_layers(&self.model, d);
                let mut missing: Vec<usize> = needed.difference(&ps.keep[d]).copied().collect();
                missing.sort_unstable();
                let delta: Vec<WeightDelta> = missing
                    .iter()
                    .map(|&layer| WeightDelta {
                        layer,
                        weights: self.weights.layers[layer].0.clone(),
                        bias: self.weights.layers[layer].1.clone(),
                    })
                    .collect();
                delta_bytes[d] = delta.iter().map(WeightDelta::bytes).sum();
                reused_bytes[d] = needed
                    .intersection(&ps.keep[d])
                    .map(|&l| {
                        (self.weights.layers[l].0.len() + self.weights.layers[l].1.len())
                            * std::mem::size_of::<f32>()
                    })
                    .sum();
                payloads.push(ReconfigurePayload {
                    plan: plan.clone(),
                    delta,
                    quant: self.quant.clone(),
                });
                // Residency is a union across epochs: nothing is evicted.
                keeps.push(ps.keep[d].union(&needed).copied().collect());
            }
            (payloads, keeps)
        };
        {
            let mut sc = self.scatter.lock().expect("scatter state poisoned");
            for (d, payload) in payloads.iter().enumerate() {
                let frame = Frame::reconfigure(new_epoch, payload.encode()?);
                if let Err(e) = sc.txs[d].send(&frame) {
                    drop(sc);
                    self.shared.fail(&e);
                    return Err(e);
                }
            }
            // No scatter can interleave while admission is paused, so the
            // new targets are installed before any new-epoch image.
            sc.targets = route.scatter_targets();
        }

        // 4. Wait for every provider's ack, then flip and resume admission.
        {
            let deadline = Instant::now() + self.options.recv_timeout;
            let mut st = self.shared.lock();
            while st.failed.is_none() && st.acked < n {
                let now = Instant::now();
                if now >= deadline {
                    // The Reconfigure broadcast is out and the scatter
                    // targets are replaced: the cluster is half-swapped and
                    // cannot safely serve either epoch.  Fail the session
                    // rather than reopening admission into the wreckage.
                    let acked = st.acked;
                    drop(st);
                    let err = RuntimeError::transport_timeout(format!(
                        "timed out waiting for epoch {new_epoch} acks ({acked}/{n} received)"
                    ));
                    self.shared.fail(&err);
                    return Err(err);
                }
                st = self
                    .shared
                    .credits
                    .wait_timeout(st, GATHER_TICK.min(deadline - now))
                    .expect("session state poisoned")
                    .0;
            }
            if let Some(f) = st.failed.clone() {
                st.swapping = false;
                return Err(RuntimeError::Execution(format!("session failed: {f}")));
            }
            st.epoch = new_epoch;
            st.swap_target = 0;
        }
        let reconfigure_ms = t_reconf.elapsed().as_secs_f64() * 1e3;
        let shipped: usize = delta_bytes.iter().sum();
        {
            let tel = &self.shared.tel;
            let mut rec = tel.rec.lock().expect("telemetry recorder poisoned");
            let trace = TraceId::session(new_epoch);
            // Requester view of the reconfigure: broadcast → all acks.
            rec.span(
                Stage::Reconfigure,
                trace,
                t_reconf,
                shipped as u64,
                n as u32,
            );
            rec.instant(Stage::EpochFlip, trace, 0, REQUESTER);
            drop(rec);
            tel.epoch_flips.inc();
            tel.reconfigure_bytes.add(shipped as u64);
            tel.epoch.set(new_epoch as i64);
        }

        // Publish the new residency bookkeeping before reopening admission
        // (a follow-up swap must diff against it).
        {
            let mut ps = self.plan_state.lock().expect("plan state poisoned");
            ps.plan = plan.clone();
            ps.resident_bytes = new_keep
                .iter()
                .map(|k| {
                    k.iter()
                        .map(|&l| {
                            (self.weights.layers[l].0.len() + self.weights.layers[l].1.len())
                                * std::mem::size_of::<f32>()
                        })
                        .sum()
                })
                .collect();
            ps.keep = new_keep;
        }
        {
            let mut st = self.shared.lock();
            st.swapping = false;
        }
        self.shared.credits.notify_all();

        Ok(SwapReport {
            epoch: new_epoch,
            drained_images,
            drain_ms,
            reconfigure_ms,
            total_ms: t_total.elapsed().as_secs_f64() * 1e3,
            delta_bytes,
            reused_bytes,
        })
    }

    /// Re-synchronises the cluster onto a fresh epoch after one or more
    /// devices re-joined — a remote provider process died and was restarted,
    /// then re-handshaked at the current epoch (the `edge-cluster`
    /// supervisor's recovery path).  Admission pauses, every device installs
    /// `current + 1` carrying the *same* plan and an empty weight delta, the
    /// rejoined devices' residency bookkeeping resets to exactly the current
    /// plan's keep-set (what the re-handshake shipped — the restart dropped
    /// everything the old process held), and every image still in flight is
    /// re-scattered at the new epoch.
    ///
    /// Unlike [`Session::apply_plan`] the in-flight window is *not* drained
    /// first — the point is precisely that some of its results will never
    /// arrive.  Replaying at a fresh epoch (instead of re-sending at the
    /// current one) is what makes this safe: surviving providers discard
    /// their partial band assemblies when they install the new epoch and
    /// drop data frames tagged with older epochs, and the gather side
    /// ignores duplicate results, so an original result racing its replayed
    /// twin resolves to exactly one completion.  Original submission
    /// timestamps are kept, so reported latencies include the outage.
    pub fn resync_epoch(&self, rejoined: &[usize]) -> Result<ResyncReport> {
        let t_total = Instant::now();
        let n = {
            let sc = self.scatter.lock().expect("scatter state poisoned");
            sc.txs.len()
        };
        if let Some(&d) = rejoined.iter().find(|&&d| d >= n) {
            return Err(RuntimeError::Execution(format!(
                "rejoined device {d} out of range (session has {n})"
            )));
        }

        // 1. Pause admission at the current epoch (no drain).
        let old_epoch = {
            let mut st = self.shared.lock();
            if let Some(f) = &st.failed {
                return Err(RuntimeError::Execution(format!("session failed: {f}")));
            }
            if st.halted {
                return Err(RuntimeError::Execution(
                    "session is shutting down; cannot re-sync".into(),
                ));
            }
            if st.swapping {
                return Err(RuntimeError::Execution(
                    "another plan swap is already in progress".into(),
                ));
            }
            st.swapping = true;
            st.swap_target = st.epoch + 1;
            st.acked = 0;
            st.epoch
        };
        let new_epoch = old_epoch + 1;

        // 2. Reset the rejoined devices' residency bookkeeping to the
        // current plan's keep-set and build the bump payload: same plan,
        // no weight delta.
        let (payload, targets) = {
            let mut ps = self.plan_state.lock().expect("plan state poisoned");
            let route = match RouteTable::new(&self.model, &ps.plan) {
                Ok(r) => r,
                Err(e) => {
                    self.shared.lock().swapping = false;
                    return Err(e);
                }
            };
            for &d in rejoined {
                let keep = route.keep_layers(&self.model, d);
                ps.resident_bytes[d] = keep
                    .iter()
                    .map(|&l| {
                        (self.weights.layers[l].0.len() + self.weights.layers[l].1.len())
                            * std::mem::size_of::<f32>()
                    })
                    .sum();
                ps.keep[d] = keep;
            }
            (
                ReconfigurePayload {
                    plan: ps.plan.clone(),
                    delta: Vec::new(),
                    quant: self.quant.clone(),
                },
                route.scatter_targets(),
            )
        };

        // 3. Broadcast the epoch bump and wait for every device's ack.
        {
            let mut sc = self.scatter.lock().expect("scatter state poisoned");
            let frame = Frame::reconfigure(new_epoch, payload.encode()?);
            for d in 0..n {
                if let Err(e) = sc.txs[d].send(&frame) {
                    drop(sc);
                    self.shared.fail(&e);
                    return Err(e);
                }
            }
        }
        {
            let deadline = Instant::now() + self.options.recv_timeout;
            let mut st = self.shared.lock();
            while st.failed.is_none() && st.acked < n {
                let now = Instant::now();
                if now >= deadline {
                    let acked = st.acked;
                    drop(st);
                    let err = RuntimeError::transport_timeout(format!(
                        "timed out waiting for epoch {new_epoch} re-sync acks ({acked}/{n} received)"
                    ));
                    self.shared.fail(&err);
                    return Err(err);
                }
                st = self
                    .shared
                    .credits
                    .wait_timeout(st, GATHER_TICK.min(deadline - now))
                    .expect("session state poisoned")
                    .0;
            }
            if let Some(f) = st.failed.clone() {
                st.swapping = false;
                return Err(RuntimeError::Execution(format!("session failed: {f}")));
            }
            st.epoch = new_epoch;
            st.swap_target = 0;
        }
        {
            let tel = &self.shared.tel;
            let mut rec = tel.rec.lock().expect("telemetry recorder poisoned");
            rec.instant(Stage::EpochFlip, TraceId::session(new_epoch), 0, REQUESTER);
            drop(rec);
            tel.epoch_flips.inc();
            tel.epoch.set(new_epoch as i64);
        }

        // 4. Replay every image still in flight at the new epoch.  The
        // retained inputs are snapshotted *after* the ack barrier, so images
        // that completed while the bump was in progress are not replayed.
        let replay: Vec<(u32, Tensor)> = {
            let st = self.shared.lock();
            let mut ids: Vec<u32> = st.starts.keys().copied().collect();
            ids.sort_unstable();
            ids.iter()
                .filter_map(|id| st.pending.get(id).map(|t| (*id, t.clone())))
                .collect()
        };
        {
            let mut sc = self.scatter.lock().expect("scatter state poisoned");
            for (image, tensor) in &replay {
                for &(d, (lo, hi)) in &targets {
                    let result = match slice_rows(tensor, lo, hi) {
                        Ok(rows) => {
                            let frame = if self.quant.is_some() {
                                Frame::rows_q8(new_epoch, *image, 0, lo as u32, &rows)
                            } else {
                                Frame::data(FrameKind::Rows, new_epoch, *image, 0, lo as u32, rows)
                            };
                            sc.txs[d].send(&frame)
                        }
                        Err(e) => Err(RuntimeError::from(e)),
                    };
                    if let Err(e) = result {
                        drop(sc);
                        self.shared.fail(&e);
                        return Err(e);
                    }
                }
            }
        }

        // 5. Resume admission.
        self.shared.lock().swapping = false;
        self.shared.credits.notify_all();
        Ok(ResyncReport {
            epoch: new_epoch,
            replayed: replay.len(),
            total_ms: t_total.elapsed().as_secs_f64() * 1e3,
        })
    }

    /// Snapshots the measurement so far: per-image latencies in completion
    /// order, live per-device counters, throughput over the wall clock,
    /// tagged with the serving epoch.  Counters only grow, so successive
    /// snapshots are monotone.
    pub fn metrics(&self) -> RuntimeReport {
        let (latencies, max_in_flight, epoch) = {
            let st = self.shared.lock();
            (st.latencies_ms.clone(), st.max_in_flight_observed, st.epoch)
        };
        let scatter_ms = {
            let sc = self.scatter.lock().expect("scatter state poisoned");
            sc.scatter_ms.clone()
        };
        let devices = self
            .providers
            .iter()
            .zip(&scatter_ms)
            .map(|(p, &s)| p.stats.snapshot(s))
            .collect();
        RuntimeReport::from_measured(
            latencies,
            devices,
            self.t_start.elapsed().as_secs_f64() * 1e3,
            max_in_flight,
            epoch,
        )
    }

    /// Drains everything still in flight, halts the providers, joins every
    /// worker thread and returns the final measurement.  In-flight images
    /// complete (and count in the report) before the cluster goes down;
    /// unclaimed outputs are dropped.
    pub fn shutdown(mut self) -> Result<RuntimeReport> {
        // 1. Close submissions, then drain the pipeline.  A wedged cluster
        // is caught by the gather thread's timeout, which sets `failed` and
        // wakes this wait.
        {
            let mut st = self.shared.lock();
            st.halted = true;
            while st.failed.is_none() && st.in_flight > 0 {
                st = self
                    .shared
                    .credits
                    .wait_timeout(st, GATHER_TICK)
                    .expect("session state poisoned")
                    .0;
            }
        }
        let wall_ms = self.t_start.elapsed().as_secs_f64() * 1e3;

        // 2. Tear the cluster down (idempotent; `Drop` is a no-op after).
        let (devices, teardown_err) = self.teardown();

        let st = self.shared.lock();
        if let Some(f) = &st.failed {
            return Err(RuntimeError::Execution(format!("session failed: {f}")));
        }
        if let Some(e) = teardown_err {
            return Err(e);
        }
        Ok(RuntimeReport::from_measured(
            st.latencies_ms.clone(),
            devices,
            wall_ms,
            st.max_in_flight_observed,
            st.epoch,
        ))
    }

    /// Stops the gather thread, halts and joins every provider.  Returns
    /// the final per-device metrics and the first teardown error.
    fn teardown(&mut self) -> (Vec<crate::report::DeviceMetrics>, Option<RuntimeError>) {
        // Stop the gatherer first and recover the requester inbox: it must
        // stay alive until the providers are joined, otherwise a provider
        // still streaming (error paths) would wedge on a dead inbox — over
        // TCP that deadlocks the socket reader threads.
        self.stop.store(true, Ordering::SeqCst);
        let inbox = self.gather.take().map(|g| g.join());

        let mut err: Option<RuntimeError> = None;
        let scatter_ms = {
            let mut sc = self.scatter.lock().expect("scatter state poisoned");
            for tx in &mut sc.txs {
                // Best effort — a dead peer cannot be halted twice.
                if let Err(e) = tx.send(&Frame::halt()) {
                    err.get_or_insert(e);
                }
            }
            sc.scatter_ms.clone()
        };

        let mut devices = Vec::with_capacity(self.providers.len());
        for (d, handle) in self.providers.drain(..).enumerate() {
            for (role, h) in [
                ("receive", handle.recv),
                ("compute", handle.comp),
                ("send", handle.send),
            ] {
                match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        err.get_or_insert(e);
                    }
                    Err(_) => {
                        err.get_or_insert(RuntimeError::WorkerPanic(format!(
                            "device {d} {role} thread"
                        )));
                    }
                }
            }
            devices.push(handle.stats.snapshot(scatter_ms[d]));
        }
        if let Some(Err(_)) = inbox {
            err.get_or_insert(RuntimeError::WorkerPanic("gather thread".into()));
        }
        drop(inbox);
        (devices, err)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A session abandoned without `shutdown` (error paths, panics)
        // still halts and joins every thread so nothing outlives it.
        if self.gather.is_some() || !self.providers.is_empty() {
            self.shared.lock().halted = true;
            let _ = self.teardown();
        }
    }
}

struct GatherConfig {
    has_head: bool,
    result_c: usize,
    result_w: usize,
    last_height: usize,
    recv_timeout: Duration,
}

/// The gather thread's telemetry: its own ring (merge spans for headless
/// stitching) plus the completion-side registry cells.
struct GatherTel {
    rec: Recorder,
    in_flight: Gauge,
    completed: Counter,
}

/// The session's result pump: receives result frames, stitches headless
/// outputs, completes tickets, releases credits, counts epoch acks during
/// swaps, and watches for a wedged cluster.  Returns the requester inbox so
/// teardown can keep it alive until the providers are joined.
fn gather_loop(
    inbox: Receiver<Vec<u8>>,
    shared: Arc<SessionShared>,
    stop: Arc<AtomicBool>,
    cfg: GatherConfig,
    mut tel: GatherTel,
) -> Receiver<Vec<u8>> {
    let mut assemblies: HashMap<(u32, u64), Assembly> = HashMap::new();
    let mut waiting_since: Option<Instant> = None;
    let tick = GATHER_TICK.min(cfg.recv_timeout);
    loop {
        if stop.load(Ordering::SeqCst) {
            return inbox;
        }
        match inbox.recv_timeout(tick) {
            Ok(bytes) => {
                waiting_since = None;
                if let Err(e) =
                    handle_requester_frame(&bytes, &shared, &cfg, &mut assemblies, &mut tel)
                {
                    shared.fail(&e);
                    return inbox;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                let starving = {
                    let st = shared.lock();
                    st.in_flight > 0 && st.failed.is_none()
                };
                if starving {
                    let since = *waiting_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= cfg.recv_timeout {
                        shared.fail(&RuntimeError::transport_timeout(
                            "timed out waiting for results",
                        ));
                        return inbox;
                    }
                } else {
                    waiting_since = None;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Every sending half is gone — the session is tearing down.
                return inbox;
            }
        }
    }
}

fn handle_requester_frame(
    bytes: &[u8],
    shared: &SessionShared,
    cfg: &GatherConfig,
    assemblies: &mut HashMap<(u32, u64), Assembly>,
    tel: &mut GatherTel,
) -> Result<()> {
    let frame = Frame::decode(bytes)?;
    match frame.kind {
        FrameKind::Result => {}
        FrameKind::EpochAck => {
            let mut st = shared.lock();
            if frame.epoch == st.swap_target {
                st.acked += 1;
            }
            drop(st);
            shared.credits.notify_all();
            return Ok(());
        }
        other => {
            return Err(RuntimeError::Execution(format!(
                "requester received unexpected {other:?} frame"
            )));
        }
    }
    let image = frame.image;
    let done = if cfg.has_head {
        // The head output arrives whole.
        Some(frame.tensor)
    } else {
        // Keyed by (image, epoch): after an epoch re-sync, bands of the
        // original attempt and of the replay can interleave at the inbox,
        // and rows from two different epochs must never stitch into one
        // output.
        let key = (image, frame.epoch);
        let asm = assemblies
            .entry(key)
            .or_insert_with(|| Assembly::new(cfg.result_c, cfg.result_w, (0, cfg.last_height)));
        asm.insert(frame.row_lo as usize, &frame.tensor)?;
        if asm.complete() {
            let asm = assemblies.remove(&key).expect("present");
            // Any partial assembly of the same image under another epoch is
            // an abandoned attempt — drop it.
            assemblies.retain(|&(img, _), _| img != image);
            tel.rec.span(
                Stage::Merge,
                TraceId {
                    epoch: frame.epoch,
                    image,
                },
                asm.created(),
                0,
                frame.stage,
            );
            Some(asm.into_band())
        } else {
            None
        }
    };
    let Some(out) = done else { return Ok(()) };

    let mut st = shared.lock();
    let Some(start) = st.starts.remove(&image) else {
        // No longer in flight: after an epoch re-sync the original result
        // can race its replayed twin — whichever lands second is dropped.
        // A result for an image that was never submitted is a protocol
        // violation.
        return if u64::from(image) < st.submitted {
            Ok(())
        } else {
            Err(RuntimeError::Execution(format!(
                "result for image {image} which was never submitted"
            )))
        };
    };
    st.pending.remove(&image);
    let latency_ms = start.elapsed().as_secs_f64() * 1e3;
    st.outputs.insert(image, out);
    st.latencies_ms.push(latency_ms);
    st.finished += 1;
    st.in_flight -= 1;
    let in_flight = st.in_flight;
    drop(st);
    tel.in_flight.set(in_flight as i64);
    tel.completed.inc();
    shared.results.notify_all();
    shared.credits.notify_all();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelTransport;
    use cnn_model::exec::{self, deterministic_input};
    use cnn_model::LayerOp;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "session-test",
            Shape::new(2, 16, 12),
            &[
                LayerOp::conv(4, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(3),
            ],
        )
        .unwrap()
    }

    fn plan(m: &Model, devices: usize) -> ExecutionPlan {
        use cnn_model::{PartitionScheme, VolumeSplit};
        let scheme = PartitionScheme::single_volume(m);
        let split = VolumeSplit::equal(devices, m.prefix_output().h);
        ExecutionPlan::from_splits(m, &scheme, &[split], devices).unwrap()
    }

    /// A fabric whose provider-bound data frames vanish (providers never
    /// produce results), while halt frames still get through so teardown
    /// can join the workers.  Turns credit exhaustion deterministic.
    struct BlackholeTransport {
        inner: ChannelTransport,
    }

    struct BlackholeTx {
        inner: Box<dyn FrameTx>,
    }

    impl FrameTx for BlackholeTx {
        fn send(&mut self, frame: &Frame) -> Result<usize> {
            if frame.kind == FrameKind::Halt {
                self.inner.send(frame)
            } else {
                Ok(frame.encoded_len())
            }
        }
    }

    impl Transport for BlackholeTransport {
        fn open(&mut self, from: Endpoint, to: Endpoint) -> Result<Box<dyn FrameTx>> {
            let inner = self.inner.open(from, to)?;
            Ok(Box::new(BlackholeTx { inner }))
        }

        fn inbox(&mut self, at: Endpoint) -> Result<Receiver<Vec<u8>>> {
            self.inner.inbox(at)
        }
    }

    #[test]
    fn session_serves_two_waves_without_redeploying() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 3);
        let plan = plan(&m, 2);
        let session =
            Runtime::deploy_in_process(&m, &plan, &weights, &RuntimeOptions::default()).unwrap();
        for wave in 0..2u64 {
            let images: Vec<Tensor> = (0..3)
                .map(|i| deterministic_input(&m, 10 * wave + i))
                .collect();
            let tickets: Vec<Ticket> = images
                .iter()
                .map(|img| session.submit(img).unwrap())
                .collect();
            for (img, t) in images.iter().zip(tickets) {
                let out = session.wait(t).unwrap();
                let reference = exec::run_full(&m, &weights, img).unwrap();
                assert_eq!(&out, reference.last().unwrap());
            }
        }
        let report = session.shutdown().unwrap();
        assert_eq!(report.images, 6);
        assert_eq!(report.sim.per_image_latency_ms.len(), 6);
        assert_eq!(report.epoch, 0);
    }

    #[test]
    fn try_submit_is_credit_gated() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 5);
        let plan = plan(&m, 2);
        let mut transport = BlackholeTransport {
            inner: ChannelTransport::new(2),
        };
        let options = RuntimeOptions::default()
            .with_max_in_flight(2)
            .with_recv_timeout(Duration::from_millis(50));
        let session = Runtime::deploy(&m, &plan, &weights, &mut transport, &options).unwrap();
        let img = deterministic_input(&m, 0);

        // The window admits exactly `max_in_flight` images; with providers
        // black-holed no result ever frees a credit, so the next submit is
        // deterministically declined.
        assert!(session.try_submit(&img).unwrap().is_some());
        assert!(session.try_submit(&img).unwrap().is_some());
        assert_eq!(session.in_flight(), 2);
        assert!(session.try_submit(&img).unwrap().is_none());
        assert_eq!(session.metrics().max_in_flight_observed, 2);

        // The gather thread declares the cluster wedged after recv_timeout
        // and fails the session; shutdown surfaces that instead of a report.
        let err = session.shutdown();
        assert!(err.is_err(), "wedged session must fail shutdown");
    }

    #[test]
    fn wait_rejects_foreign_and_double_claims() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 7);
        let plan = plan(&m, 2);
        let session =
            Runtime::deploy_in_process(&m, &plan, &weights, &RuntimeOptions::default()).unwrap();
        let t = session.submit(&deterministic_input(&m, 1)).unwrap();
        session.wait(t).unwrap();
        assert!(session.wait(t).is_err(), "double claim must fail");
        assert!(
            session.wait(Ticket { image: 99 }).is_err(),
            "unsubmitted ticket must fail"
        );
        session.shutdown().unwrap();
    }

    #[test]
    fn wait_timeout_expires_and_ticket_stays_valid() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 5);
        let plan = plan(&m, 2);
        let mut transport = BlackholeTransport {
            inner: ChannelTransport::new(2),
        };
        // Long recv_timeout: the session stays healthy while we probe the
        // bounded wait; the blackhole guarantees no result ever arrives.
        let options = RuntimeOptions::default()
            .with_max_in_flight(2)
            .with_recv_timeout(Duration::from_secs(60));
        let session = Runtime::deploy(&m, &plan, &weights, &mut transport, &options).unwrap();
        let t = session.submit(&deterministic_input(&m, 0)).unwrap();
        let t0 = Instant::now();
        let out = session.wait_timeout(t, Duration::from_millis(30)).unwrap();
        assert!(out.is_none(), "blackholed result must time out");
        assert!(t0.elapsed() >= Duration::from_millis(30));
        // The ticket is still claimable — a second bounded wait also times
        // out instead of erroring.
        assert!(session
            .wait_timeout(t, Duration::from_millis(5))
            .unwrap()
            .is_none());
        drop(session); // Drop-teardown: blackholed work never completes.
    }

    #[test]
    fn try_recv_claims_any_ready_output() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 9);
        let plan = plan(&m, 2);
        let session =
            Runtime::deploy_in_process(&m, &plan, &weights, &RuntimeOptions::default()).unwrap();
        let a = session.submit(&deterministic_input(&m, 1)).unwrap();
        let b = session.submit(&deterministic_input(&m, 2)).unwrap();
        let mut got = Vec::new();
        while got.len() < 2 {
            if let Some((ticket, _)) = session.try_recv() {
                got.push(ticket);
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        got.sort_by_key(Ticket::image);
        assert_eq!(got, vec![a, b]);
        session.shutdown().unwrap();
    }

    #[test]
    fn submit_rejects_wrong_shape() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 11);
        let plan = plan(&m, 2);
        let session =
            Runtime::deploy_in_process(&m, &plan, &weights, &RuntimeOptions::default()).unwrap();
        assert!(session.submit(&Tensor::zeros([1, 2, 3])).is_err());
        session.shutdown().unwrap();
    }

    #[test]
    fn weight_sharding_ships_only_needed_layers() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 15);
        let full_bytes = weights.resident_bytes();

        // Offload plan: only device 1 runs anything, so only it holds
        // weights — and it holds the full set (every layer plus the head).
        let offload = ExecutionPlan::offload(&m, 1, 3).unwrap();
        let session =
            Runtime::deploy_in_process(&m, &offload, &weights, &RuntimeOptions::default()).unwrap();
        assert_eq!(session.resident_weight_bytes(), vec![0, full_bytes, 0]);
        // Sharded weights still compute the right answer.
        let img = deterministic_input(&m, 3);
        let t = session.submit(&img).unwrap();
        let out = session.wait(t).unwrap();
        assert_eq!(
            &out,
            exec::run_full(&m, &weights, &img).unwrap().last().unwrap()
        );
        session.shutdown().unwrap();

        // Row-split plan: both devices run the conv volumes, but only the
        // head device holds the FC layer, so the other stays strictly below
        // the full footprint.
        let split = plan(&m, 2);
        let session =
            Runtime::deploy_in_process(&m, &split, &weights, &RuntimeOptions::default()).unwrap();
        let resident = session.resident_weight_bytes();
        assert!(
            resident.iter().any(|&b| b < full_bytes),
            "some device must shed the head weights: {resident:?} vs full {full_bytes}"
        );
        assert!(
            resident.iter().all(|&b| b > 0),
            "every device participates in the split: {resident:?}"
        );
        let t = session.submit(&img).unwrap();
        let out = session.wait(t).unwrap();
        assert_eq!(
            &out,
            exec::run_full(&m, &weights, &img).unwrap().last().unwrap()
        );
        session.shutdown().unwrap();
    }

    #[test]
    fn apply_plan_swaps_and_ships_only_deltas() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 17);
        let full_bytes = weights.resident_bytes();
        let img = deterministic_input(&m, 4);
        let reference = exec::run_full(&m, &weights, &img)
            .unwrap()
            .last()
            .unwrap()
            .clone();

        // Start offloaded on device 0: device 1 holds nothing.
        let offload = ExecutionPlan::offload(&m, 0, 2).unwrap();
        let session =
            Runtime::deploy_in_process(&m, &offload, &weights, &RuntimeOptions::default()).unwrap();
        assert_eq!(session.epoch(), 0);
        let t = session.submit(&img).unwrap();
        assert_eq!(session.wait(t).unwrap(), reference);

        // Swap to the equal split: device 0 already holds everything (zero
        // delta), device 1 receives exactly the layers it was missing.
        let split = plan(&m, 2);
        let swap = session.apply_plan(&split).unwrap();
        assert_eq!(swap.epoch, 1);
        assert_eq!(session.epoch(), 1);
        assert_eq!(swap.delta_bytes[0], 0, "device 0 had every layer resident");
        assert!(swap.delta_bytes[1] > 0, "device 1 must receive its layers");
        assert!(
            swap.reused_bytes[0] > 0 && swap.reused_bytes[0] < full_bytes,
            "device 0 reuses exactly the layers the split needs: {}",
            swap.reused_bytes[0]
        );
        assert_eq!(swap.reused_bytes[1], 0, "device 1 held nothing to reuse");
        let t = session.submit(&img).unwrap();
        assert_eq!(session.wait(t).unwrap(), reference, "bit-exact across swap");

        // Swap back: everything is already resident, so nothing ships.
        let swap = session.apply_plan(&offload).unwrap();
        assert_eq!(swap.epoch, 2);
        assert_eq!(swap.total_delta_bytes(), 0, "swap-back reuses residency");
        let t = session.submit(&img).unwrap();
        assert_eq!(session.wait(t).unwrap(), reference);

        let report = session.shutdown().unwrap();
        assert_eq!(report.images, 3);
        assert_eq!(report.epoch, 2);
    }

    #[test]
    fn apply_plan_rejects_wrong_device_count() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 19);
        let session =
            Runtime::deploy_in_process(&m, &plan(&m, 2), &weights, &RuntimeOptions::default())
                .unwrap();
        let three = plan(&m, 3);
        assert!(session.apply_plan(&three).is_err());
        session.shutdown().unwrap();
    }

    #[test]
    fn traced_session_records_the_full_image_lifecycle() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 21);
        let telemetry = Telemetry::new();
        let session = Runtime::deploy_in_process_traced(
            &m,
            &plan(&m, 2),
            &weights,
            &RuntimeOptions::default(),
            &telemetry,
        )
        .unwrap();
        let img = deterministic_input(&m, 2);
        let t = session.submit(&img).unwrap();
        session.wait(t).unwrap();

        // A hot swap shows up as swap-protocol events and registry counts.
        let offload = ExecutionPlan::offload(&m, 0, 2).unwrap();
        session.apply_plan(&offload).unwrap();
        session.shutdown().unwrap();

        let report = telemetry.collect();
        let stages = report.stages_seen(0);
        for stage in ["submit", "scatter", "recv", "compute", "head", "tx", "wait"] {
            assert!(
                stages.contains(&stage),
                "stage {stage} missing from image 0's trace: {stages:?}"
            );
        }
        assert!(
            !report.devices_seen(0).is_empty(),
            "device spans must appear for image 0"
        );
        let cp = report.critical_path(0).unwrap();
        assert!(cp.wall_ms > 0.0);
        assert!(cp.stages.iter().any(|s| s.stage == cp.dominant));

        let value = |name: &str| {
            telemetry
                .metrics()
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.value)
                .unwrap_or_else(|| panic!("metric {name} not registered"))
        };
        assert_eq!(value("session.images_completed"), 1.0);
        assert_eq!(value("session.epoch_flips"), 1.0);
        assert_eq!(value("session.in_flight"), 0.0);
        assert!(value("session.reconfigure_bytes") > 0.0);
        assert_eq!(value("session.epoch"), 1.0);
    }

    #[test]
    fn untraced_session_records_nothing() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 23);
        let telemetry = Telemetry::disabled();
        let session = Runtime::deploy_in_process_traced(
            &m,
            &plan(&m, 2),
            &weights,
            &RuntimeOptions::default(),
            &telemetry,
        )
        .unwrap();
        let t = session.submit(&deterministic_input(&m, 1)).unwrap();
        session.wait(t).unwrap();
        session.shutdown().unwrap();
        assert_eq!(telemetry.collect().span_count(), 0);
    }

    #[test]
    fn quantized_session_tracks_f32_within_tolerance() {
        // Deep enough channels that the stem conv (k = 8·9 = 72) and the FC
        // head (384 inputs) both route to the int8 kernels.
        let m = Model::new(
            "session-q8",
            Shape::new(8, 16, 12),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(5),
            ],
        )
        .unwrap();
        let weights = ModelWeights::deterministic(&m, 33);
        let plan = plan(&m, 2);
        let options = RuntimeOptions::default().with_quantized(true);
        let session = Runtime::deploy_in_process(&m, &plan, &weights, &options).unwrap();
        assert!(session.quantized());

        for seed in 0..3u64 {
            let img = deterministic_input(&m, seed);
            let reference = exec::run_full(&m, &weights, &img)
                .unwrap()
                .last()
                .unwrap()
                .clone();
            let t = session.submit(&img).unwrap();
            let out = session.wait(t).unwrap();
            assert_eq!(out.shape(), reference.shape());
            let range = reference
                .data()
                .iter()
                .fold(0.0f32, |acc, &v| acc.max(v.abs()))
                .max(1e-6);
            let diff = out.max_abs_diff(&reference).unwrap();
            assert!(
                diff <= 0.05 * range,
                "quantized output drifted: diff {diff} vs range {range} (seed {seed})"
            );
        }

        // A hot swap re-negotiates the quantized epoch: outputs stay within
        // the same tolerance after the flip.
        let offload = ExecutionPlan::offload(&m, 0, 2).unwrap();
        session.apply_plan(&offload).unwrap();
        let img = deterministic_input(&m, 7);
        let reference = exec::run_full(&m, &weights, &img)
            .unwrap()
            .last()
            .unwrap()
            .clone();
        let t = session.submit(&img).unwrap();
        let out = session.wait(t).unwrap();
        let range = reference
            .data()
            .iter()
            .fold(0.0f32, |acc, &v| acc.max(v.abs()))
            .max(1e-6);
        assert!(out.max_abs_diff(&reference).unwrap() <= 0.05 * range);
        session.shutdown().unwrap();
    }

    #[test]
    fn abandoned_session_joins_all_threads_on_drop() {
        let m = model();
        let weights = ModelWeights::deterministic(&m, 13);
        let plan = plan(&m, 2);
        let session =
            Runtime::deploy_in_process(&m, &plan, &weights, &RuntimeOptions::default()).unwrap();
        session.submit(&deterministic_input(&m, 1)).unwrap();
        // No wait, no shutdown: Drop must still halt and join every worker
        // (the test harness would hang otherwise).
        drop(session);
    }
}
