//! Property tests for the wire codecs: arbitrary frames and reconfigure
//! payloads round-trip bit-exactly, and corrupt or truncated inputs are
//! rejected with typed errors instead of panics or unbounded allocation.

use edge_runtime::wire::check_frame_len;
use edge_runtime::{
    Frame, FrameKind, ReconfigurePayload, TransportErrorKind, WeightDelta, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use tensor::Tensor;

#[allow(clippy::too_many_arguments)]
fn frame_from(
    kind_sel: u8,
    epoch: u64,
    image: u32,
    stage: u32,
    row_lo: u32,
    c: usize,
    rows: usize,
    w: usize,
    fill: f32,
) -> Frame {
    let kind = match kind_sel % 2 {
        0 => FrameKind::Rows,
        _ => FrameKind::Result,
    };
    let tensor = Tensor::from_fn([c, rows, w], |ci, ri, wi| {
        fill + (ci * 31 + ri * 7 + wi) as f32 * 0.5
    });
    Frame::data(kind, epoch, image, stage, row_lo, tensor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity for arbitrary data frames.
    #[test]
    fn frames_round_trip(
        kind_sel in 0u8..255,
        epoch in any::<u64>(),
        image in any::<u32>(),
        stage in 0u32..64,
        row_lo in 0u32..1024,
        c in 1usize..4,
        rows in 1usize..6,
        w in 1usize..8,
        fill in -100.0f32..100.0,
    ) {
        let frame = frame_from(kind_sel, epoch, image, stage, row_lo, c, rows, w, fill);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let back = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(back, frame);
    }

    /// Any truncation of a valid encoding is rejected — never a panic,
    /// never a bogus frame.
    #[test]
    fn truncated_frames_are_rejected(
        epoch in any::<u64>(),
        image in any::<u32>(),
        c in 1usize..3,
        rows in 1usize..4,
        w in 1usize..6,
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = frame_from(0, epoch, image, 0, 0, c, rows, w, 1.0);
        let bytes = frame.encode();
        let cut = (cut_fraction * (bytes.len() - 1) as f64) as usize;
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
        // The streaming reader must reject it too (clean EOF at offset 0
        // is the only non-error short read).
        if cut > 0 {
            let result = Frame::read_from(&mut &bytes[..cut]);
            prop_assert!(
                result.is_err(),
                "short read of {cut}/{} bytes must error",
                bytes.len()
            );
        }
    }

    /// A corrupt byte anywhere in the header is rejected or decodes to a
    /// frame that differs from the original — never a panic.
    #[test]
    fn corrupt_headers_never_panic(
        epoch in 0u64..1000,
        pos in 0usize..23,
        xor in 1u8..255,
    ) {
        let frame = frame_from(0, epoch, 1, 0, 0, 1, 2, 3, 2.0);
        let mut bytes = frame.encode();
        bytes[pos] ^= xor;
        // Either a typed error or a different (but well-formed) frame.
        if let Ok(back) = Frame::decode(&bytes) {
            prop_assert!(back != frame, "corrupt byte produced the original frame");
        }
    }

    /// Oversized length prefixes are refused before any allocation.
    #[test]
    fn oversized_length_prefixes_are_refused(excess in 1usize..1_000_000) {
        let len = MAX_FRAME_LEN + excess;
        let err = check_frame_len(len).unwrap_err();
        let t = err.as_transport().expect("typed transport error");
        prop_assert_eq!(t.kind, TransportErrorKind::Protocol);
        prop_assert!(!t.is_retryable());

        // And through the decoder: a header claiming `len` bytes.
        let mut bytes = vec![0u8; 32];
        bytes[0..4].copy_from_slice(&(len as u32).to_le_bytes());
        prop_assert!(Frame::decode(&bytes).is_err());
    }

    /// Reconfigure payloads (plan JSON + raw weight deltas) round-trip.
    #[test]
    fn reconfigure_payloads_round_trip(
        n_layers in 1usize..4,
        w_len in 0usize..32,
        b_len in 0usize..8,
        seed in any::<u32>(),
    ) {
        let model = cnn_model::Model::new(
            "prop",
            tensor::Shape::new(1, 8, 8),
            &[cnn_model::LayerOp::conv(2, 3, 1, 1), cnn_model::LayerOp::fc(4)],
        )
        .unwrap();
        let plan = edgesim::ExecutionPlan::offload(&model, 0, 2).unwrap();
        let delta: Vec<WeightDelta> = (0..n_layers)
            .map(|layer| WeightDelta {
                layer,
                weights: (0..w_len).map(|i| (seed as usize + i) as f32 * 0.25).collect(),
                bias: (0..b_len).map(|i| i as f32 - 2.0).collect(),
            })
            .collect();
        // Half the cases carry a quant spec so the optional tail of the
        // codec is exercised both ways.
        let quant = seed.is_multiple_of(2).then(|| {
            cnn_model::exec::QuantSpec::new(
                (0..n_layers).map(|i| i as f32 * 0.015625).collect(),
            )
        });
        let payload = ReconfigurePayload { plan, delta, quant };
        let bytes = payload.encode().unwrap();
        let back = ReconfigurePayload::decode(&bytes).unwrap();
        prop_assert_eq!(back, payload);

        // Truncations of the payload body are rejected as well.
        if bytes.len() > 1 {
            prop_assert!(ReconfigurePayload::decode(&bytes[..bytes.len() / 2]).is_err());
        }
    }
}
