//! The dispatcher's routing seam: everything the gateway needs from
//! "whatever serves the images" — admission, completion, load, lifecycle —
//! as a trait, so the same batching/priority/deadline front-end runs over
//! one resident [`Session`] (the [`SessionBackend`] wrapper, what
//! [`crate::Gateway::over`] builds) or over a whole fleet of replica
//! sessions (the `edge-fleet` crate implements [`Backend`] with
//! least-loaded routing and elastic scale behind it).
//!
//! Tickets cross this seam as [`RouteTicket`]s — a `(replica, image)` pair
//! — because each replica session numbers its images independently from 0:
//! a bare image id would collide across replicas.

use edge_runtime::{RuntimeReport, Session, SwapReport};
use edgesim::ExecutionPlan;
use std::time::Duration;
use tensor::Tensor;

/// A claim on one in-flight image, unique across every replica a backend
/// routes over: `replica` disambiguates the per-session `image` sequence
/// numbers (a single-session backend always uses replica `0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteTicket {
    /// The replica the image was routed to.
    pub replica: u64,
    /// The image sequence number within that replica's session.
    pub image: u32,
}

/// What a successful admission hands back to the dispatcher.
#[derive(Debug, Clone, Copy)]
pub struct Admission {
    /// The claim to poll/wait on.
    pub ticket: RouteTicket,
    /// The serving epoch the image was admitted under (trace correlation).
    pub epoch: u64,
}

/// The serving substrate behind a [`crate::Gateway`] dispatcher.
///
/// Errors cross the seam as strings (the dispatcher wraps them in
/// [`crate::GatewayError::Runtime`]); `Ok(None)` from [`Backend::try_submit`]
/// means "no capacity right now, come back" — the dispatcher drains
/// completions and waits for a credit, exactly as it did against a bare
/// session's window.
pub trait Backend: Send + Sync + 'static {
    /// A fatal serving failure, if one happened.  The dispatcher resolves
    /// all outstanding work with it and closes.
    fn failure(&self) -> Option<String>;

    /// Free admission slots right now, summed over whatever can accept
    /// work — the dispatcher sizes dispatch waves to this.
    fn available_credits(&self) -> usize;

    /// Tries to admit one image.  `model` is the client's model id
    /// (`None` = the backend's default); a backend serving a single model
    /// may ignore it, a multi-tenant backend routes by it and errors on
    /// ids it does not serve.
    fn try_submit(&self, model: Option<&str>, image: &Tensor) -> Result<Option<Admission>, String>;

    /// Blocks until an admission slot frees up or `timeout` elapses.
    fn wait_for_credit(&self, timeout: Duration);

    /// Claims one ready completion, if any.
    fn try_recv(&self) -> Option<(RouteTicket, Tensor)>;

    /// Waits up to `timeout` for `ticket`'s output; `Ok(None)` on timeout.
    fn wait_timeout(
        &self,
        ticket: RouteTicket,
        timeout: Duration,
    ) -> Result<Option<Tensor>, String>;

    /// A live metrics snapshot (fleet backends roll replicas up into one
    /// report).
    fn report(&self) -> RuntimeReport;

    /// Hot-swaps the execution plan underneath (fleet backends apply it to
    /// every replica of their default model).
    fn apply_plan(&self, plan: &ExecutionPlan) -> Result<SwapReport, String>;

    /// Drains everything and returns the final rolled-up report.
    fn shutdown(self: Box<Self>) -> Result<RuntimeReport, String>;
}

/// The classic one-session backend: every request routes to the one
/// resident [`Session`], model ids are ignored (there is exactly one
/// model), and tickets carry replica id `0`.
pub struct SessionBackend {
    session: Session,
}

impl SessionBackend {
    /// Wraps a deployed session.
    pub fn new(session: Session) -> Self {
        Self { session }
    }

    fn route(ticket: edge_runtime::Ticket) -> RouteTicket {
        RouteTicket {
            replica: 0,
            image: ticket.image(),
        }
    }

    fn session_ticket(&self, ticket: RouteTicket) -> Result<edge_runtime::Ticket, String> {
        if ticket.replica != 0 {
            return Err(format!(
                "single-session backend asked about replica {}",
                ticket.replica
            ));
        }
        self.session
            .ticket_for(ticket.image)
            .ok_or_else(|| format!("image {} was never submitted", ticket.image))
    }
}

impl Backend for SessionBackend {
    fn failure(&self) -> Option<String> {
        self.session.failure()
    }

    fn available_credits(&self) -> usize {
        self.session.available_credits()
    }

    fn try_submit(
        &self,
        _model: Option<&str>,
        image: &Tensor,
    ) -> Result<Option<Admission>, String> {
        match self.session.try_submit(image) {
            Ok(Some(ticket)) => Ok(Some(Admission {
                ticket: Self::route(ticket),
                epoch: self.session.epoch(),
            })),
            Ok(None) => Ok(None),
            Err(e) => Err(e.to_string()),
        }
    }

    fn wait_for_credit(&self, timeout: Duration) {
        self.session.wait_for_credit(timeout);
    }

    fn try_recv(&self) -> Option<(RouteTicket, Tensor)> {
        self.session
            .try_recv()
            .map(|(ticket, output)| (Self::route(ticket), output))
    }

    fn wait_timeout(
        &self,
        ticket: RouteTicket,
        timeout: Duration,
    ) -> Result<Option<Tensor>, String> {
        let ticket = self.session_ticket(ticket)?;
        self.session
            .wait_timeout(ticket, timeout)
            .map_err(|e| e.to_string())
    }

    fn report(&self) -> RuntimeReport {
        self.session.metrics()
    }

    fn apply_plan(&self, plan: &ExecutionPlan) -> Result<SwapReport, String> {
        self.session.apply_plan(plan).map_err(|e| e.to_string())
    }

    fn shutdown(self: Box<Self>) -> Result<RuntimeReport, String> {
        self.session.shutdown().map_err(|e| e.to_string())
    }
}
