//! Gateway configuration: the batching and SLO knobs.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Knobs of a [`crate::Gateway`].  Round-trips through JSON (like
/// `RuntimeOptions`), so a scenario file can carry the full serving stack
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Maximum requests per dispatch wave.  A full wave dispatches
    /// immediately; `1` disables batching.
    pub max_batch: usize,
    /// Maximum time an incomplete wave is held for more arrivals.  `ZERO`
    /// dispatches every request as soon as the dispatcher sees it.
    pub max_linger: Duration,
    /// Admission bound on the queue: requests arriving while this many are
    /// already queued are shed with [`crate::GatewayError::Overloaded`]
    /// instead of growing the queue (and every latency behind it) without
    /// bound.
    pub queue_capacity: usize,
    /// Priority-fairness bound: a queued request that has waited this long
    /// is promoted ahead of class order into the next dispatch wave, so
    /// sustained High-priority load delays Low work by at most roughly
    /// this bound instead of starving it indefinitely.  `None` (the
    /// default) keeps strict class order.
    pub max_starvation: Option<Duration>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            queue_capacity: 256,
            max_starvation: None,
        }
    }
}

impl GatewayConfig {
    /// Overrides the wave size bound.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Overrides the linger bound.
    pub fn with_max_linger(mut self, max_linger: Duration) -> Self {
        self.max_linger = max_linger;
        self
    }

    /// Overrides the admission bound.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Bounds priority starvation: queued requests older than
    /// `max_starvation` jump the class order.
    pub fn with_max_starvation(mut self, max_starvation: Duration) -> Self {
        self.max_starvation = Some(max_starvation);
        self
    }

    /// Checks the knobs are usable.  [`crate::Gateway::over`] runs this;
    /// callers that deploy a cluster first (e.g. `DistrEdge::serve_gateway`)
    /// run it up front so an unusable configuration fails before any
    /// provider thread is spawned.
    pub fn validate(&self) -> Result<(), crate::GatewayError> {
        if self.max_batch == 0 {
            return Err(crate::GatewayError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(crate::GatewayError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_validation() {
        let cfg = GatewayConfig::default()
            .with_max_batch(4)
            .with_max_linger(Duration::from_millis(7))
            .with_queue_capacity(32);
        assert_eq!(cfg.max_batch, 4);
        assert_eq!(cfg.max_linger, Duration::from_millis(7));
        assert_eq!(cfg.queue_capacity, 32);
        assert!(cfg.validate().is_ok());
        assert!(cfg.with_max_batch(0).validate().is_err());
        assert!(GatewayConfig::default()
            .with_queue_capacity(0)
            .validate()
            .is_err());
    }

    #[test]
    fn round_trips_through_json() {
        let cfg = GatewayConfig::default().with_max_batch(3);
        let text = serde_json::to_string(&cfg).unwrap();
        let back: GatewayConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, cfg);
        let fair = GatewayConfig::default().with_max_starvation(Duration::from_millis(40));
        let text = serde_json::to_string(&fair).unwrap();
        let back: GatewayConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, fair);
    }
}
