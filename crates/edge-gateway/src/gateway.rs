//! The gateway proper: client handles, the response ticket, and the
//! dispatcher thread that turns a many-client request stream into batched,
//! credit-scheduled, deadline-checked session traffic.

use crate::backend::{Backend, RouteTicket, SessionBackend};
use crate::batcher::{Batcher, Priority};
use crate::config::GatewayConfig;
use crate::metrics::{GatewayMetrics, LatencyHistogram};
use crate::GatewayError;
use edge_runtime::{RuntimeReport, Session, SwapReport};
use edge_telemetry::{Counter, Gauge, Recorder, Stage, Telemetry, TraceId, REQUESTER};
use edgesim::ExecutionPlan;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tensor::Tensor;

/// How often the dispatcher polls completions while work is outstanding.
const DISPATCH_TICK: Duration = Duration::from_millis(1);
/// How long the dispatcher sleeps when fully idle.
const IDLE_TICK: Duration = Duration::from_millis(5);
/// Smoothing factor of the service-time EWMA the shedding logic uses.
const EWMA_ALPHA: f64 = 0.2;

/// The shared slot a [`Response`] resolves through.
#[derive(Default)]
struct ResponseState {
    slot: Mutex<Option<Result<Tensor, GatewayError>>>,
    ready: Condvar,
}

impl ResponseState {
    /// Resolves the response; the first resolution wins.
    fn fulfil(&self, result: Result<Tensor, GatewayError>) {
        let mut slot = self.slot.lock().expect("response slot poisoned");
        if slot.is_none() {
            *slot = Some(result);
        }
        self.ready.notify_all();
    }
}

/// A future-like claim on one inference result.  Obtained from
/// [`GatewayClient::infer`] / [`GatewayClient::infer_with_deadline`];
/// resolves to the output tensor, or to a typed [`GatewayError`] when the
/// request was shed (deadline, overload) or the gateway went away.
pub struct Response {
    state: Arc<ResponseState>,
}

impl Response {
    /// Whether the response has resolved (a `wait` would not block).
    pub fn is_ready(&self) -> bool {
        self.state
            .slot
            .lock()
            .expect("response slot poisoned")
            .is_some()
    }

    /// Blocks until the response resolves and claims it.
    pub fn wait(self) -> Result<Tensor, GatewayError> {
        let mut slot = self.state.slot.lock().expect("response slot poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.ready.wait(slot).expect("response slot poisoned");
        }
    }
}

/// One queued inference request.
struct PendingRequest {
    image: Tensor,
    /// The model id to route by (`None` = the backend's default model).
    model: Option<Arc<str>>,
    deadline: Option<Instant>,
    enqueued: Instant,
    priority: Priority,
    state: Arc<ResponseState>,
}

/// Front-end counters (behind the state mutex).
#[derive(Default)]
struct Stats {
    histogram: LatencyHistogram,
    completed: u64,
    shed_deadline: u64,
    shed_overload: u64,
    /// Deadline sheds split by scheduling class ([`Priority::ALL`] order).
    shed_deadline_by_class: [u64; 3],
    /// Overload sheds split by scheduling class ([`Priority::ALL`] order).
    shed_overload_by_class: [u64; 3],
    dispatched: u64,
    batches: u64,
    est_service_ms: f64,
}

impl Stats {
    /// The deadline-shedding estimate: measured end-to-end service time, or
    /// `None` before the first completion.
    fn estimate(&self) -> Option<Duration> {
        (self.est_service_ms > 0.0).then(|| Duration::from_secs_f64(self.est_service_ms / 1e3))
    }

    fn observe(&mut self, latency_ms: f64) {
        self.histogram.record(latency_ms);
        self.est_service_ms = if self.est_service_ms == 0.0 {
            latency_ms
        } else {
            (1.0 - EWMA_ALPHA) * self.est_service_ms + EWMA_ALPHA * latency_ms
        };
    }
}

struct State {
    batcher: Batcher<PendingRequest>,
    /// Submissions are closed (shutdown or abort has begun).
    closed: bool,
    /// Drop-path teardown: fail outstanding work instead of draining it.
    aborted: bool,
    stats: Stats,
}

/// Shed-reason code packed into the high half of a [`Stage::Shed`] arg
/// (low half carries the [`Priority::index`]).
const SHED_DEADLINE: u32 = 0;
/// See [`SHED_DEADLINE`].
const SHED_OVERLOAD: u32 = 1;

/// The gateway's telemetry endpoints: one span recorder (its own lock —
/// never held together with the state mutex; always record *after*
/// dropping the state guard) plus the registry cells the front-end keeps
/// live regardless of whether span recording is on.
struct GatewayTelemetry {
    hub: Telemetry,
    rec: Mutex<Recorder>,
    queue_depth: Gauge,
    completed: Counter,
    dispatched: Counter,
    batches: Counter,
    /// Per-class shed counters, [`Priority::ALL`] order.
    shed_deadline: [Counter; 3],
    shed_overload: [Counter; 3],
}

impl GatewayTelemetry {
    /// Counts one shed in the registry and drops a [`Stage::Shed`] instant
    /// on the trace (arg packs `class | reason << 16`).
    fn shed(&self, priority: Priority, reason: u32) {
        let counters = if reason == SHED_DEADLINE {
            &self.shed_deadline
        } else {
            &self.shed_overload
        };
        counters[priority.index()].inc();
        if self.hub.is_enabled() {
            let mut rec = self.rec.lock().expect("telemetry recorder poisoned");
            rec.instant(
                Stage::Shed,
                TraceId::session(0),
                0,
                priority.index() as u32 | (reason << 16),
            );
        }
    }
}

struct Inner {
    config: GatewayConfig,
    state: Mutex<State>,
    /// Signalled on every enqueue and on close.
    work: Condvar,
    /// The resident serving backend (one session, or a fleet of replica
    /// sessions).  `None` only once `shutdown` has taken it.
    backend: RwLock<Option<Box<dyn Backend>>>,
    tel: GatewayTelemetry,
}

impl Inner {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("gateway state poisoned")
    }

    /// Runs `f` on the live backend; `None` once the backend was taken.
    fn with_backend<R>(&self, f: impl FnOnce(&dyn Backend) -> R) -> Option<R> {
        let guard = self.backend.read().expect("backend lock poisoned");
        guard.as_deref().map(f)
    }
}

/// A handle for submitting inference requests to a [`Gateway`].  Cheap to
/// clone; every thread of a client application typically holds its own.
#[derive(Clone)]
pub struct GatewayClient {
    inner: Arc<Inner>,
    priority: Priority,
    model: Option<Arc<str>>,
}

impl GatewayClient {
    /// The same handle with a different scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// This handle's scheduling class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The same handle routing to a specific model id.  A single-session
    /// gateway serves one model and ignores the id; a fleet backend routes
    /// by it and resolves requests for ids it does not serve with a
    /// [`GatewayError::Runtime`] error.
    pub fn with_model(mut self, model: &str) -> Self {
        self.model = Some(Arc::from(model));
        self
    }

    /// The model id this handle routes to (`None` = backend default).
    pub fn model(&self) -> Option<&str> {
        self.model.as_deref()
    }

    /// Submits one image with no deadline; never sheds for time, only for
    /// overload.
    pub fn infer(&self, image: &Tensor) -> Response {
        self.enqueue(image, None)
    }

    /// Submits one image that must complete within `budget` from now.
    /// Requests the gateway cannot serve in time — judged at admission and
    /// again at dispatch against the measured service rate — resolve to
    /// [`GatewayError::DeadlineExceeded`] instead of occupying the cluster.
    pub fn infer_with_deadline(&self, image: &Tensor, budget: Duration) -> Response {
        self.enqueue(image, Some(Instant::now() + budget))
    }

    fn enqueue(&self, image: &Tensor, deadline: Option<Instant>) -> Response {
        let state = Arc::new(ResponseState::default());
        let response = Response {
            state: Arc::clone(&state),
        };
        let now = Instant::now();
        let mut st = self.inner.lock();
        if st.closed {
            drop(st);
            state.fulfil(Err(GatewayError::Closed));
            return response;
        }
        // Admission control: a bounded queue sheds bursts instead of
        // absorbing them into unbounded latency for everyone behind them.
        if st.batcher.len() >= self.inner.config.queue_capacity {
            st.stats.shed_overload += 1;
            st.stats.shed_overload_by_class[self.priority.index()] += 1;
            let queue_depth = st.batcher.len();
            drop(st);
            self.inner.tel.shed(self.priority, SHED_OVERLOAD);
            state.fulfil(Err(GatewayError::Overloaded { queue_depth }));
            return response;
        }
        // Deadline admission control: when the measured service rate says
        // the deadline cannot be met, shed up front.  Only while requests
        // are actually queued ahead of this one — an idle gateway always
        // admits, so a stale estimate (inflated by an earlier overload's
        // queueing) is re-measured and pulled back down instead of shedding
        // every deadline request forever.
        if let (Some(dl), Some(est)) = (deadline, st.stats.estimate()) {
            if !st.batcher.is_empty() && now + est > dl {
                st.stats.shed_deadline += 1;
                st.stats.shed_deadline_by_class[self.priority.index()] += 1;
                drop(st);
                self.inner.tel.shed(self.priority, SHED_DEADLINE);
                state.fulfil(Err(GatewayError::DeadlineExceeded));
                return response;
            }
        }
        st.batcher.push(
            PendingRequest {
                image: image.clone(),
                model: self.model.clone(),
                deadline,
                enqueued: now,
                priority: self.priority,
                state,
            },
            self.priority,
            now,
        );
        self.inner.tel.queue_depth.set(st.batcher.len() as i64);
        drop(st);
        self.inner.work.notify_all();
        response
    }
}

/// A batching, SLO-aware serving front-end over one resident
/// [`Session`].  See the crate docs for the architecture.
pub struct Gateway {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Puts a gateway in front of a deployed session (untraced — see
    /// [`Gateway::over_traced`] to attach a telemetry hub).
    pub fn over(session: Session, config: GatewayConfig) -> Result<Self, GatewayError> {
        Self::over_traced(session, config, &Telemetry::disabled())
    }

    /// Puts a gateway in front of a deployed session, recording its
    /// front-end lifecycle on `telemetry`: queue-wait spans per admitted
    /// image, batch-formation and shed instants, plus registry cells for
    /// queue depth, dispatch/completion counts and per-class shed reasons.
    /// Pair with [`edge_runtime::Runtime::deploy_traced`] on the same hub
    /// to see the full gateway → device → response path on one clock.
    pub fn over_traced(
        session: Session,
        config: GatewayConfig,
        telemetry: &Telemetry,
    ) -> Result<Self, GatewayError> {
        Self::over_backend(Box::new(SessionBackend::new(session)), config, telemetry)
    }

    /// Puts the gateway's batching/priority/deadline front-end over any
    /// [`Backend`] — this is the routing seam a fleet of replica sessions
    /// plugs into.
    pub fn over_backend(
        backend: Box<dyn Backend>,
        config: GatewayConfig,
        telemetry: &Telemetry,
    ) -> Result<Self, GatewayError> {
        config.validate()?;
        let tel = GatewayTelemetry {
            hub: telemetry.clone(),
            rec: Mutex::new(telemetry.recorder("gateway", REQUESTER)),
            queue_depth: telemetry.gauge("gateway.queue_depth"),
            completed: telemetry.counter("gateway.completed"),
            dispatched: telemetry.counter("gateway.dispatched"),
            batches: telemetry.counter("gateway.batches"),
            shed_deadline: Priority::ALL
                .map(|p| telemetry.counter(&format!("gateway.shed.deadline.{}", p.label()))),
            shed_overload: Priority::ALL
                .map(|p| telemetry.counter(&format!("gateway.shed.overload.{}", p.label()))),
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                batcher: Batcher::new(config.max_batch, config.max_linger)
                    .with_max_starvation(config.max_starvation),
                closed: false,
                aborted: false,
                stats: Stats::default(),
            }),
            work: Condvar::new(),
            backend: RwLock::new(Some(backend)),
            config,
            tel,
        });
        let dispatcher_inner = Arc::clone(&inner);
        let dispatcher = std::thread::Builder::new()
            .name("edge-gw-dispatch".into())
            .spawn(move || dispatch_loop(dispatcher_inner))
            .expect("spawn gateway dispatcher");
        Ok(Self {
            inner,
            dispatcher: Some(dispatcher),
        })
    }

    /// A new client handle (default [`Priority::Normal`], backend-default
    /// model).
    pub fn client(&self) -> GatewayClient {
        GatewayClient {
            inner: Arc::clone(&self.inner),
            priority: Priority::default(),
            model: None,
        }
    }

    /// Hot-swaps the execution plan of the session underneath without
    /// taking the gateway down: admission into the session pauses while the
    /// in-flight window drains, the gateway's queue **parks** (requests
    /// keep their place and their tickets stay valid — nothing is shed for
    /// the swap itself, though deadline SLOs still apply), and dispatch
    /// resumes at the new epoch.
    pub fn apply_plan(&self, plan: &ExecutionPlan) -> Result<SwapReport, GatewayError> {
        self.inner
            .with_backend(|b| b.apply_plan(plan))
            .ok_or(GatewayError::Closed)?
            .map_err(GatewayError::Runtime)
    }

    /// Snapshots the gateway counters together with the live session
    /// metrics underneath.  Counters only grow, so successive snapshots are
    /// monotone.
    pub fn metrics(&self) -> GatewayMetrics {
        let session = self
            .inner
            .with_backend(|b| b.report())
            .expect("backend resident while the gateway is live");
        let st = self.inner.lock();
        build_metrics(&st.stats, st.batcher.len(), session)
    }

    /// Closes submissions, drains every queued and in-flight request, shuts
    /// the session down and returns the final metrics.
    pub fn shutdown(mut self) -> Result<GatewayMetrics, GatewayError> {
        self.inner.lock().closed = true;
        self.inner.work.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            handle
                .join()
                .map_err(|_| GatewayError::Runtime("dispatcher thread panicked".into()))?;
        }
        let backend = self
            .inner
            .backend
            .write()
            .expect("backend lock poisoned")
            .take()
            .ok_or(GatewayError::Closed)?;
        let report = backend.shutdown().map_err(GatewayError::Runtime)?;
        let st = self.inner.lock();
        Ok(build_metrics(&st.stats, st.batcher.len(), report))
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // A gateway abandoned without `shutdown` still joins its dispatcher
        // and resolves every outstanding response (with `Closed`), so no
        // client blocks forever and no thread outlives the gateway — the
        // backend is taken out of the shared state and dropped here (a
        // session's own `Drop` halts and joins every worker), so surviving
        // `GatewayClient` handles cannot keep the cluster resident.
        if let Some(handle) = self.dispatcher.take() {
            {
                let mut st = self.inner.lock();
                st.closed = true;
                st.aborted = true;
            }
            self.inner.work.notify_all();
            let _ = handle.join();
            drop(
                self.inner
                    .backend
                    .write()
                    .expect("backend lock poisoned")
                    .take(),
            );
        }
    }
}

fn build_metrics(stats: &Stats, queue_depth: usize, session: RuntimeReport) -> GatewayMetrics {
    GatewayMetrics {
        epoch: session.epoch,
        completed: stats.completed,
        shed_deadline: stats.shed_deadline,
        shed_overload: stats.shed_overload,
        shed_deadline_by_class: stats.shed_deadline_by_class,
        shed_overload_by_class: stats.shed_overload_by_class,
        queue_depth,
        dispatched: stats.dispatched,
        batches: stats.batches,
        batch_occupancy: if stats.batches > 0 {
            stats.dispatched as f64 / stats.batches as f64
        } else {
            0.0
        },
        p50_ms: stats.histogram.percentile(0.50),
        p95_ms: stats.histogram.percentile(0.95),
        p99_ms: stats.histogram.percentile(0.99),
        est_service_ms: stats.est_service_ms,
        session,
    }
}

/// The dispatcher: forms waves out of the batcher, sizes them to the
/// session's free credits, submits them, and resolves completions.
fn dispatch_loop(inner: Arc<Inner>) {
    let mut pending: HashMap<RouteTicket, PendingRequest> = HashMap::new();
    loop {
        drain_completions(&inner, &mut pending);

        // A failed backend can never complete what it holds: resolve
        // everything with the failure and close the gateway.
        let failure = inner.with_backend(|b| b.failure()).flatten();
        if let Some(f) = failure {
            let queued = {
                let mut st = inner.lock();
                st.closed = true;
                st.batcher.drain_all()
            };
            inner.tel.queue_depth.set(0);
            let err = GatewayError::Runtime(format!("session failed: {f}"));
            for req in queued {
                req.state.fulfil(Err(err.clone()));
            }
            for (_, req) in pending.drain() {
                req.state.fulfil(Err(err.clone()));
            }
            return;
        }

        let batch = {
            let mut st = inner.lock();
            if st.aborted {
                for req in st.batcher.drain_all() {
                    req.state.fulfil(Err(GatewayError::Closed));
                }
                inner.tel.queue_depth.set(0);
                drop(st);
                for (_, req) in pending.drain() {
                    req.state.fulfil(Err(GatewayError::Closed));
                }
                return;
            }
            if st.batcher.is_empty() {
                if st.closed && pending.is_empty() {
                    return; // Fully drained shutdown.
                }
                if let Some(&ticket) = pending.keys().next() {
                    // Work is in flight but nothing is queued: block on an
                    // outstanding ticket with a bounded wait instead of
                    // sleep-polling — any completion wakes the session's
                    // condvar, so results resolve as they land.
                    drop(st);
                    // Anything but a ready output — timeout, backend
                    // failure, a taken backend — is handled by the next
                    // loop iteration's checks.
                    if let Some(Ok(Some(output))) =
                        inner.with_backend(|b| b.wait_timeout(ticket, DISPATCH_TICK))
                    {
                        let req = pending.remove(&ticket).expect("ticket is pending");
                        resolve_completion(&inner, req, ticket.image, output);
                    }
                } else {
                    let _ = inner
                        .work
                        .wait_timeout(st, IDLE_TICK)
                        .expect("gateway state poisoned");
                }
                continue;
            }
            let now = Instant::now();
            if !st.batcher.ready(now) && !st.closed {
                // Linger: wait for the wave to fill, but never past its
                // linger expiry and never so long completions go stale.
                let due_in = st.batcher.time_to_ready(now).unwrap_or(DISPATCH_TICK);
                let tick = due_in.clamp(Duration::from_micros(100), DISPATCH_TICK);
                let _ = inner
                    .work
                    .wait_timeout(st, tick)
                    .expect("gateway state poisoned");
                continue;
            }
            // A wave is due.  Size it to the window's free credits (at
            // least one: when the window is saturated the submit path below
            // waits for a credit, which keeps draining completions).
            let credits = inner
                .with_backend(|b| b.available_credits())
                .unwrap_or(0)
                .max(1);
            let batch = st.batcher.take_batch(credits, now);
            if !batch.is_empty() {
                st.stats.batches += 1;
            }
            inner.tel.queue_depth.set(st.batcher.len() as i64);
            drop(st);
            if !batch.is_empty() {
                inner.tel.batches.inc();
                if inner.tel.hub.is_enabled() {
                    let mut rec = inner.tel.rec.lock().expect("telemetry recorder poisoned");
                    rec.instant(Stage::BatchForm, TraceId::session(0), 0, batch.len() as u32);
                }
            }
            batch
        };

        for req in batch {
            submit_one(&inner, req, &mut pending);
        }
    }
}

/// Submits one request, shedding it if its deadline cannot be met, waiting
/// for a free credit (and draining completions) while the window is full —
/// including while a plan swap drains, during which the queue simply parks
/// here until admission reopens at the new epoch.
fn submit_one(
    inner: &Arc<Inner>,
    req: PendingRequest,
    pending: &mut HashMap<RouteTicket, PendingRequest>,
) {
    loop {
        let now = Instant::now();
        if let Some(dl) = req.deadline {
            // An expired deadline always sheds; the service-rate estimate
            // only sheds while other work is in flight ahead of this
            // request (an idle cluster re-measures a stale estimate).
            let est = inner.lock().stats.estimate();
            let doomed = now >= dl || (!pending.is_empty() && est.is_some_and(|e| now + e > dl));
            if doomed {
                let mut st = inner.lock();
                st.stats.shed_deadline += 1;
                st.stats.shed_deadline_by_class[req.priority.index()] += 1;
                drop(st);
                inner.tel.shed(req.priority, SHED_DEADLINE);
                req.state.fulfil(Err(GatewayError::DeadlineExceeded));
                return;
            }
        }
        let submitted = inner.with_backend(|b| b.try_submit(req.model.as_deref(), &req.image));
        match submitted {
            None => {
                req.state.fulfil(Err(GatewayError::Closed));
                return;
            }
            Some(Ok(Some(admission))) => {
                inner.lock().stats.dispatched += 1;
                inner.tel.dispatched.inc();
                // The queue-wait span: enqueue → admission into the session.
                if let Some(now) = inner.tel.hub.start() {
                    let mut rec = inner.tel.rec.lock().expect("telemetry recorder poisoned");
                    rec.span_between(
                        Stage::GatewayQueue,
                        TraceId {
                            epoch: admission.epoch,
                            image: admission.ticket.image,
                        },
                        req.enqueued,
                        now,
                        0,
                        req.priority.index() as u32,
                    );
                }
                pending.insert(admission.ticket, req);
                return;
            }
            Some(Ok(None)) => {
                // Window full (or a swap is draining): completions free
                // credits, so collect them first, then block briefly for
                // one.
                drain_completions(inner, pending);
                inner.with_backend(|b| b.wait_for_credit(DISPATCH_TICK));
            }
            Some(Err(e)) => {
                req.state.fulfil(Err(GatewayError::Runtime(e)));
                return;
            }
        }
    }
}

/// Resolves every completion the backend currently has ready.
fn drain_completions(inner: &Arc<Inner>, pending: &mut HashMap<RouteTicket, PendingRequest>) {
    loop {
        let Some(Some((ticket, output))) = inner.with_backend(|b| b.try_recv()) else {
            return;
        };
        let Some(req) = pending.remove(&ticket) else {
            // Not ours (impossible — the gateway owns the backend), drop it.
            continue;
        };
        resolve_completion(inner, req, ticket.image, output);
    }
}

/// Resolves one completed request: records its latency, enforces its
/// deadline, and fulfils the client's response.
fn resolve_completion(inner: &Arc<Inner>, req: PendingRequest, image: u32, output: Tensor) {
    let latency_ms = req.enqueued.elapsed().as_secs_f64() * 1e3;
    let late = req.deadline.is_some_and(|dl| Instant::now() > dl);
    let mut st = inner.lock();
    st.stats.observe(latency_ms);
    if late {
        // The SLO is part of the contract: a late result is a shed
        // result, even though the cluster did the work.
        st.stats.shed_deadline += 1;
        st.stats.shed_deadline_by_class[req.priority.index()] += 1;
        drop(st);
        inner.tel.shed(req.priority, SHED_DEADLINE);
        req.state.fulfil(Err(GatewayError::DeadlineExceeded));
    } else {
        st.stats.completed += 1;
        drop(st);
        inner.tel.completed.inc();
        if inner.tel.hub.is_enabled() {
            let mut rec = inner.tel.rec.lock().expect("telemetry recorder poisoned");
            rec.instant(Stage::Respond, TraceId { epoch: 0, image }, 0, 0);
        }
        req.state.fulfil(Ok(output));
    }
}
