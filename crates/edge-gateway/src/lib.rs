//! A batching, SLO-aware serving front-end over resident `edge-runtime`
//! sessions.
//!
//! `edge_runtime::Session` gives one client credit-gated access to a
//! deployed cluster; this crate puts a *gateway* in front of it — the
//! dispatch-node shape serving-oriented distributed-inference systems
//! (DEFER, arXiv:2201.06769) use to aggregate heavy multi-client traffic,
//! with the scheduling-over-kernels emphasis LCP (arXiv:2003.06464) argues
//! dominates edge throughput:
//!
//! * [`Gateway::over`] wraps a deployed [`edge_runtime::Session`];
//!   [`Gateway::client`] hands out cheap [`GatewayClient`] handles.
//! * [`GatewayClient::infer`] / [`GatewayClient::infer_with_deadline`]
//!   enqueue work and return a future-like [`Response`] ticket; requests
//!   carry a [`Priority`] class.
//! * A dispatcher thread forms **adaptive batches** under two knobs
//!   ([`GatewayConfig::max_batch`], [`GatewayConfig::max_linger`]), sizes
//!   each wave to the session's free in-flight credits
//!   ([`edge_runtime::Session::available_credits`]), and submits most
//!   urgent class first.
//! * **Deadlines are enforced**: requests whose deadline has passed — or
//!   that the measured service rate says cannot finish in time — are shed
//!   with a typed [`GatewayError::DeadlineExceeded`] instead of occupying
//!   the cluster, and a bounded queue sheds bursts with
//!   [`GatewayError::Overloaded`] (admission control).
//! * [`Gateway::metrics`] publishes [`GatewayMetrics`]: p50/p95/p99 latency
//!   from constant-space [`LatencyHistogram`]s, queue depth, batch
//!   occupancy, shed counts — combined with the live
//!   [`edge_runtime::RuntimeReport`] of the session underneath.
//!
//! # Example
//!
//! ```
//! use cnn_model::exec::{deterministic_input, ModelWeights};
//! use cnn_model::{LayerOp, Model};
//! use edge_gateway::{Gateway, GatewayConfig};
//! use edge_runtime::{Runtime, RuntimeOptions};
//! use edgesim::ExecutionPlan;
//! use tensor::Shape;
//!
//! let model = Model::new(
//!     "tiny",
//!     Shape::new(2, 16, 16),
//!     &[LayerOp::conv(4, 3, 1, 1), LayerOp::pool(2, 2), LayerOp::fc(4)],
//! )
//! .unwrap();
//! let plan = ExecutionPlan::offload(&model, 0, 2).unwrap();
//! let weights = ModelWeights::deterministic(&model, 7);
//! let session = Runtime::deploy_in_process(
//!     &model,
//!     &plan,
//!     &weights,
//!     &RuntimeOptions::default().with_max_in_flight(2),
//! )
//! .unwrap();
//!
//! // One deployment, many clients: the gateway batches and schedules.
//! let gateway = Gateway::over(session, GatewayConfig::default()).unwrap();
//! let client = gateway.client();
//! let response = client.infer(&deterministic_input(&model, 1));
//! let output = response.wait().unwrap();
//! assert_eq!(output.shape(), [4, 1, 1]);
//! let metrics = gateway.shutdown().unwrap();
//! assert_eq!(metrics.completed, 1);
//! assert_eq!(metrics.session.images, 1);
//! ```

pub mod backend;
pub mod batcher;
pub mod config;
pub mod gateway;
pub mod metrics;

pub use backend::{Admission, Backend, RouteTicket, SessionBackend};
pub use batcher::{Batcher, Priority};
pub use config::GatewayConfig;
pub use gateway::{Gateway, GatewayClient, Response};
pub use metrics::{GatewayMetrics, LatencyHistogram};

use std::fmt;

/// Why a request (or the gateway itself) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The gateway configuration is unusable.
    InvalidConfig(String),
    /// The request's deadline passed, or the measured service rate says it
    /// cannot be met; the request was shed without occupying the cluster
    /// (or its late result was withheld).
    DeadlineExceeded,
    /// The admission queue was full; the request was shed immediately.
    Overloaded {
        /// Queue depth observed at admission.
        queue_depth: usize,
    },
    /// The gateway is shut down (or was dropped).
    Closed,
    /// The underlying session failed.
    Runtime(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::InvalidConfig(m) => write!(f, "invalid gateway configuration: {m}"),
            GatewayError::DeadlineExceeded => write!(f, "deadline exceeded; request shed"),
            GatewayError::Overloaded { queue_depth } => {
                write!(f, "gateway overloaded ({queue_depth} requests queued)")
            }
            GatewayError::Closed => write!(f, "gateway is closed"),
            GatewayError::Runtime(m) => write!(f, "runtime failure: {m}"),
        }
    }
}

impl std::error::Error for GatewayError {}
