//! The adaptive batch former: pure state, no threads, no clocks of its own.
//!
//! [`Batcher`] accumulates queued requests per [`Priority`] class and decides
//! when a dispatch wave is due under two knobs:
//!
//! * `max_batch` — a full batch dispatches immediately;
//! * `max_linger` — an incomplete batch dispatches once its *oldest* request
//!   has waited that long, so light traffic never waits for a batch to fill.
//!
//! A third, opt-in knob bounds priority starvation: with
//! [`Batcher::with_max_starvation`] set, any item that has waited that long
//! jumps the class order and leaves with the next wave — so sustained High
//! traffic can delay Low work by at most the bound, never indefinitely.
//! Unset (the default), class order is absolute.
//!
//! Every method takes `now` explicitly, which is what makes the linger/size
//! invariants property-testable without sleeping (see `tests/gateway.rs`).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Scheduling class of a request.  Higher classes leave the queue first;
/// within a class, dispatch order is arrival order.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Priority {
    /// Dispatched before everything else (interactive traffic).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Dispatched only when nothing more urgent waits (batch/bulk traffic).
    Low,
}

impl Priority {
    /// All classes, most urgent first — the order batches are filled in.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// The dense index of this class (`High = 0 … Low = 2`), matching the
    /// order of [`Priority::ALL`] — indexes per-class counter arrays.
    pub fn index(self) -> usize {
        self.class()
    }

    /// Lower-case label, used in per-class metric names
    /// (`gateway.shed.deadline.high`, ...).
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    fn class(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// A queued item plus its arrival time.
struct Queued<T> {
    item: T,
    arrived: Instant,
}

/// The batch former.  Generic over the queued payload so the dispatch logic
/// can be exercised in isolation (the gateway queues full requests, the
/// property tests queue integers).
pub struct Batcher<T> {
    max_batch: usize,
    max_linger: Duration,
    /// Bounded-wait promotion: items that have waited this long leave with
    /// the next wave regardless of class.  `None` = strict class order.
    max_starvation: Option<Duration>,
    queues: [VecDeque<Queued<T>>; 3],
    len: usize,
}

impl<T> Batcher<T> {
    /// A batcher dispatching at most `max_batch` items per wave, holding an
    /// incomplete wave at most `max_linger`.
    pub fn new(max_batch: usize, max_linger: Duration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self {
            max_batch,
            max_linger,
            max_starvation: None,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            len: 0,
        }
    }

    /// Sets (or clears) the starvation bound: with `Some(bound)`, an item
    /// that has waited `bound` or longer is promoted ahead of class order —
    /// oldest first — so lower classes inherit a worst-case wait of
    /// roughly `bound` plus one dispatch interval under sustained
    /// higher-class load, instead of waiting forever.
    pub fn with_max_starvation(mut self, max_starvation: Option<Duration>) -> Self {
        self.max_starvation = max_starvation;
        self
    }

    /// The size knob.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The linger knob.
    pub fn max_linger(&self) -> Duration {
        self.max_linger
    }

    /// The starvation bound (`None` = strict class order).
    pub fn max_starvation(&self) -> Option<Duration> {
        self.max_starvation
    }

    /// Enqueues one item arriving at `now`.
    pub fn push(&mut self, item: T, priority: Priority, now: Instant) {
        self.queues[priority.class()].push_back(Queued { item, arrived: now });
        self.len += 1;
    }

    /// Queued items across all classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How long the oldest queued item has been waiting at `now`; `None`
    /// when the queue is empty.
    pub fn oldest_wait(&self, now: Instant) -> Option<Duration> {
        self.queues
            .iter()
            .filter_map(|q| q.front())
            .map(|e| now.saturating_duration_since(e.arrived))
            .max()
    }

    /// Whether a dispatch wave is due at `now`: the batch is full, or the
    /// oldest queued item has lingered `max_linger` or longer.
    pub fn ready(&self, now: Instant) -> bool {
        self.len >= self.max_batch || self.oldest_wait(now).is_some_and(|w| w >= self.max_linger)
    }

    /// Time until a wave becomes due if nothing else arrives: `None` when
    /// the queue is empty, zero when [`Batcher::ready`] already holds.
    pub fn time_to_ready(&self, now: Instant) -> Option<Duration> {
        if self.is_empty() {
            return None;
        }
        if self.ready(now) {
            return Some(Duration::ZERO);
        }
        let oldest = self.oldest_wait(now).expect("non-empty queue");
        Some(self.max_linger - oldest)
    }

    /// Takes the next wave: at most `min(max_batch, limit)` items, most
    /// urgent class first, arrival order within a class.  The caller passes
    /// the session's free credit count as `limit`, so a wave never exceeds
    /// the in-flight window it is dispatched into.
    ///
    /// With a starvation bound set, items that have waited `bound` or
    /// longer at `now` fill the wave first (oldest first, across classes);
    /// class order applies to whatever room remains.
    pub fn take_batch(&mut self, limit: usize, now: Instant) -> Vec<T> {
        let cap = self.max_batch.min(limit);
        let mut batch = Vec::new();
        if let Some(bound) = self.max_starvation {
            // Promote over-age items oldest-first.  Each queue is in
            // arrival order, so only fronts need comparing.
            while batch.len() < cap {
                let overdue = self
                    .queues
                    .iter()
                    .enumerate()
                    .filter_map(|(c, q)| q.front().map(|e| (c, e.arrived)))
                    .filter(|(_, arrived)| now.saturating_duration_since(*arrived) >= bound)
                    .min_by_key(|(_, arrived)| *arrived);
                match overdue {
                    Some((class, _)) => {
                        let e = self.queues[class].pop_front().expect("front exists");
                        batch.push(e.item);
                    }
                    None => break,
                }
            }
        }
        for q in &mut self.queues {
            while batch.len() < cap {
                match q.pop_front() {
                    Some(e) => batch.push(e.item),
                    None => break,
                }
            }
        }
        self.len -= batch.len();
        batch
    }

    /// Drains everything still queued, in dispatch order (shutdown path).
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut all = Vec::with_capacity(self.len);
        for q in &mut self.queues {
            all.extend(q.drain(..).map(|e| e.item));
        }
        self.len = 0;
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_batch_is_ready_immediately() {
        let now = Instant::now();
        let mut b = Batcher::new(2, Duration::from_millis(100));
        b.push(1u32, Priority::Normal, now);
        assert!(!b.ready(now));
        b.push(2, Priority::Normal, now);
        assert!(b.ready(now), "a full batch must not linger");
        assert_eq!(b.take_batch(usize::MAX, now), vec![1, 2]);
        assert!(b.is_empty());
    }

    #[test]
    fn incomplete_batch_dispatches_after_linger() {
        let now = Instant::now();
        let linger = Duration::from_millis(5);
        let mut b = Batcher::new(8, linger);
        b.push(7u32, Priority::Normal, now);
        assert!(!b.ready(now));
        assert_eq!(b.time_to_ready(now), Some(linger));
        let later = now + linger;
        assert!(b.ready(later));
        assert_eq!(b.time_to_ready(later), Some(Duration::ZERO));
    }

    #[test]
    fn priority_classes_leave_in_order() {
        let now = Instant::now();
        let mut b = Batcher::new(8, Duration::ZERO);
        b.push(30u32, Priority::Low, now);
        b.push(10, Priority::High, now);
        b.push(20, Priority::Normal, now);
        b.push(11, Priority::High, now);
        assert_eq!(b.take_batch(3, now), vec![10, 11, 20]);
        assert_eq!(b.take_batch(usize::MAX, now), vec![30]);
    }

    #[test]
    fn take_batch_respects_credit_limit() {
        let now = Instant::now();
        let mut b = Batcher::new(8, Duration::ZERO);
        for i in 0..5u32 {
            b.push(i, Priority::Normal, now);
        }
        assert_eq!(b.take_batch(2, now).len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.drain_all(), vec![2, 3, 4]);
    }

    #[test]
    fn overdue_items_jump_the_class_order_oldest_first() {
        let t0 = Instant::now();
        let bound = Duration::from_millis(50);
        let mut b = Batcher::new(4, Duration::ZERO).with_max_starvation(Some(bound));
        b.push(90u32, Priority::Low, t0);
        b.push(50, Priority::Normal, t0 + Duration::from_millis(10));
        // Before the bound elapses, strict class order holds.
        b.push(10, Priority::High, t0 + Duration::from_millis(20));
        assert_eq!(
            b.take_batch(1, t0 + Duration::from_millis(30)),
            vec![10],
            "nothing is overdue yet"
        );
        // Past the bound, the Low item (oldest) and then the Normal one
        // leave ahead of fresh High arrivals.
        b.push(11, Priority::High, t0 + Duration::from_millis(65));
        assert_eq!(
            b.take_batch(4, t0 + Duration::from_millis(70)),
            vec![90, 50, 11]
        );
    }
}
