//! Gateway observability: latency histograms and the combined metrics
//! snapshot.
//!
//! [`LatencyHistogram`] is a fixed set of geometrically-growing buckets, so
//! recording is O(1), memory is constant regardless of traffic, and
//! percentile reads are monotone in the quantile by construction (p50 ≤ p95
//! ≤ p99 always holds).  [`GatewayMetrics`] combines the gateway's own
//! counters with the live [`RuntimeReport`] of the underlying session, so
//! one snapshot answers both "how is the front-end doing" (queue depth,
//! shed counts, percentiles) and "how is the cluster doing" (per-device
//! compute/wire counters).

use edge_runtime::RuntimeReport;
use serde::Serialize;

/// First bucket upper bound, in milliseconds.
const BUCKET_BASE_MS: f64 = 0.05;
/// Geometric growth factor between bucket upper bounds.
const BUCKET_GROWTH: f64 = 1.25;
/// Bucket count: covers ~0.05 ms up to ~0.05·1.25⁷⁸ ≈ 2×10⁶ ms.
const NUM_BUCKETS: usize = 80;

/// A fixed-size histogram of latencies with geometric buckets.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ms: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            max_ms: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&mut self, ms: f64) {
        let ms = ms.max(0.0);
        let idx = if ms <= BUCKET_BASE_MS {
            0
        } else {
            let raw = (ms / BUCKET_BASE_MS).ln() / BUCKET_GROWTH.ln();
            (raw.ceil() as usize).min(NUM_BUCKETS - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest recorded sample.
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// The latency at quantile `q` (in `[0, 1]`): the upper bound of the
    /// first bucket whose cumulative count reaches `q·total`, capped at the
    /// largest recorded sample.  Zero while the histogram is empty.
    /// Monotone non-decreasing in `q` by construction.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = BUCKET_BASE_MS * BUCKET_GROWTH.powi(i as i32);
                return upper.min(self.max_ms);
            }
        }
        self.max_ms
    }
}

/// One snapshot of the gateway: front-end counters plus the live session
/// report underneath it.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayMetrics {
    /// The serving plan epoch of the session underneath at snapshot time
    /// (`0` until the first hot swap) — windows sampled before and after an
    /// [`crate::Gateway::apply_plan`] are distinguishable by it.
    pub epoch: u64,
    /// Responses delivered `Ok` to clients.
    pub completed: u64,
    /// Requests shed with [`crate::GatewayError::DeadlineExceeded`] — at
    /// admission, at dispatch, or on late completion.
    pub shed_deadline: u64,
    /// Requests shed with [`crate::GatewayError::Overloaded`] at admission.
    pub shed_overload: u64,
    /// `shed_deadline` split by scheduling class, in [`crate::Priority::ALL`]
    /// order (`[high, normal, low]`) — which traffic class is missing its
    /// SLO, not just how much.
    pub shed_deadline_by_class: [u64; 3],
    /// `shed_overload` split by scheduling class, same order.
    pub shed_overload_by_class: [u64; 3],
    /// Requests waiting in the batcher right now.
    pub queue_depth: usize,
    /// Requests submitted into the session so far.
    pub dispatched: u64,
    /// Dispatch waves formed so far.
    pub batches: u64,
    /// Mean requests per dispatch wave (`dispatched / batches`).
    pub batch_occupancy: f64,
    /// Median end-to-end latency (enqueue → response), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// The measured service-time estimate (EWMA of end-to-end latency) the
    /// admission controller sheds against; zero until the first completion.
    pub est_service_ms: f64,
    /// The underlying session's live measurement.
    pub session: RuntimeReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        let mut h = LatencyHistogram::default();
        for ms in [0.2, 0.4, 1.0, 3.0, 9.0, 27.0, 81.0, 81.0, 243.0, 500.0] {
            h.record(ms);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} / {p95} / {p99}");
        assert!(p99 <= h.max_ms());
        assert!(p50 > 0.0);
    }

    #[test]
    fn single_sample_reports_itself_everywhere() {
        let mut h = LatencyHistogram::default();
        h.record(12.5);
        // Every quantile falls in the single occupied bucket, capped at the
        // recorded maximum.
        assert_eq!(h.percentile(0.01), 12.5);
        assert_eq!(h.percentile(0.99), 12.5);
    }

    #[test]
    fn out_of_range_samples_clamp_to_the_edges() {
        let mut h = LatencyHistogram::default();
        h.record(-3.0);
        h.record(1e12);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(0.1) <= h.percentile(0.999));
    }
}
