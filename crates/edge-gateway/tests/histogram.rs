//! `LatencyHistogram` edge cases as properties: the empty histogram, the
//! single sample, and percentile monotonicity / max-boundedness under
//! arbitrary sample streams.

use edge_gateway::LatencyHistogram;
use proptest::prelude::*;

#[test]
fn empty_histogram_reports_zero_at_every_quantile() {
    let h = LatencyHistogram::default();
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 0.0, "q = {q}");
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.max_ms(), 0.0);
}

#[test]
fn single_sample_is_every_percentile() {
    let mut h = LatencyHistogram::default();
    h.record(7.25);
    assert_eq!(h.count(), 1);
    for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 7.25, "q = {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// p50 ≤ p95 ≤ p99 on any input, and no percentile exceeds the largest
    /// recorded sample (the geometric bucket upper bound is capped at the
    /// observed maximum).
    #[test]
    fn percentiles_are_monotone_and_capped_by_the_max(
        samples in proptest::collection::vec(0.01f64..1e6, 1..200),
    ) {
        let mut h = LatencyHistogram::default();
        for &ms in &samples {
            h.record(ms);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(p99 <= max, "p99 {p99} exceeds the recorded max {max}");
        prop_assert!(p50 > 0.0, "positive samples cannot yield a zero median");
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Monotone over a dense quantile sweep, not just the three headline
    /// percentiles — the cumulative-bucket walk can never step backwards.
    #[test]
    fn quantile_sweep_never_decreases(
        samples in proptest::collection::vec(0.0f64..1e4, 1..100),
    ) {
        let mut h = LatencyHistogram::default();
        for &ms in &samples {
            h.record(ms);
        }
        let mut last = 0.0f64;
        for step in 0..=100 {
            let p = h.percentile(step as f64 / 100.0);
            prop_assert!(p >= last, "percentile dipped from {last} to {p} at q {}", step as f64 / 100.0);
            last = p;
        }
    }

    /// Out-of-range quantiles clamp instead of panicking or escaping the
    /// recorded range.
    #[test]
    fn out_of_range_quantiles_clamp(q in -10.0f64..10.0) {
        let mut h = LatencyHistogram::default();
        h.record(1.0);
        h.record(100.0);
        let p = h.percentile(q);
        prop_assert!((0.0..=h.max_ms()).contains(&p));
    }
}
