//! Discrete-event simulation of distributed CNN inference on edge devices.
//!
//! This crate is the stand-in for the paper's physical testbed (§V-A): a set
//! of service providers connected through shaped WiFi, a service requester
//! streaming images, and split-parts of layer-volumes preloaded onto the
//! providers.  Given a model, a cluster and an execution plan it computes
//! the event times of every compute and transfer in the dependency graph —
//! which is exactly what an event-driven simulator of the three-thread
//! (receive / compute / send) provider runtime produces, because within one
//! image there is no resource contention beyond the data dependencies and
//! the per-link serialisation the transfer model already captures.
//!
//! Outputs mirror the paper's measurements:
//!
//! * images-per-second over a stream of images (the IPS metric of Figs.
//!   5–11),
//! * per-image end-to-end latency over time (Fig. 13),
//! * per-device maximum computing and transmission latency (Fig. 15).
//!
//! The same volume-by-volume stepper that powers the simulator is exposed
//! publicly ([`stepper`]) because the OSDS MDP observes exactly its
//! intermediate state: the accumulated latencies of the devices after each
//! layer-volume.

pub mod cluster;
pub mod metrics;
pub mod plan;
pub mod sim;
pub mod stepper;

pub use cluster::{Cluster, Endpoint, GroundTruthCompute, PartCompute};
pub use metrics::SimReport;
pub use plan::{ExecutionPlan, VolumeAssignment};
pub use sim::{simulate, SimOptions};
pub use stepper::{advance_volume, finish_image, ClusterState, DataLocation, VolumeStats};
