//! Measurement reports produced by the simulator.

use serde::{Deserialize, Serialize};

/// The measurements the paper reports for one distribution strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end latency of every streamed image, in ms, in order.
    pub per_image_latency_ms: Vec<f64>,
    /// Images per second over the whole stream (the IPS metric).
    pub ips: f64,
    /// Mean per-image latency in ms.
    pub mean_latency_ms: f64,
    /// Mean computing latency per image, per device.
    pub per_device_compute_ms: Vec<f64>,
    /// Mean transmission latency per image, per device.
    pub per_device_transmission_ms: Vec<f64>,
}

impl SimReport {
    /// Builds a report from raw per-image and per-device accumulators.
    pub fn from_raw(
        per_image_latency_ms: Vec<f64>,
        per_device_compute_totals: Vec<f64>,
        per_device_transmission_totals: Vec<f64>,
    ) -> Self {
        let images = per_image_latency_ms.len().max(1) as f64;
        let total_ms: f64 = per_image_latency_ms.iter().sum();
        let mean_latency_ms = total_ms / images;
        let ips = if total_ms > 0.0 {
            images / (total_ms / 1e3)
        } else {
            0.0
        };
        Self {
            per_image_latency_ms,
            ips,
            mean_latency_ms,
            per_device_compute_ms: per_device_compute_totals
                .iter()
                .map(|v| v / images)
                .collect(),
            per_device_transmission_ms: per_device_transmission_totals
                .iter()
                .map(|v| v / images)
                .collect(),
        }
    }

    /// The maximum per-device computing latency (the light bars of Fig. 15).
    pub fn max_compute_ms(&self) -> f64 {
        self.per_device_compute_ms
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// The maximum per-device transmission latency (the dark bars of Fig. 15).
    pub fn max_transmission_ms(&self) -> f64 {
        self.per_device_transmission_ms
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// Latency at a given percentile (0–100) over the streamed images.
    pub fn latency_percentile(&self, pct: f64) -> f64 {
        if self.per_image_latency_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.per_image_latency_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ips_is_inverse_of_mean_latency() {
        let r = SimReport::from_raw(
            vec![100.0, 100.0, 100.0],
            vec![50.0 * 3.0],
            vec![10.0 * 3.0],
        );
        assert!((r.mean_latency_ms - 100.0).abs() < 1e-9);
        assert!((r.ips - 10.0).abs() < 1e-9);
        assert!((r.per_device_compute_ms[0] - 50.0).abs() < 1e-9);
        assert!((r.per_device_transmission_ms[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn max_metrics() {
        let r = SimReport::from_raw(vec![10.0], vec![3.0, 7.0], vec![1.0, 0.5]);
        assert_eq!(r.max_compute_ms(), 7.0);
        assert_eq!(r.max_transmission_ms(), 1.0);
    }

    #[test]
    fn percentiles() {
        let lat: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let r = SimReport::from_raw(lat, vec![0.0], vec![0.0]);
        assert_eq!(r.latency_percentile(0.0), 1.0);
        assert_eq!(r.latency_percentile(100.0), 100.0);
        assert!((r.latency_percentile(50.0) - 50.0).abs() <= 1.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::from_raw(vec![], vec![], vec![]);
        assert_eq!(r.ips, 0.0);
        assert_eq!(r.latency_percentile(50.0), 0.0);
        assert_eq!(r.max_compute_ms(), 0.0);
    }
}
