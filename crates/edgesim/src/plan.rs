//! Execution plans: which device computes which split-part of which
//! layer-volume, and where the FC head (if any) runs.

use cnn_model::{Model, ModelError, PartPlan, PartitionScheme, VolumeSplit};
use serde::{Deserialize, Serialize};

/// The assignment of one layer-volume's split-parts to devices.
///
/// `parts[i]` is device `i`'s part; devices with no share hold an empty part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeAssignment {
    /// One part plan per device (index-aligned with the cluster's devices).
    pub parts: Vec<PartPlan>,
}

impl VolumeAssignment {
    /// Output row range of the volume's last layer held by device `i`.
    pub fn output_range(&self, device: usize) -> (usize, usize) {
        self.parts[device].output_rows
    }

    /// Devices that actually hold output rows of this volume.
    pub fn holders(&self) -> Vec<usize> {
        self.parts
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

/// A full execution plan for a model on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Per-volume assignments, in model order.
    pub volumes: Vec<VolumeAssignment>,
    /// The device that computes the FC head (the paper assigns it to the
    /// provider with the largest share of the last layer-volume).  `None`
    /// for models without a head.
    pub head_device: Option<usize>,
}

impl ExecutionPlan {
    /// Builds an execution plan from a partition scheme and one vertical
    /// split per volume.  The FC head (if the model has one) is assigned to
    /// the device with the largest share of the last volume.
    pub fn from_splits(
        model: &Model,
        scheme: &PartitionScheme,
        splits: &[VolumeSplit],
        num_devices: usize,
    ) -> Result<Self, ModelError> {
        let volumes_def = scheme.volumes();
        if volumes_def.len() != splits.len() {
            return Err(ModelError::InvalidSplit(format!(
                "{} splits provided for {} volumes",
                splits.len(),
                volumes_def.len()
            )));
        }
        let mut volumes = Vec::with_capacity(volumes_def.len());
        for (volume, split) in volumes_def.iter().zip(splits) {
            if split.num_parts() != num_devices {
                return Err(ModelError::InvalidSplit(format!(
                    "split addresses {} devices, cluster has {}",
                    split.num_parts(),
                    num_devices
                )));
            }
            let parts = PartPlan::plan_all(model, *volume, split)?;
            volumes.push(VolumeAssignment { parts });
        }
        let head_device = if model.head_layers().is_empty() {
            None
        } else {
            let last = volumes.last().expect("at least one volume");
            let best = last
                .parts
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.output_rows.1 - p.output_rows.0)
                .map(|(i, _)| i)
                .unwrap_or(0);
            Some(best)
        };
        Ok(Self {
            volumes,
            head_device,
        })
    }

    /// Single-device offload: the whole distributable prefix (and head) on
    /// one device.
    pub fn offload(model: &Model, device: usize, num_devices: usize) -> Result<Self, ModelError> {
        let scheme = PartitionScheme::single_volume(model);
        let h = model.prefix_output().h;
        // Give every row to `device`: cuts place the full range at that slot.
        let mut cuts = Vec::with_capacity(num_devices - 1);
        for i in 0..num_devices - 1 {
            cuts.push(if i < device { 0 } else { h });
        }
        let split = VolumeSplit::new(cuts, h);
        let mut plan = Self::from_splits(model, &scheme, &[split], num_devices)?;
        if !model.head_layers().is_empty() {
            plan.head_device = Some(device);
        }
        Ok(plan)
    }

    /// Number of layer-volumes.
    pub fn num_volumes(&self) -> usize {
        self.volumes.len()
    }

    /// Validates that every volume's parts exactly tile its output height.
    pub fn validate(&self, model: &Model) -> Result<(), ModelError> {
        for assignment in &self.volumes {
            let Some(first) = assignment.parts.first() else {
                return Err(ModelError::InvalidSplit("volume with no parts".into()));
            };
            let volume = first.volume;
            let h = volume.last_output_height(model);
            let mut covered = 0usize;
            let mut cursor = 0usize;
            for part in &assignment.parts {
                if part.volume != volume {
                    return Err(ModelError::InvalidSplit(
                        "parts of one assignment must reference the same volume".into(),
                    ));
                }
                let (lo, hi) = part.output_rows;
                if lo < cursor {
                    return Err(ModelError::InvalidSplit(format!(
                        "overlapping output rows at {lo} (cursor {cursor})"
                    )));
                }
                if lo != hi {
                    if lo != cursor {
                        return Err(ModelError::InvalidSplit(format!(
                            "gap in output rows: expected {cursor}, got {lo}"
                        )));
                    }
                    covered += hi - lo;
                    cursor = hi;
                }
            }
            if covered != h {
                return Err(ModelError::InvalidSplit(format!(
                    "parts cover {covered} of {h} output rows"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::LayerOp;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "t",
            Shape::new(3, 32, 32),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_splits_builds_and_validates() {
        let m = model();
        let scheme = PartitionScheme::new(&m, vec![0, 2, 3]).unwrap();
        let splits: Vec<VolumeSplit> = scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(3, v.last_output_height(&m)))
            .collect();
        let plan = ExecutionPlan::from_splits(&m, &scheme, &splits, 3).unwrap();
        assert_eq!(plan.num_volumes(), 2);
        plan.validate(&m).unwrap();
        assert!(plan.head_device.is_some());
    }

    #[test]
    fn head_goes_to_largest_share() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let h = m.prefix_output().h; // 16
        let split = VolumeSplit::new(vec![2, 6], h); // shares 2, 4, 10
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 3).unwrap();
        assert_eq!(plan.head_device, Some(2));
    }

    #[test]
    fn offload_gives_everything_to_one_device() {
        let m = model();
        for target in 0..3 {
            let plan = ExecutionPlan::offload(&m, target, 3).unwrap();
            plan.validate(&m).unwrap();
            assert_eq!(plan.head_device, Some(target));
            let holders = plan.volumes[0].holders();
            assert_eq!(holders, vec![target]);
        }
    }

    #[test]
    fn mismatched_split_count_rejected() {
        let m = model();
        let scheme = PartitionScheme::new(&m, vec![0, 2, 3]).unwrap();
        let one = VolumeSplit::equal(3, 16);
        assert!(ExecutionPlan::from_splits(&m, &scheme, &[one], 3).is_err());
    }

    #[test]
    fn mismatched_device_count_rejected() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let split = VolumeSplit::equal(2, m.prefix_output().h);
        assert!(ExecutionPlan::from_splits(&m, &scheme, &[split], 4).is_err());
    }

    #[test]
    fn validate_detects_gap() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let h = m.prefix_output().h;
        let split = VolumeSplit::equal(2, h);
        let mut plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        // Corrupt: drop one device's part to an empty range.
        plan.volumes[0].parts[0] =
            PartPlan::plan(&m, plan.volumes[0].parts[0].volume, 0, 0).unwrap();
        assert!(plan.validate(&m).is_err());
    }

    #[test]
    fn holders_and_ranges() {
        let m = model();
        let scheme = PartitionScheme::single_volume(&m);
        let h = m.prefix_output().h;
        let split = VolumeSplit::new(vec![0, 8], h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 3).unwrap();
        let va = &plan.volumes[0];
        assert_eq!(va.holders(), vec![1, 2]);
        assert_eq!(va.output_range(1), (0, 8));
        assert_eq!(va.output_range(2), (8, h));
    }
}
