//! The volume-by-volume stepper at the heart of the simulator.
//!
//! The state after layer-volume `l` — one "ready time" per device — is
//! exactly the vector of accumulated latencies `T_l` that the OSDS MDP uses
//! as (part of) its observation, so the stepper is shared between the
//! simulator and the reinforcement-learning environment.

use crate::cluster::{Cluster, Endpoint, PartCompute};
use crate::plan::VolumeAssignment;
use cnn_model::{Model, BYTES_PER_ELEM};
use serde::{Deserialize, Serialize};

/// Where the current feature map (the input of the next layer-volume) lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataLocation {
    /// The full input image is still on the service requester.
    Requester,
    /// Row range `[lo, hi)` of the feature map held by each device.
    Devices(Vec<(usize, usize)>),
}

/// Per-device timing state while an image flows through the volumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    /// Absolute simulation time at which the image left the requester.
    pub image_start_ms: f64,
    /// Absolute time at which each device finished its latest work.
    pub ready_ms: Vec<f64>,
}

impl ClusterState {
    /// Fresh state for an image starting at `start_ms` on `n` devices.
    pub fn new(start_ms: f64, n: usize) -> Self {
        Self {
            image_start_ms: start_ms,
            ready_ms: vec![start_ms; n],
        }
    }

    /// Accumulated latency of each device relative to the image start (the
    /// `T_l` vector of the MDP state, Eq. 7).
    pub fn accumulated_latencies(&self) -> Vec<f64> {
        self.ready_ms
            .iter()
            .map(|r| r - self.image_start_ms)
            .collect()
    }
}

/// Timing breakdown of one layer-volume step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VolumeStats {
    /// Computing latency incurred by each device in this volume.
    pub compute_ms: Vec<f64>,
    /// Transmission latency (max over incoming transfers) incurred by each
    /// device while gathering its input for this volume.
    pub transmission_ms: Vec<f64>,
}

fn input_bytes_per_row(model: &Model, volume_start: usize) -> f64 {
    let first = &model.layers()[volume_start];
    first.input.c as f64 * first.input.w as f64 * BYTES_PER_ELEM
}

fn output_bytes_per_row(model: &Model, volume_end: usize) -> f64 {
    let last = &model.layers()[volume_end - 1];
    last.output.c as f64 * last.output.w as f64 * BYTES_PER_ELEM
}

fn overlap(a: (usize, usize), b: (usize, usize)) -> usize {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    hi.saturating_sub(lo)
}

/// Advances the image through one layer-volume.
///
/// Each device first gathers the input rows its part needs (from the
/// requester or from whichever devices hold them), then computes its part.
/// Returns the per-device timing breakdown and updates `location` to the
/// output row distribution of this volume.
pub fn advance_volume(
    model: &Model,
    cluster: &Cluster,
    compute: &dyn PartCompute,
    assignment: &VolumeAssignment,
    location: &mut DataLocation,
    state: &mut ClusterState,
) -> VolumeStats {
    let n = cluster.len();
    assert_eq!(assignment.parts.len(), n, "one part per device required");
    let volume = assignment.parts[0].volume;
    let in_row_bytes = input_bytes_per_row(model, volume.start);

    let mut stats = VolumeStats {
        compute_ms: vec![0.0; n],
        transmission_ms: vec![0.0; n],
    };
    let mut new_ready = state.ready_ms.clone();

    for (i, part) in assignment.parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let needed = part.input_rows;
        // When does device i have all its input rows?
        let mut data_ready = state.image_start_ms;
        let mut max_transfer = 0.0f64;
        match location {
            DataLocation::Requester => {
                let bytes = (needed.1 - needed.0) as f64 * in_row_bytes;
                let t = cluster.transfer_ms(
                    Endpoint::Requester,
                    Endpoint::Device(i),
                    bytes,
                    state.image_start_ms,
                );
                data_ready = state.image_start_ms + t;
                max_transfer = t;
            }
            DataLocation::Devices(ranges) => {
                for (j, &range) in ranges.iter().enumerate() {
                    let rows = overlap(needed, range);
                    if rows == 0 {
                        continue;
                    }
                    let bytes = rows as f64 * in_row_bytes;
                    let depart = state.ready_ms[j];
                    let t = if j == i {
                        0.0
                    } else {
                        cluster.transfer_ms(Endpoint::Device(j), Endpoint::Device(i), bytes, depart)
                    };
                    data_ready = data_ready.max(depart + t);
                    max_transfer = max_transfer.max(t);
                }
            }
        }
        // The device must also have finished whatever it was doing before.
        let start_compute = data_ready.max(state.ready_ms[i]);
        let comp = compute.part_compute_ms(i, model, part);
        new_ready[i] = start_compute + comp;
        stats.compute_ms[i] = comp;
        stats.transmission_ms[i] = max_transfer;
    }

    state.ready_ms = new_ready;
    *location = DataLocation::Devices(assignment.parts.iter().map(|p| p.output_rows).collect());
    stats
}

/// Result of [`finish_image`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinishStats {
    /// Absolute time at which the requester holds the final result.
    pub finish_ms: f64,
    /// Transmission latency of the gather/return phase attributed to each
    /// device.
    pub transmission_ms: Vec<f64>,
    /// Head computing latency (on the head device), if any.
    pub head_compute_ms: f64,
}

/// Completes an image after the last layer-volume: gathers the distributed
/// output onto the FC-head device (if the model has a head), runs the head,
/// and returns the final result to the requester.
pub fn finish_image(
    model: &Model,
    cluster: &Cluster,
    compute: &dyn PartCompute,
    last_assignment: &VolumeAssignment,
    state: &ClusterState,
    head_device: Option<usize>,
) -> FinishStats {
    let n = cluster.len();
    let volume = last_assignment.parts[0].volume;
    let out_row_bytes = output_bytes_per_row(model, volume.end);
    let mut transmission_ms = vec![0.0; n];

    let finish_ms = if let Some(h) = head_device {
        // Gather every holder's rows onto the head device.
        let mut head_ready = state.ready_ms[h];
        for (j, part) in last_assignment.parts.iter().enumerate() {
            if part.is_empty() || j == h {
                continue;
            }
            let rows = part.output_rows.1 - part.output_rows.0;
            let bytes = rows as f64 * out_row_bytes;
            let t = cluster.transfer_ms(
                Endpoint::Device(j),
                Endpoint::Device(h),
                bytes,
                state.ready_ms[j],
            );
            transmission_ms[j] += t;
            head_ready = head_ready.max(state.ready_ms[j] + t);
        }
        let head_ms = compute.head_compute_ms(h, model);
        let head_done = head_ready + head_ms;
        let back = cluster.transfer_ms(
            Endpoint::Device(h),
            Endpoint::Requester,
            model.final_output_bytes(),
            head_done,
        );
        transmission_ms[h] += back;
        return FinishStats {
            finish_ms: head_done + back,
            transmission_ms,
            head_compute_ms: head_ms,
        };
    } else {
        // No head: every holder returns its rows to the requester directly.
        let mut finish = state.image_start_ms;
        for (j, part) in last_assignment.parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let rows = part.output_rows.1 - part.output_rows.0;
            let bytes = rows as f64 * out_row_bytes;
            let t = cluster.transfer_ms(
                Endpoint::Device(j),
                Endpoint::Requester,
                bytes,
                state.ready_ms[j],
            );
            transmission_ms[j] += t;
            finish = finish.max(state.ready_ms[j] + t);
        }
        finish
    };
    FinishStats {
        finish_ms,
        transmission_ms,
        head_compute_ms: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;
    use cnn_model::{LayerOp, PartitionScheme, VolumeSplit};
    use device_profile::{DeviceSpec, DeviceType};
    use netsim::LinkConfig;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "t",
            Shape::new(3, 64, 64),
            &[
                LayerOp::conv(8, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    fn cluster() -> Cluster {
        Cluster::uniform(
            vec![
                DeviceSpec::new("xavier-0", DeviceType::Xavier),
                DeviceSpec::new("nano-0", DeviceType::Nano),
            ],
            LinkConfig::constant(100.0),
        )
    }

    fn plan(model: &Model, n: usize) -> ExecutionPlan {
        let scheme = PartitionScheme::single_volume(model);
        let split = VolumeSplit::equal(n, model.prefix_output().h);
        ExecutionPlan::from_splits(model, &scheme, &[split], n).unwrap()
    }

    #[test]
    fn accumulated_latencies_start_at_zero() {
        let s = ClusterState::new(100.0, 3);
        assert_eq!(s.accumulated_latencies(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn advance_updates_ready_and_location() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let plan = plan(&m, 2);
        let mut state = ClusterState::new(0.0, 2);
        let mut location = DataLocation::Requester;
        let stats = advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[0],
            &mut location,
            &mut state,
        );
        assert!(state.ready_ms.iter().all(|&r| r > 0.0));
        assert!(stats.compute_ms.iter().all(|&v| v > 0.0));
        assert!(stats.transmission_ms.iter().all(|&v| v > 0.0));
        match location {
            DataLocation::Devices(ranges) => {
                assert_eq!(ranges.len(), 2);
                assert_eq!(ranges[0].0, 0);
            }
            _ => panic!("location should now be on devices"),
        }
    }

    #[test]
    fn slower_device_finishes_later_on_equal_split() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let plan = plan(&m, 2);
        let mut state = ClusterState::new(0.0, 2);
        let mut location = DataLocation::Requester;
        advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[0],
            &mut location,
            &mut state,
        );
        // Device 1 is a Nano, device 0 a Xavier: equal split leaves the Nano behind.
        assert!(state.ready_ms[1] > state.ready_ms[0]);
    }

    #[test]
    fn empty_part_leaves_device_untouched() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::single_volume(&m);
        let h = m.prefix_output().h;
        // All rows to device 0.
        let split = VolumeSplit::new(vec![h], h);
        let plan = ExecutionPlan::from_splits(&m, &scheme, &[split], 2).unwrap();
        let mut state = ClusterState::new(5.0, 2);
        let mut location = DataLocation::Requester;
        let stats = advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[0],
            &mut location,
            &mut state,
        );
        assert_eq!(state.ready_ms[1], 5.0);
        assert_eq!(stats.compute_ms[1], 0.0);
    }

    #[test]
    fn finish_image_with_head_gathers_to_head_device() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let plan = plan(&m, 2);
        let mut state = ClusterState::new(0.0, 2);
        let mut location = DataLocation::Requester;
        advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[0],
            &mut location,
            &mut state,
        );
        let fin = finish_image(&m, &c, &compute, &plan.volumes[0], &state, plan.head_device);
        assert!(fin.finish_ms > state.ready_ms.iter().cloned().fold(0.0, f64::max));
        assert!(fin.head_compute_ms > 0.0);
    }

    #[test]
    fn finish_image_without_head_returns_to_requester() {
        let m = Model::new(
            "nohead",
            Shape::new(3, 32, 32),
            &[LayerOp::conv(8, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let plan = plan(&m, 2);
        assert!(plan.head_device.is_none());
        let mut state = ClusterState::new(0.0, 2);
        let mut location = DataLocation::Requester;
        advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[0],
            &mut location,
            &mut state,
        );
        let fin = finish_image(&m, &c, &compute, &plan.volumes[0], &state, None);
        assert!(fin.finish_ms > 0.0);
        assert_eq!(fin.head_compute_ms, 0.0);
    }

    #[test]
    fn second_volume_reuses_local_rows() {
        // With two volumes split identically, most of each device's input for
        // the second volume is already local, so its gather transfer should
        // be much smaller than the initial image scatter.
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::new(&m, vec![0, 2, 3]).unwrap();
        let splits: Vec<VolumeSplit> = scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(2, v.last_output_height(&m)))
            .collect();
        let plan = ExecutionPlan::from_splits(&m, &scheme, &splits, 2).unwrap();
        let mut state = ClusterState::new(0.0, 2);
        let mut location = DataLocation::Requester;
        let s0 = advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[0],
            &mut location,
            &mut state,
        );
        let s1 = advance_volume(
            &m,
            &c,
            &compute,
            &plan.volumes[1],
            &mut location,
            &mut state,
        );
        assert!(s1.transmission_ms[0] < s0.transmission_ms[0]);
    }
}
