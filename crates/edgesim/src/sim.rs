//! Streaming simulation of an execution plan.

use crate::cluster::{Cluster, PartCompute};
use crate::metrics::SimReport;
use crate::plan::ExecutionPlan;
use crate::stepper::{advance_volume, finish_image, ClusterState, DataLocation};
use cnn_model::Model;
use serde::{Deserialize, Serialize};

/// Options for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Number of images streamed from the requester.  The paper streams
    /// 5000; the default here is smaller because the per-image latency is
    /// deterministic given the link traces, so a few hundred images already
    /// sample the trace variation.
    pub num_images: usize,
    /// Absolute simulation time at which the stream starts (ms).  Lets the
    /// dynamic-network experiments start at different points of the traces.
    pub start_ms: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            num_images: 200,
            start_ms: 0.0,
        }
    }
}

/// Simulates streaming `options.num_images` images through `plan` on
/// `cluster`, one at a time (the paper's requester does not send image
/// `k + 1` before the result of image `k` arrived).
pub fn simulate(
    model: &Model,
    cluster: &Cluster,
    compute: &dyn PartCompute,
    plan: &ExecutionPlan,
    options: SimOptions,
) -> SimReport {
    let n = cluster.len();
    let mut per_image = Vec::with_capacity(options.num_images);
    let mut compute_totals = vec![0.0; n];
    let mut transmission_totals = vec![0.0; n];
    let mut now = options.start_ms;

    for _ in 0..options.num_images {
        let mut state = ClusterState::new(now, n);
        let mut location = DataLocation::Requester;
        for assignment in &plan.volumes {
            let stats = advance_volume(
                model,
                cluster,
                compute,
                assignment,
                &mut location,
                &mut state,
            );
            for d in 0..n {
                compute_totals[d] += stats.compute_ms[d];
                transmission_totals[d] += stats.transmission_ms[d];
            }
        }
        let last = plan.volumes.last().expect("plan has at least one volume");
        let fin = finish_image(model, cluster, compute, last, &state, plan.head_device);
        for (total, t) in transmission_totals.iter_mut().zip(&fin.transmission_ms) {
            *total += t;
        }
        if let Some(h) = plan.head_device {
            compute_totals[h] += fin.head_compute_ms;
        }
        per_image.push(fin.finish_ms - now);
        now = fin.finish_ms;
    }

    SimReport::from_raw(per_image, compute_totals, transmission_totals)
}

/// Convenience: simulate with the cluster's ground-truth compute backend.
pub fn simulate_ground_truth(
    model: &Model,
    cluster: &Cluster,
    plan: &ExecutionPlan,
    options: SimOptions,
) -> SimReport {
    let compute = cluster.ground_truth_compute();
    simulate(model, cluster, &compute, plan, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;
    use cnn_model::{LayerOp, PartitionScheme, VolumeSplit};
    use device_profile::{DeviceSpec, DeviceType};
    use netsim::LinkConfig;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "t",
            Shape::new(3, 64, 64),
            &[
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(32, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    fn cluster(n_xavier: usize, n_nano: usize, mbps: f64) -> Cluster {
        let mut devices = Vec::new();
        for i in 0..n_xavier {
            devices.push(DeviceSpec::new(format!("xavier-{i}"), DeviceType::Xavier));
        }
        for i in 0..n_nano {
            devices.push(DeviceSpec::new(format!("nano-{i}"), DeviceType::Nano));
        }
        Cluster::uniform(devices, LinkConfig::constant(mbps))
    }

    fn equal_plan(model: &Model, boundaries: Vec<usize>, n: usize) -> ExecutionPlan {
        let scheme = PartitionScheme::new(model, boundaries).unwrap();
        let splits: Vec<VolumeSplit> = scheme
            .volumes()
            .iter()
            .map(|v| VolumeSplit::equal(n, v.last_output_height(model)))
            .collect();
        ExecutionPlan::from_splits(model, &scheme, &splits, n).unwrap()
    }

    #[test]
    fn report_has_expected_shape() {
        let m = model();
        let c = cluster(1, 1, 100.0);
        let plan = equal_plan(&m, vec![0, 5], 2);
        let report = simulate_ground_truth(
            &m,
            &c,
            &plan,
            SimOptions {
                num_images: 10,
                start_ms: 0.0,
            },
        );
        assert_eq!(report.per_image_latency_ms.len(), 10);
        assert!(report.ips > 0.0);
        assert!(report.mean_latency_ms > 0.0);
        assert_eq!(report.per_device_compute_ms.len(), 2);
    }

    #[test]
    fn constant_links_give_constant_latency() {
        let m = model();
        let c = cluster(1, 1, 100.0);
        let plan = equal_plan(&m, vec![0, 5], 2);
        let report = simulate_ground_truth(
            &m,
            &c,
            &plan,
            SimOptions {
                num_images: 5,
                start_ms: 0.0,
            },
        );
        let first = report.per_image_latency_ms[0];
        for &l in &report.per_image_latency_ms {
            assert!((l - first).abs() < 1e-6);
        }
    }

    #[test]
    fn offload_to_fast_device_beats_offload_to_slow_device() {
        let m = model();
        let c = cluster(1, 1, 100.0);
        let fast = ExecutionPlan::offload(&m, 0, 2).unwrap();
        let slow = ExecutionPlan::offload(&m, 1, 2).unwrap();
        let opts = SimOptions {
            num_images: 3,
            start_ms: 0.0,
        };
        let fast_r = simulate_ground_truth(&m, &c, &fast, opts);
        let slow_r = simulate_ground_truth(&m, &c, &slow, opts);
        assert!(fast_r.ips > slow_r.ips);
    }

    #[test]
    fn higher_bandwidth_increases_ips() {
        let m = model();
        let plan = equal_plan(&m, vec![0, 5], 2);
        let opts = SimOptions {
            num_images: 3,
            start_ms: 0.0,
        };
        let slow = simulate_ground_truth(&m, &cluster(1, 1, 20.0), &plan, opts);
        let fast = simulate_ground_truth(&m, &cluster(1, 1, 300.0), &plan, opts);
        assert!(fast.ips > slow.ips);
    }

    #[test]
    fn fused_volume_beats_layer_by_layer_on_slow_network() {
        // Layer-by-layer distribution re-transmits every intermediate
        // feature map over the slow network; fusing into one volume avoids
        // that.  This is the core observation behind DeepThings/AOFL and the
        // reason CoEdge-style splitting loses in Fig. 13/15.
        let m = model();
        let c = cluster(1, 1, 50.0);
        let fused = equal_plan(&m, vec![0, 5], 2);
        let layered = equal_plan(&m, (0..=5).collect(), 2);
        let opts = SimOptions {
            num_images: 3,
            start_ms: 0.0,
        };
        let fused_r = simulate_ground_truth(&m, &c, &fused, opts);
        let layered_r = simulate_ground_truth(&m, &c, &layered, opts);
        assert!(fused_r.ips > layered_r.ips);
        assert!(fused_r.max_transmission_ms() < layered_r.max_transmission_ms());
    }

    #[test]
    fn two_fast_devices_beat_one_on_fast_network() {
        // A compute-heavy model (VGG-16) on a fast network: splitting the
        // work across two Xaviers must beat offloading to a single Xavier.
        // (For tiny models the per-layer launch overhead dominates and
        // offloading wins — which the simulator also reproduces.)
        let m = cnn_model::zoo::vgg16();
        let c2 = cluster(2, 0, 300.0);
        let split_plan = equal_plan(&m, vec![0, m.distributable_len()], 2);
        let offload_plan = ExecutionPlan::offload(&m, 0, 2).unwrap();
        let opts = SimOptions {
            num_images: 3,
            start_ms: 0.0,
        };
        let split_r = simulate_ground_truth(&m, &c2, &split_plan, opts);
        let offload_r = simulate_ground_truth(&m, &c2, &offload_plan, opts);
        assert!(
            split_r.ips > offload_r.ips,
            "split {} should beat offload {}",
            split_r.ips,
            offload_r.ips
        );
    }

    #[test]
    fn start_time_shifts_are_harmless_on_constant_links() {
        let m = model();
        let c = cluster(1, 1, 100.0);
        let plan = equal_plan(&m, vec![0, 5], 2);
        let a = simulate_ground_truth(
            &m,
            &c,
            &plan,
            SimOptions {
                num_images: 2,
                start_ms: 0.0,
            },
        );
        let b = simulate_ground_truth(
            &m,
            &c,
            &plan,
            SimOptions {
                num_images: 2,
                start_ms: 120_000.0,
            },
        );
        assert!((a.mean_latency_ms - b.mean_latency_ms).abs() < 1e-6);
    }
}
