//! Clusters: service providers plus the links that connect them.

use cnn_model::{Model, PartPlan};
use device_profile::{ComputeModel, DeviceSpec, GroundTruthModel};
use netsim::{Link, LinkConfig};
use serde::{Deserialize, Serialize};

/// One end of a transfer: the service requester (the phone streaming images)
/// or one of the service providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// The service requester.
    Requester,
    /// Service provider `i`.
    Device(usize),
}

/// A cluster of service providers behind one wireless router.
///
/// Each provider has its own (shaped) WiFi link to the router, matching the
/// paper's testbed where the OpenWrt router caps the bandwidth per device.
/// A transfer between two providers traverses both links; its wire time is
/// bounded by the slower of the two.  Transfers to/from the requester only
/// traverse the provider's link (the requester's own link is not the
/// bottleneck in the paper's setup).
#[derive(Debug, Clone)]
pub struct Cluster {
    devices: Vec<DeviceSpec>,
    links: Vec<Link>,
}

impl Cluster {
    /// Builds a cluster from device specs and one link configuration per
    /// device.
    pub fn new(devices: Vec<DeviceSpec>, link_configs: &[LinkConfig]) -> Self {
        assert_eq!(
            devices.len(),
            link_configs.len(),
            "one link configuration required per device"
        );
        assert!(!devices.is_empty(), "a cluster needs at least one device");
        let links = link_configs.iter().map(LinkConfig::build).collect();
        Self { devices, links }
    }

    /// Builds a cluster where every device shares the same link configuration.
    pub fn uniform(devices: Vec<DeviceSpec>, link: LinkConfig) -> Self {
        let configs = vec![link; devices.len()];
        Self::new(devices, &configs)
    }

    /// The service providers.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Number of service providers.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster is empty (never true for a constructed cluster).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The link of device `i`.
    pub fn link(&self, i: usize) -> &Link {
        &self.links[i]
    }

    /// Replaces the link of device `i` (used by the dynamic-network
    /// experiments to splice in new traces).
    pub fn set_link(&mut self, i: usize, link: Link) {
        self.links[i] = link;
    }

    /// Transfer latency of `bytes` from `from` to `to`, starting at
    /// `at_ms`.  Same-endpoint transfers are free (data already local).
    pub fn transfer_ms(&self, from: Endpoint, to: Endpoint, bytes: f64, at_ms: f64) -> f64 {
        if bytes <= 0.0 || from == to {
            return 0.0;
        }
        match (from, to) {
            (Endpoint::Requester, Endpoint::Device(d))
            | (Endpoint::Device(d), Endpoint::Requester) => {
                self.links[d].transfer_latency_ms(bytes, at_ms)
            }
            (Endpoint::Device(a), Endpoint::Device(b)) => {
                let la = self.links[a].transfer_latency_ms(bytes, at_ms);
                let lb = self.links[b].transfer_latency_ms(bytes, at_ms);
                la.max(lb)
            }
            (Endpoint::Requester, Endpoint::Requester) => 0.0,
        }
    }

    /// The ground-truth compute backend for this cluster.
    pub fn ground_truth_compute(&self) -> GroundTruthCompute {
        GroundTruthCompute {
            models: self.devices.iter().map(DeviceSpec::ground_truth).collect(),
        }
    }

    /// Mean link bandwidth of each device (Mbps), as a monitoring tool would
    /// report it.
    pub fn mean_bandwidths(&self) -> Vec<f64> {
        self.links.iter().map(Link::mean_mbps).collect()
    }
}

/// Per-device computation cost of a split-part.
///
/// The simulator uses the ground truth; the OSDS training environment swaps
/// in profiled predictions by implementing this trait over `Profiler`s.
pub trait PartCompute {
    /// Computing latency (ms) of `part` on device `device`.
    fn part_compute_ms(&self, device: usize, model: &Model, part: &PartPlan) -> f64;

    /// Computing latency (ms) of the model's FC head on device `device`.
    fn head_compute_ms(&self, device: usize, model: &Model) -> f64;
}

/// [`PartCompute`] backed by the devices' ground-truth models.
#[derive(Debug, Clone)]
pub struct GroundTruthCompute {
    models: Vec<GroundTruthModel>,
}

impl GroundTruthCompute {
    /// Builds the backend from explicit ground-truth models.
    pub fn from_models(models: Vec<GroundTruthModel>) -> Self {
        Self { models }
    }
}

impl PartCompute for GroundTruthCompute {
    fn part_compute_ms(&self, device: usize, model: &Model, part: &PartPlan) -> f64 {
        let gt = &self.models[device];
        part.layers
            .iter()
            .map(|lr| gt.layer_latency_ms(&model.layers()[lr.layer], lr.out_count()))
            .sum()
    }

    fn head_compute_ms(&self, device: usize, model: &Model) -> f64 {
        let gt = &self.models[device];
        model
            .head_layers()
            .iter()
            .map(|l| gt.full_layer_latency_ms(l))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::{LayerOp, LayerVolume};
    use device_profile::DeviceType;
    use tensor::Shape;

    fn devices() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::new("xavier-0", DeviceType::Xavier),
            DeviceSpec::new("nano-0", DeviceType::Nano),
        ]
    }

    #[test]
    fn uniform_cluster_builds() {
        let c = Cluster::uniform(devices(), LinkConfig::constant(100.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.mean_bandwidths().len(), 2);
    }

    #[test]
    #[should_panic(expected = "one link configuration required")]
    fn mismatched_links_panic() {
        let _ = Cluster::new(devices(), &[LinkConfig::constant(100.0)]);
    }

    #[test]
    fn same_endpoint_transfer_is_free() {
        let c = Cluster::uniform(devices(), LinkConfig::constant(100.0));
        assert_eq!(
            c.transfer_ms(Endpoint::Device(0), Endpoint::Device(0), 1e6, 0.0),
            0.0
        );
        assert_eq!(
            c.transfer_ms(Endpoint::Requester, Endpoint::Requester, 1e6, 0.0),
            0.0
        );
        assert_eq!(
            c.transfer_ms(Endpoint::Device(0), Endpoint::Device(1), 0.0, 0.0),
            0.0
        );
    }

    #[test]
    fn device_to_device_bounded_by_slower_link() {
        let c = Cluster::new(
            devices(),
            &[LinkConfig::constant(300.0), LinkConfig::constant(50.0)],
        );
        let fast_only = c.transfer_ms(Endpoint::Requester, Endpoint::Device(0), 1e6, 0.0);
        let slow_only = c.transfer_ms(Endpoint::Requester, Endpoint::Device(1), 1e6, 0.0);
        let between = c.transfer_ms(Endpoint::Device(0), Endpoint::Device(1), 1e6, 0.0);
        assert!(slow_only > fast_only);
        assert!((between - slow_only).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_compute_sums_layers() {
        let m = cnn_model::Model::new(
            "t",
            Shape::new(3, 32, 32),
            &[LayerOp::conv(8, 3, 1, 1), LayerOp::pool(2, 2)],
        )
        .unwrap();
        let c = Cluster::uniform(devices(), LinkConfig::constant(100.0));
        let compute = c.ground_truth_compute();
        let v = LayerVolume::new(0, 2);
        let part = PartPlan::plan(&m, v, 0, 16).unwrap();
        let ms = compute.part_compute_ms(0, &m, &part);
        let gt = DeviceType::Xavier.ground_truth();
        let expected: f64 = part
            .layers
            .iter()
            .map(|lr| {
                device_profile::ComputeModel::layer_latency_ms(
                    &gt,
                    &m.layers()[lr.layer],
                    lr.out_count(),
                )
            })
            .sum();
        assert!((ms - expected).abs() < 1e-9);
        // The slower device takes longer for the same part.
        assert!(compute.part_compute_ms(1, &m, &part) > ms);
    }

    #[test]
    fn set_link_swaps_trace() {
        let mut c = Cluster::uniform(devices(), LinkConfig::constant(100.0));
        let before = c.transfer_ms(Endpoint::Requester, Endpoint::Device(0), 1e6, 0.0);
        c.set_link(0, LinkConfig::constant(10.0).build());
        let after = c.transfer_ms(Endpoint::Requester, Endpoint::Device(0), 1e6, 0.0);
        assert!(after > before * 5.0);
    }
}
