//! Latency-profile regressors: the representations DistrEdge accepts for a
//! device's profiling results (§IV: "regression models (e.g., linear
//! regression, piece-wise linear regression, k-nearest-neighbor) or a
//! measured data table").

use crate::profiler::{LayerLatencyTable, ProfileRepr};
use serde::{Deserialize, Serialize};

/// Ordinary least-squares fit `latency ≈ slope · rows + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearRegressor {
    /// Milliseconds per output row.
    pub slope: f64,
    /// Fixed offset in milliseconds.
    pub intercept: f64,
}

impl LinearRegressor {
    /// Fits a line through the measured points.
    pub fn fit(points: &[(usize, f64)]) -> Self {
        let n = points.len() as f64;
        if points.is_empty() {
            return Self {
                slope: 0.0,
                intercept: 0.0,
            };
        }
        if points.len() == 1 {
            let (r, l) = points[0];
            return Self {
                slope: if r > 0 { l / r as f64 } else { 0.0 },
                intercept: 0.0,
            };
        }
        let sx: f64 = points.iter().map(|&(r, _)| r as f64).sum();
        let sy: f64 = points.iter().map(|&(_, l)| l).sum();
        let sxx: f64 = points.iter().map(|&(r, _)| (r as f64) * (r as f64)).sum();
        let sxy: f64 = points.iter().map(|&(r, l)| r as f64 * l).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Self {
                slope: 0.0,
                intercept: sy / n,
            };
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Self { slope, intercept }
    }

    /// Predicted latency for `rows` output rows.
    pub fn predict(&self, rows: usize) -> f64 {
        self.slope * rows as f64 + self.intercept
    }
}

/// Piece-wise linear interpolation over a fixed number of knots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinearRegressor {
    /// Knot points `(rows, latency_ms)`, sorted by rows.
    pub knots: Vec<(usize, f64)>,
}

impl PiecewiseLinearRegressor {
    /// Fits `segments + 1` knots over the measured points by sampling the
    /// table at (approximately) evenly spaced row counts.
    pub fn fit(points: &[(usize, f64)], segments: usize) -> Self {
        if points.is_empty() {
            return Self { knots: Vec::new() };
        }
        let segments = segments.max(1);
        let n = points.len();
        let mut knots = Vec::with_capacity(segments + 1);
        for s in 0..=segments {
            let idx = (s * (n - 1)) / segments;
            let p = points[idx];
            if knots.last() != Some(&p) {
                knots.push(p);
            }
        }
        Self { knots }
    }

    /// Predicted latency for `rows` output rows (linear interpolation,
    /// clamped to the knot range).
    pub fn predict(&self, rows: usize) -> f64 {
        if self.knots.is_empty() {
            return 0.0;
        }
        let r = rows as f64;
        if r <= self.knots[0].0 as f64 {
            return self.knots[0].1;
        }
        if r >= self.knots[self.knots.len() - 1].0 as f64 {
            return self.knots[self.knots.len() - 1].1;
        }
        for w in self.knots.windows(2) {
            let (x0, y0) = (w[0].0 as f64, w[0].1);
            let (x1, y1) = (w[1].0 as f64, w[1].1);
            if r >= x0 && r <= x1 {
                if (x1 - x0).abs() < 1e-12 {
                    return y1;
                }
                return y0 + (y1 - y0) * (r - x0) / (x1 - x0);
            }
        }
        self.knots[self.knots.len() - 1].1
    }
}

/// k-nearest-neighbour averaging over the measured table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnRegressor {
    /// The measured points, sorted by rows.
    pub points: Vec<(usize, f64)>,
    /// Number of neighbours averaged.
    pub k: usize,
}

impl KnnRegressor {
    /// Builds the regressor from measured points.
    pub fn fit(points: &[(usize, f64)], k: usize) -> Self {
        Self {
            points: points.to_vec(),
            k: k.max(1),
        }
    }

    /// Predicted latency: mean of the `k` nearest measured points.
    pub fn predict(&self, rows: usize) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut by_dist: Vec<&(usize, f64)> = self.points.iter().collect();
        by_dist.sort_by_key(|(r, _)| r.abs_diff(rows));
        let k = self.k.min(by_dist.len());
        by_dist[..k].iter().map(|(_, l)| l).sum::<f64>() / k as f64
    }
}

/// A fitted per-layer latency predictor in any of the supported
/// representations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Regressor {
    /// Raw table lookup (nearest measured point).
    Table(LayerLatencyTable),
    /// Linear regression.
    Linear(LinearRegressor),
    /// Piece-wise linear regression.
    Piecewise(PiecewiseLinearRegressor),
    /// k-NN averaging.
    Knn(KnnRegressor),
}

impl Regressor {
    /// Fits the requested representation to a measured table.
    pub fn fit(table: &LayerLatencyTable, repr: ProfileRepr) -> Self {
        match repr {
            ProfileRepr::Table => Regressor::Table(table.clone()),
            ProfileRepr::Linear => Regressor::Linear(LinearRegressor::fit(&table.points)),
            ProfileRepr::PiecewiseLinear { segments } => {
                Regressor::Piecewise(PiecewiseLinearRegressor::fit(&table.points, segments))
            }
            ProfileRepr::Knn { k } => Regressor::Knn(KnnRegressor::fit(&table.points, k)),
        }
    }

    /// Predicted latency for `rows` output rows.
    pub fn predict(&self, rows: usize) -> f64 {
        match self {
            Regressor::Table(t) => t.nearest(rows),
            Regressor::Linear(l) => l.predict(rows),
            Regressor::Piecewise(p) => p.predict(rows),
            Regressor::Knn(k) => k.predict(rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_points() -> Vec<(usize, f64)> {
        (1..=20).map(|r| (r, 2.0 * r as f64 + 1.0)).collect()
    }

    fn curved_points() -> Vec<(usize, f64)> {
        // Convex-ish curve similar to the GPU latency profile.
        (1..=40)
            .map(|r| (r, 5.0 + 0.5 * r as f64 + 20.0 / (r as f64 + 2.0)))
            .collect()
    }

    #[test]
    fn linear_fit_recovers_line() {
        let fit = LinearRegressor::fit(&linear_points());
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 1.0).abs() < 1e-9);
        assert!((fit.predict(10) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert_eq!(LinearRegressor::fit(&[]).predict(5), 0.0);
        let single = LinearRegressor::fit(&[(4, 8.0)]);
        assert!((single.predict(4) - 8.0).abs() < 1e-9);
        // All-same-x points: slope collapses to zero, intercept to the mean.
        let flat = LinearRegressor::fit(&[(3, 1.0), (3, 3.0)]);
        assert!((flat.predict(3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_interpolates_exactly_at_knots() {
        let pts = curved_points();
        let pw = PiecewiseLinearRegressor::fit(&pts, 8);
        for &(r, l) in &pw.knots {
            assert!((pw.predict(r) - l).abs() < 1e-9);
        }
        // Clamped outside the range.
        assert_eq!(pw.predict(0), pw.knots[0].1);
        assert_eq!(pw.predict(1000), pw.knots.last().unwrap().1);
    }

    #[test]
    fn piecewise_more_segments_reduce_error() {
        let pts = curved_points();
        let err = |segments: usize| -> f64 {
            let pw = PiecewiseLinearRegressor::fit(&pts, segments);
            pts.iter().map(|&(r, l)| (pw.predict(r) - l).abs()).sum()
        };
        assert!(err(16) <= err(2));
    }

    #[test]
    fn knn_with_k1_is_nearest() {
        let pts = curved_points();
        let knn = KnnRegressor::fit(&pts, 1);
        assert!((knn.predict(10) - pts[9].1).abs() < 1e-9);
    }

    #[test]
    fn knn_averages_neighbours() {
        let pts = vec![(1, 1.0), (2, 3.0), (10, 100.0)];
        let knn = KnnRegressor::fit(&pts, 2);
        assert!((knn.predict(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn knn_empty_is_zero() {
        let knn = KnnRegressor::fit(&[], 3);
        assert_eq!(knn.predict(7), 0.0);
    }

    #[test]
    fn regressor_enum_dispatch() {
        let table = LayerLatencyTable {
            layer: 0,
            points: linear_points(),
        };
        for repr in [
            ProfileRepr::Table,
            ProfileRepr::Linear,
            ProfileRepr::PiecewiseLinear { segments: 4 },
            ProfileRepr::Knn { k: 2 },
        ] {
            let r = Regressor::fit(&table, repr);
            let pred = r.predict(10);
            assert!((pred - 21.0).abs() < 2.0, "{repr:?} predicted {pred}");
        }
    }
}
