//! Edge-device compute characters for the DistrEdge reproduction.
//!
//! The paper's testbed uses four device types — Raspberry Pi 3, Jetson Nano,
//! Jetson TX2 and Jetson AGX Xavier — whose computing latency as a function
//! of layer configuration is *non-linear* (§III-C challenge 2, Fig. 14).
//! This crate provides:
//!
//! * [`device`] — the device types and their ground-truth compute models,
//!   calibrated so that the ordering `Pi3 ≪ Nano < TX2 < Xavier` and the
//!   non-linear latency-vs-rows shape hold,
//! * [`profiler`] — the offline profiling step DistrEdge's controller runs
//!   (measure each layer's latency against output height at granularity 1,
//!   repeat and average),
//! * [`regress`] — the profile representations §IV allows: a measured data
//!   table, linear regression, piece-wise linear regression and k-NN.
//!
//! The ground-truth models stand in for the physical boards (see
//! `DESIGN.md`); everything downstream — the profiler, the baselines'
//! linear assumptions, OSDS's learned behaviour — only observes them through
//! measurements, exactly as on real hardware.

pub mod device;
pub mod profiler;
pub mod regress;

pub use device::{ComputeModel, DeviceSpec, DeviceType, GroundTruthModel};
pub use profiler::{LayerLatencyTable, ProfileRepr, Profiler, ProfilingOptions};
pub use regress::{KnnRegressor, LinearRegressor, PiecewiseLinearRegressor, Regressor};
