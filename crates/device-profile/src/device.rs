//! Device types and their ground-truth (non-linear) compute models.

use cnn_model::Layer;
use serde::{Deserialize, Serialize};

/// The four device types of the paper's testbed (§V-A, Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceType {
    /// Raspberry Pi 3 (CPU only; far slower than the Jetson boards).
    Pi3,
    /// NVIDIA Jetson Nano.
    Nano,
    /// NVIDIA Jetson TX2.
    Tx2,
    /// NVIDIA Jetson AGX Xavier.
    Xavier,
}

impl DeviceType {
    /// All device types, slowest to fastest.
    pub const ALL: [DeviceType; 4] = [
        DeviceType::Pi3,
        DeviceType::Nano,
        DeviceType::Tx2,
        DeviceType::Xavier,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceType::Pi3 => "Pi3",
            DeviceType::Nano => "Nano",
            DeviceType::Tx2 => "TX2",
            DeviceType::Xavier => "Xavier",
        }
    }

    /// The calibrated ground-truth compute model for this device type.
    ///
    /// The absolute constants are not the paper's (which come from TensorRT
    /// on physical boards); they are chosen so that (a) the relative
    /// ordering `Pi3 ≪ Nano < TX2 < Xavier` matches the published Jetson
    /// benchmarks the paper cites, and (b) the latency-vs-rows curve of the
    /// GPU devices is non-linear in the way Fig. 14 shows (a fixed
    /// per-kernel launch overhead, a row-granularity staircase from wave
    /// quantisation, and poor utilisation at small workloads).
    pub fn ground_truth(&self) -> GroundTruthModel {
        match self {
            DeviceType::Pi3 => GroundTruthModel {
                device: *self,
                peak_gflops: 8.0,
                launch_overhead_ms: 0.30,
                row_granularity: 1,
                half_saturation_ops: 0.0,
                utilisation_exponent: 1.0,
            },
            DeviceType::Nano => GroundTruthModel {
                device: *self,
                peak_gflops: 180.0,
                launch_overhead_ms: 0.25,
                row_granularity: 8,
                half_saturation_ops: 2.0e7,
                utilisation_exponent: 0.65,
            },
            DeviceType::Tx2 => GroundTruthModel {
                device: *self,
                peak_gflops: 420.0,
                launch_overhead_ms: 0.22,
                row_granularity: 8,
                half_saturation_ops: 4.0e7,
                utilisation_exponent: 0.65,
            },
            DeviceType::Xavier => GroundTruthModel {
                device: *self,
                peak_gflops: 1400.0,
                launch_overhead_ms: 0.18,
                row_granularity: 16,
                half_saturation_ops: 1.2e8,
                utilisation_exponent: 0.65,
            },
        }
    }
}

/// A concrete service provider: a named device of a given type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable identifier (e.g. `"xavier-0"`).
    pub name: String,
    /// The device type.
    pub device_type: DeviceType,
}

impl DeviceSpec {
    /// Creates a device spec.
    pub fn new(name: impl Into<String>, device_type: DeviceType) -> Self {
        Self {
            name: name.into(),
            device_type,
        }
    }

    /// The ground-truth compute model of this device.
    pub fn ground_truth(&self) -> GroundTruthModel {
        self.device_type.ground_truth()
    }
}

/// Anything that can predict the computing latency of a layer's row band on
/// a device: the ground truth, a measured table, or a fitted regressor.
pub trait ComputeModel {
    /// Latency in milliseconds of producing `out_rows` output rows of
    /// `layer` on this device.  Zero rows cost zero (the device is skipped).
    fn layer_latency_ms(&self, layer: &Layer, out_rows: usize) -> f64;

    /// Latency of the full layer.
    fn full_layer_latency_ms(&self, layer: &Layer) -> f64 {
        self.layer_latency_ms(layer, layer.output.h)
    }
}

/// The ground-truth non-linear compute model standing in for a physical
/// board.
///
/// For a band of `r` output rows of a layer with per-row work `w` ops:
///
/// ```text
/// rows_eff = ceil(r / granularity) * granularity          (wave quantisation)
/// work     = w * rows_eff
/// util     = work^β / (work^β + half_sat^β)               (occupancy ramp)
/// latency  = launch_overhead + work / (peak * util)
/// ```
///
/// With `half_sat = 0` and `granularity = 1` (the Pi 3) this degenerates to
/// the linear model the baseline methods assume; the GPU devices are
/// distinctly non-linear at small row counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthModel {
    /// Which device type this models.
    pub device: DeviceType,
    /// Peak sustained throughput in GFLOP/s for convolution workloads.
    pub peak_gflops: f64,
    /// Fixed per-layer kernel launch / scheduling overhead in ms.
    pub launch_overhead_ms: f64,
    /// Output rows are processed in multiples of this granularity.
    pub row_granularity: usize,
    /// Work level (in ops) at which utilisation reaches one half.
    pub half_saturation_ops: f64,
    /// Exponent of the utilisation ramp (lower = more non-linear).
    pub utilisation_exponent: f64,
}

impl GroundTruthModel {
    /// Effective utilisation in `(0, 1]` for a given amount of work.
    pub fn utilisation(&self, work_ops: f64) -> f64 {
        if self.half_saturation_ops <= 0.0 {
            return 1.0;
        }
        let beta = self.utilisation_exponent;
        let w = work_ops.max(1.0).powf(beta);
        let h = self.half_saturation_ops.powf(beta);
        (w / (w + h)).clamp(1e-6, 1.0)
    }
}

impl ComputeModel for GroundTruthModel {
    fn layer_latency_ms(&self, layer: &Layer, out_rows: usize) -> f64 {
        if out_rows == 0 {
            return 0.0;
        }
        let g = self.row_granularity.max(1);
        let rows_eff = out_rows.div_ceil(g) * g;
        let rows_eff = rows_eff.min(layer.output.h.max(out_rows));
        let work = layer
            .ops_for_rows(rows_eff)
            .max(layer.ops_for_rows(out_rows));
        let util = self.utilisation(work);
        self.launch_overhead_ms + work / (self.peak_gflops * 1e9 * util) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::{LayerOp, Model};
    use tensor::Shape;

    fn conv_layer() -> Layer {
        let m = Model::new(
            "t",
            Shape::new(64, 112, 112),
            &[LayerOp::conv(128, 3, 1, 1)],
        )
        .unwrap();
        m.layers()[0]
    }

    #[test]
    fn device_ordering_is_monotone() {
        let layer = conv_layer();
        let lat: Vec<f64> = DeviceType::ALL
            .iter()
            .map(|d| d.ground_truth().full_layer_latency_ms(&layer))
            .collect();
        // Pi3 slowest, Xavier fastest.
        assert!(
            lat[0] > lat[1] && lat[1] > lat[2] && lat[2] > lat[3],
            "latencies {lat:?}"
        );
        // Pi3 is more than an order of magnitude slower than Nano.
        assert!(lat[0] > 10.0 * lat[1]);
    }

    #[test]
    fn zero_rows_cost_nothing() {
        let layer = conv_layer();
        for d in DeviceType::ALL {
            assert_eq!(d.ground_truth().layer_latency_ms(&layer, 0), 0.0);
        }
    }

    #[test]
    fn latency_is_monotone_in_rows() {
        let layer = conv_layer();
        let gt = DeviceType::Xavier.ground_truth();
        let mut prev = 0.0;
        for rows in 1..=layer.output.h {
            let l = gt.layer_latency_ms(&layer, rows);
            assert!(l >= prev - 1e-12, "latency must not decrease with rows");
            prev = l;
        }
    }

    #[test]
    fn gpu_devices_are_nonlinear() {
        // Halving the rows must NOT halve the latency on a GPU device: the
        // launch overhead and poor small-batch utilisation keep the small
        // band disproportionately expensive.
        let layer = conv_layer();
        let gt = DeviceType::Nano.ground_truth();
        let full = gt.layer_latency_ms(&layer, layer.output.h);
        let half = gt.layer_latency_ms(&layer, layer.output.h / 2);
        let quarter = gt.layer_latency_ms(&layer, layer.output.h / 4);
        assert!(half > full * 0.5, "half-rows latency {half} vs full {full}");
        assert!(quarter > full * 0.25);
    }

    #[test]
    fn pi3_is_close_to_linear() {
        let layer = conv_layer();
        let gt = DeviceType::Pi3.ground_truth();
        let full = gt.layer_latency_ms(&layer, layer.output.h);
        let half = gt.layer_latency_ms(&layer, layer.output.h / 2);
        // Within 5% of exactly half once the (small) overhead is discounted.
        let lin = (full - gt.launch_overhead_ms) / 2.0 + gt.launch_overhead_ms;
        assert!((half - lin).abs() / lin < 0.05);
    }

    #[test]
    fn staircase_granularity_visible() {
        let layer = conv_layer();
        let gt = DeviceType::Xavier.ground_truth();
        // Within one granule the latency is flat.
        let a = gt.layer_latency_ms(&layer, 1);
        let b = gt.layer_latency_ms(&layer, gt.row_granularity);
        assert!((a - b).abs() < 1e-9);
        // Crossing a granule boundary jumps.
        let c = gt.layer_latency_ms(&layer, gt.row_granularity + 1);
        assert!(c > b);
    }

    #[test]
    fn utilisation_bounds() {
        let gt = DeviceType::Nano.ground_truth();
        assert!(gt.utilisation(1.0) > 0.0);
        assert!(gt.utilisation(1e15) <= 1.0);
        assert!(gt.utilisation(1e4) < gt.utilisation(1e9));
        let pi = DeviceType::Pi3.ground_truth();
        assert_eq!(pi.utilisation(123.0), 1.0);
    }

    #[test]
    fn vgg16_whole_model_latency_plausible() {
        // Whole-model single-device latency should give IPS figures in the
        // same ballpark as the paper's offload baseline (tens of ms on
        // Xavier, hundreds on Nano, seconds on Pi3).
        let m = cnn_model::zoo::vgg16();
        let total = |d: DeviceType| -> f64 {
            m.layers()
                .iter()
                .map(|l| d.ground_truth().full_layer_latency_ms(l))
                .sum()
        };
        let xavier = total(DeviceType::Xavier);
        let nano = total(DeviceType::Nano);
        let pi3 = total(DeviceType::Pi3);
        assert!(xavier > 15.0 && xavier < 80.0, "xavier = {xavier}");
        assert!(nano > 120.0 && nano < 500.0, "nano = {nano}");
        assert!(pi3 > 2_000.0, "pi3 = {pi3}");
    }

    #[test]
    fn device_spec_names() {
        let d = DeviceSpec::new("xavier-0", DeviceType::Xavier);
        assert_eq!(d.name, "xavier-0");
        assert_eq!(d.ground_truth().device, DeviceType::Xavier);
        assert_eq!(DeviceType::Xavier.name(), "Xavier");
    }
}
