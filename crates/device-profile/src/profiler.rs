//! The offline profiling step DistrEdge's controller performs (§V-A).
//!
//! For every layer of the model and every device type, the profiler measures
//! the computing latency against the number of output rows (granularity 1 in
//! the paper), repeating each measurement and averaging.  On the physical
//! testbed the measurement is a TensorRT Profiler run; here it queries the
//! ground-truth device model, optionally with multiplicative measurement
//! noise, which reproduces the same pipeline: everything downstream sees
//! *profiled* numbers, never the ground truth itself.

use crate::device::{ComputeModel, GroundTruthModel};
use crate::regress::Regressor;
use cnn_model::{Layer, Model};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How profiled measurements are turned into a latency predictor — the three
/// representations §IV explicitly allows plus the raw table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileRepr {
    /// Use the measured table directly (nearest measured point).
    Table,
    /// Ordinary least-squares linear regression per layer.
    Linear,
    /// Piece-wise linear regression with a fixed number of segments.
    PiecewiseLinear {
        /// Number of segments.
        segments: usize,
    },
    /// k-nearest-neighbour averaging.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
}

/// Options controlling a profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingOptions {
    /// Measure every `step`-th row count (1 = the paper's granularity).
    pub row_step: usize,
    /// Number of repetitions averaged per measurement point (paper: 100).
    pub repetitions: usize,
    /// Multiplicative measurement noise (standard deviation, e.g. 0.02).
    pub noise_std: f64,
    /// RNG seed for the measurement noise.
    pub seed: u64,
}

impl Default for ProfilingOptions {
    fn default() -> Self {
        Self {
            row_step: 1,
            repetitions: 5,
            noise_std: 0.02,
            seed: 7,
        }
    }
}

/// The measured latency table of one layer on one device: latency (ms)
/// against output row count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerLatencyTable {
    /// Model-wide layer index.
    pub layer: usize,
    /// Measured `(rows, latency_ms)` points, sorted by rows.
    pub points: Vec<(usize, f64)>,
}

impl LayerLatencyTable {
    /// Latency at the nearest measured row count.
    pub fn nearest(&self, rows: usize) -> f64 {
        if rows == 0 || self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .min_by_key(|(r, _)| r.abs_diff(rows))
            .map(|&(_, l)| l)
            .unwrap_or(0.0)
    }

    /// Largest measured row count.
    pub fn max_rows(&self) -> usize {
        self.points.last().map(|&(r, _)| r).unwrap_or(0)
    }
}

/// A profiled device: per-layer latency predictors built from measurements.
#[derive(Debug, Clone)]
pub struct Profiler {
    /// Raw measured tables, one per model layer.
    pub tables: Vec<LayerLatencyTable>,
    repr: ProfileRepr,
    regressors: Vec<Regressor>,
}

impl Profiler {
    /// Profiles `device` over every layer of `model`.
    pub fn profile(
        model: &Model,
        device: &GroundTruthModel,
        options: ProfilingOptions,
        repr: ProfileRepr,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut tables = Vec::with_capacity(model.len());
        for layer in model.layers() {
            let h = layer.output.h.max(1);
            let step = options.row_step.max(1);
            let mut points = Vec::new();
            let mut rows = 1usize;
            loop {
                let mut acc = 0.0;
                for _ in 0..options.repetitions.max(1) {
                    let noise = if options.noise_std > 0.0 {
                        1.0 + rng.gen_range(-1.0..1.0) * options.noise_std
                    } else {
                        1.0
                    };
                    acc += device.layer_latency_ms(layer, rows) * noise;
                }
                points.push((rows, acc / options.repetitions.max(1) as f64));
                if rows >= h {
                    break;
                }
                rows = (rows + step).min(h);
            }
            tables.push(LayerLatencyTable {
                layer: layer.index,
                points,
            });
        }
        let regressors = tables.iter().map(|t| Regressor::fit(t, repr)).collect();
        Self {
            tables,
            repr,
            regressors,
        }
    }

    /// The representation this profiler predicts with.
    pub fn repr(&self) -> ProfileRepr {
        self.repr
    }

    /// Re-fits the profiler with a different representation, reusing the
    /// measured tables (no new measurements).
    pub fn with_repr(&self, repr: ProfileRepr) -> Self {
        let regressors = self
            .tables
            .iter()
            .map(|t| Regressor::fit(t, repr))
            .collect();
        Self {
            tables: self.tables.clone(),
            repr,
            regressors,
        }
    }

    /// Predicted latency of `rows` output rows of layer `layer_index`.
    pub fn predict(&self, layer_index: usize, rows: usize) -> f64 {
        if rows == 0 {
            return 0.0;
        }
        match self.regressors.get(layer_index) {
            Some(r) => r.predict(rows).max(0.0),
            None => 0.0,
        }
    }

    /// A per-layer "computing capability" figure: full-layer work divided by
    /// profiled full-layer latency.  This is exactly the linear summary the
    /// baseline methods (CoEdge, MoDNN, MeDNN, AOFL) reduce a device to.
    pub fn linear_capability(&self, model: &Model) -> f64 {
        let mut ops = 0.0;
        let mut lat = 0.0;
        for (layer, table) in model.layers().iter().zip(&self.tables) {
            if !layer.is_splittable() {
                continue;
            }
            ops += layer.ops();
            lat += table.nearest(layer.output.h);
        }
        if lat <= 0.0 {
            0.0
        } else {
            ops / lat
        }
    }
}

impl ComputeModel for Profiler {
    fn layer_latency_ms(&self, layer: &Layer, out_rows: usize) -> f64 {
        self.predict(layer.index, out_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceType;
    use cnn_model::{LayerOp, Model};
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "prof-test",
            Shape::new(3, 64, 64),
            &[
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(32, 3, 1, 1),
            ],
        )
        .unwrap()
    }

    fn noiseless() -> ProfilingOptions {
        ProfilingOptions {
            row_step: 1,
            repetitions: 1,
            noise_std: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn table_covers_all_rows() {
        let m = model();
        let gt = DeviceType::Nano.ground_truth();
        let p = Profiler::profile(&m, &gt, noiseless(), ProfileRepr::Table);
        assert_eq!(p.tables.len(), 3);
        assert_eq!(p.tables[0].max_rows(), 64);
        assert_eq!(p.tables[1].max_rows(), 32);
        assert_eq!(p.tables[0].points.len(), 64);
    }

    #[test]
    fn table_repr_reproduces_ground_truth_exactly() {
        let m = model();
        let gt = DeviceType::Tx2.ground_truth();
        let p = Profiler::profile(&m, &gt, noiseless(), ProfileRepr::Table);
        for layer in m.layers() {
            for rows in [1usize, 7, 20, layer.output.h] {
                let truth = gt.layer_latency_ms(layer, rows);
                let pred = p.layer_latency_ms(layer, rows);
                assert!(
                    (truth - pred).abs() < 1e-9,
                    "rows {rows}: {pred} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn zero_rows_predicts_zero() {
        let m = model();
        let gt = DeviceType::Nano.ground_truth();
        let p = Profiler::profile(&m, &gt, noiseless(), ProfileRepr::Linear);
        assert_eq!(p.predict(0, 0), 0.0);
    }

    #[test]
    fn proportional_capability_underestimates_small_bands_on_gpu() {
        // The baselines reduce a device to a single "capability" value and
        // assume latency scales proportionally with the split size.  On a
        // GPU device with launch overhead and poor small-batch utilisation,
        // that proportional model badly under-predicts the cost of a tiny
        // band — the modelling error the paper blames for the baselines'
        // computing-latency imbalance (§V-G, Fig. 14/15).
        let m = model();
        let gt = DeviceType::Nano.ground_truth();
        let layer = &m.layers()[0];
        let truth = gt.layer_latency_ms(layer, 2);
        let proportional = gt.layer_latency_ms(layer, layer.output.h) * 2.0 / layer.output.h as f64;
        assert!(
            proportional < truth * 0.5,
            "proportional {proportional} should badly undershoot truth {truth}"
        );
    }

    #[test]
    fn piecewise_beats_linear_on_nonlinear_curve() {
        let m = model();
        let gt = DeviceType::Xavier.ground_truth();
        let table = Profiler::profile(&m, &gt, noiseless(), ProfileRepr::Table);
        let lin = table.with_repr(ProfileRepr::Linear);
        let pw = table.with_repr(ProfileRepr::PiecewiseLinear { segments: 8 });
        let layer = &m.layers()[0];
        let err = |p: &Profiler| -> f64 {
            (1..=layer.output.h)
                .map(|r| (p.layer_latency_ms(layer, r) - gt.layer_latency_ms(layer, r)).abs())
                .sum()
        };
        assert!(err(&pw) <= err(&lin));
    }

    #[test]
    fn knn_is_close_to_table() {
        let m = model();
        let gt = DeviceType::Nano.ground_truth();
        let p = Profiler::profile(&m, &gt, noiseless(), ProfileRepr::Knn { k: 3 });
        let layer = &m.layers()[0];
        let truth = gt.layer_latency_ms(layer, 30);
        let pred = p.layer_latency_ms(layer, 30);
        assert!((truth - pred).abs() / truth < 0.1);
    }

    #[test]
    fn capability_ordering_matches_device_ordering() {
        let m = model();
        let caps: Vec<f64> = DeviceType::ALL
            .iter()
            .map(|d| {
                Profiler::profile(&m, &d.ground_truth(), noiseless(), ProfileRepr::Table)
                    .linear_capability(&m)
            })
            .collect();
        assert!(
            caps[0] < caps[1] && caps[1] < caps[2] && caps[2] < caps[3],
            "{caps:?}"
        );
    }

    #[test]
    fn noise_is_reproducible() {
        let m = model();
        let gt = DeviceType::Nano.ground_truth();
        let opts = ProfilingOptions {
            noise_std: 0.05,
            ..ProfilingOptions::default()
        };
        let a = Profiler::profile(&m, &gt, opts, ProfileRepr::Table);
        let b = Profiler::profile(&m, &gt, opts, ProfileRepr::Table);
        assert_eq!(a.tables[0].points, b.tables[0].points);
    }

    #[test]
    fn coarse_row_step_shrinks_table() {
        let m = model();
        let gt = DeviceType::Nano.ground_truth();
        let opts = ProfilingOptions {
            row_step: 8,
            repetitions: 1,
            noise_std: 0.0,
            seed: 1,
        };
        let p = Profiler::profile(&m, &gt, opts, ProfileRepr::Table);
        assert!(p.tables[0].points.len() <= 10);
        // The last point still covers the full height.
        assert_eq!(p.tables[0].max_rows(), 64);
    }
}
