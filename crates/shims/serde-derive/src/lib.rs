//! Offline shim for `serde_derive`.
//!
//! The build environment has no registry access, so this crate re-implements
//! the two derive macros the workspace uses, without `syn`/`quote`: the type
//! definition is token-scanned directly.  `#[derive(Serialize)]` emits a real
//! `serde::Serialize::to_value` implementation (externally-tagged enums, like
//! real serde's default); `#[derive(Deserialize)]` emits the mirror-image
//! `serde::Deserialize::from_value`, so derived types round-trip through the
//! `serde_json` shim's `to_string` / `from_str` pair.
//!
//! Supported shapes — everything the workspace derives on: non-generic
//! structs (named, tuple, unit) and non-generic enums whose variants are
//! unit, tuple or struct-like.  `#[serde(...)]` helper attributes are
//! accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum TypeDef {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: variants as (name, fields) where fields mirrors the struct forms.
    Enum(Vec<(String, VariantFields)>),
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Counts top-level comma-separated items in a token slice, tracking angle
/// bracket depth so commas inside `Vec<(A, B)>`-style types do not split.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_token_in_item = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    items += 1;
                    saw_token_in_item = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_in_item = true;
    }
    if !saw_token_in_item {
        // Trailing comma: the last "item" is empty.
        items -= 1;
    }
    items
}

/// Parses named fields out of a brace group body.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect ':', then skip the type until a top-level comma.
        let mut depth = 0i32;
        let mut done = false;
        while i < tokens.len() && !done {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => done = true,
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(tokens: &[TokenTree]) -> Vec<(String, VariantFields)> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantFields::Tuple(count_top_level_items(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantFields::Named(parse_named_fields(&body))
            }
            _ => VariantFields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Parses a derive input into (type name, definition).
fn parse(input: TokenStream) -> (String, TypeDef) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    // Generic parameters are not supported (nothing in the workspace derives
    // on a generic type); fail loudly rather than emit a broken impl.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let def = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                TypeDef::Struct(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                TypeDef::TupleStruct(count_top_level_items(&body))
            }
            _ => TypeDef::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                TypeDef::Enum(parse_enum_variants(&body))
            }
            other => panic!("serde shim derive: malformed enum body {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    (name, def)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, def) = parse(input);
    let body = match def {
        TypeDef::Struct(fields) => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::json::Value::Object(obj)"
            )
        }
        TypeDef::TupleStruct(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
        }
        TypeDef::UnitStruct => "::serde::json::Value::Null".to_string(),
        TypeDef::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::json::Value::String(\"{v}\".to_string()),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::json::Value::Object(vec![(\"{v}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantFields::Named(fs) => {
                        let binds = fs.join(", ");
                        let pushes: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::json::Value::Object(vec![(\"{v}\".to_string(), ::serde::json::Value::Object(vec![{}]))]),\n",
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated impl must parse")
}

/// Generates the code reconstructing one named-field set from `entries`
/// (missing keys read as `Null`, which is how `Option` fields default).
fn named_field_inits(type_name: &str, fields: &[String], path: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                 {path}.iter().find(|(k, _)| k.as_str() == \"{f}\").map(|(_, fv)| fv)\
                 .unwrap_or(&::serde::json::Value::Null))\
                 .map_err(|e| e.under(\"{type_name}.{f}\"))?,\n"
            )
        })
        .collect()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, def) = parse(input);
    let body = match def {
        TypeDef::Struct(fields) => {
            let inits = named_field_inits(&name, &fields, "entries");
            format!(
                "let entries = match v {{\n\
                 ::serde::json::Value::Object(entries) => entries,\n\
                 other => return ::std::result::Result::Err(::serde::DeError(\
                 format!(\"expected object for `{name}`, found {{other:?}}\"))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        TypeDef::TupleStruct(n) => {
            let items: Vec<String> = (0..n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&items[{i}])\
                         .map_err(|e| e.under(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "let items = match v {{\n\
                 ::serde::json::Value::Array(items) if items.len() == {n} => items,\n\
                 other => return ::std::result::Result::Err(::serde::DeError(\
                 format!(\"expected {n}-array for `{name}`, found {{other:?}}\"))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        TypeDef::UnitStruct => {
            format!("let _ = v;\n::std::result::Result::Ok({name})")
        }
        TypeDef::Enum(variants) => {
            // Externally tagged, mirroring the Serialize derive: unit
            // variants are bare strings, the rest are one-entry objects.
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in &variants {
                match fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(inner)\
                                 .map_err(|e| e.under(\"{name}::{v}\"))?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(&items[{i}])\
                                         .map_err(|e| e.under(\"{name}::{v}.{i}\"))?"
                                    )
                                })
                                .collect();
                            format!(
                                "match inner {{\n\
                                 ::serde::json::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{v}({})),\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                 format!(\"expected {n}-array for `{name}::{v}`, found {{other:?}}\"))),\n\
                                 }}",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{v}\" => {{ {build} }},\n"));
                    }
                    VariantFields::Named(fs) => {
                        let inits = named_field_inits(&format!("{name}::{v}"), fs, "fields");
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => match inner {{\n\
                             ::serde::json::Value::Object(fields) => \
                             ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                             format!(\"expected field object for `{name}::{v}`, found {{other:?}}\"))),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::json::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown unit variant `{{other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::json::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"expected variant of `{name}`, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(v: &::serde::json::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated impl must parse")
}
