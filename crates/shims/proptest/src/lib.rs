//! Offline shim for `proptest`.
//!
//! Implements the slice of proptest the workspace's property tests use: the
//! `proptest!` macro, range / tuple / `any` / `collection::vec` strategies,
//! and `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.  Cases are
//! generated from a deterministic per-test seed (derived from the test
//! name), so failures are reproducible; there is no shrinking — a failing
//! case panics with the assertion message directly.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds the deterministic generator for a named test (FNV-1a over the name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng { state: h }
}

/// Why a test case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case, try another.
    Reject,
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

/// Run configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        })*
    };
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a full-range default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Accepted length arguments for [`vec`]: an exact length or a range.
    pub trait IntoLenRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl IntoLenRange for Range<i32> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(
                0 <= self.start && self.start < self.end,
                "bad vec length range"
            );
            self.start as usize + (rng.next_u64() as usize) % ((self.end - self.start) as usize)
        }
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! Drop-in for `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("{} ({}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test macro: declares `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest shim: too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(any::<bool>(), 2..5),
            exact in crate::collection::vec(0usize..10, 4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
