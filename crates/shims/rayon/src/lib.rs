//! Offline shim for `rayon`.
//!
//! The workspace parallelises two shapes — `(0..n).into_par_iter().map(f)
//! .collect()` (index-parallel tasks) and `slice.par_chunks_mut(len)
//! .enumerate().for_each(f)` (disjoint in-place writes into one pre-sized
//! buffer) — so the shim implements exactly those, with real
//! `std::thread::scope` parallelism, chunked over the available cores,
//! preserving output order.

use std::ops::Range;

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Starts a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range, ready to collect.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map across threads and collects results in index order.
    pub fn collect<C, T>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromIterator<T>,
    {
        parallel_map_range(self.range, &self.f)
            .into_iter()
            .collect()
    }
}

fn parallel_map_range<T, F>(range: Range<usize>, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = range.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return range.map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let start = range.start;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = start + w * chunk;
            let hi = (lo + chunk).min(range.end);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            chunks.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Parallel mutation of non-overlapping slice chunks (the
/// `slice.par_chunks_mut(n)` entry point of real rayon).
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of at most `chunk_size` elements, to be
    /// processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Runs `f` over every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        parallel_chunks(self.slice, self.chunk_size, &|_, chunk| f(chunk));
    }
}

/// An enumerated parallel chunk iterator.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Runs `f` over every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        parallel_chunks(self.inner.slice, self.inner.chunk_size, &|i, chunk| {
            f((i, chunk))
        });
    }
}

fn parallel_chunks<T, F>(slice: &mut [T], chunk_size: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = slice.len().div_ceil(chunk_size);
    if n == 0 {
        return;
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        for (i, chunk) in slice.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Hand each worker a contiguous run of chunks; the splits are disjoint
    // sub-slices, so no synchronisation is needed beyond the scope join.
    let per_worker = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = slice;
        let mut first_chunk = 0usize;
        while !rest.is_empty() {
            let take = (per_worker * chunk_size).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = first_chunk;
            first_chunk += head.len().div_ceil(chunk_size);
            scope.spawn(move || {
                for (i, chunk) in head.chunks_mut(chunk_size).enumerate() {
                    f(base + i, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn single_element() {
        let v: Vec<String> = (3..4).into_par_iter().map(|i| format!("{i}")).collect();
        assert_eq!(v, vec!["3".to_string()]);
    }

    #[test]
    fn par_chunks_mut_enumerated_writes() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = i * 10 + j;
            }
        });
        let expected: Vec<usize> = (0..103).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn par_chunks_mut_plain_for_each() {
        let mut data = [1i32; 37];
        data.par_chunks_mut(5).for_each(|chunk| {
            for v in chunk {
                *v *= 2;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn par_chunks_mut_empty_slice() {
        let mut data: Vec<u8> = Vec::new();
        data.par_chunks_mut(4).enumerate().for_each(|(_, _)| {
            panic!("no chunks expected");
        });
    }
}
