//! Offline shim for `rayon`.
//!
//! The workspace only parallelises `(0..n).into_par_iter().map(f).collect()`
//! (one conv output-channel plane per task), so the shim implements exactly
//! that shape — with real `std::thread::scope` parallelism, chunked over the
//! available cores, preserving output order.

use std::ops::Range;

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;

    /// Starts a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// A mapped parallel range, ready to collect.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs the map across threads and collects results in index order.
    pub fn collect<C, T>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromIterator<T>,
    {
        parallel_map_range(self.range, &self.f)
            .into_iter()
            .collect()
    }
}

fn parallel_map_range<T, F>(range: Range<usize>, f: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = range.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return range.map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let start = range.start;
    let mut chunks: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = start + w * chunk;
            let hi = (lo + chunk).min(range.end);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            chunks.push(h.join().expect("rayon shim worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn single_element() {
        let v: Vec<String> = (3..4).into_par_iter().map(|i| format!("{i}")).collect();
        assert_eq!(v, vec!["3".to_string()]);
    }
}
