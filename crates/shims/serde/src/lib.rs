//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde the workspace actually uses: `#[derive(Serialize)]`
//! producing a JSON value tree ([`json::Value`]), a marker `Deserialize`
//! trait so the derives compile, and enough `Serialize` impls for the field
//! types that appear in the workspace's derived structs.

// Lets the derive-generated `::serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

pub mod json {
    //! A minimal JSON value tree plus renderer (consumed by the `serde_json`
    //! shim's `to_string`).

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Renders the value as compact JSON.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out);
            out
        }

        fn render_into(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Number(n) => {
                    if n.is_finite() {
                        if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                            out.push_str(&format!("{}", *n as i64));
                        } else {
                            out.push_str(&format!("{n}"));
                        }
                    } else {
                        // JSON has no NaN/Infinity; serde_json emits null.
                        out.push_str("null");
                    }
                }
                Value::String(s) => escape_into(s, out),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.render_into(out);
                    }
                    out.push(']');
                }
                Value::Object(entries) => {
                    out.push('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        escape_into(k, out);
                        out.push(':');
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Serialization into a [`json::Value`] tree.
///
/// Real serde serializes through a visitor; the workspace only ever converts
/// values to JSON text, so the shim collapses the pipeline into one method.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> json::Value;
}

/// Marker trait so `#[derive(Deserialize)]` compiles.  Nothing in the
/// workspace deserializes, so there is no method to implement.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Number(*self as f64)
            }
        })*
    };
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[derive(Serialize)]
    struct Named {
        a: usize,
        b: Vec<(usize, usize)>,
        c: Option<String>,
    }

    #[derive(Serialize)]
    enum Mixed {
        Unit,
        One(usize),
        Pair { x: f64, y: f64 },
    }

    #[test]
    fn derived_struct_serializes_to_object() {
        let v = Named {
            a: 3,
            b: vec![(1, 2)],
            c: None,
        }
        .to_value();
        assert_eq!(v.render(), "{\"a\":3,\"b\":[[1,2]],\"c\":null}");
    }

    #[test]
    fn derived_enum_is_externally_tagged() {
        assert_eq!(Mixed::Unit.to_value().render(), "\"Unit\"");
        assert_eq!(Mixed::One(7).to_value().render(), "{\"One\":7}");
        assert_eq!(
            Mixed::Pair { x: 1.5, y: -2.0 }.to_value().render(),
            "{\"Pair\":{\"x\":1.5,\"y\":-2}}"
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Value::String("a\"b\\c\n".to_string()).render(),
            "\"a\\\"b\\\\c\\n\""
        );
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Value::Number(f64::NAN).render(), "null");
        assert_eq!(Value::Number(f64::INFINITY).render(), "null");
    }
}
