//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde the workspace actually uses: `#[derive(Serialize)]`
//! producing a JSON value tree ([`json::Value`]), `#[derive(Deserialize)]`
//! reconstructing a value from that tree ([`Deserialize::from_value`], fed
//! by the `serde_json` shim's parser), and enough impls of both traits for
//! the field types that appear in the workspace's derived structs.

// Lets the derive-generated `::serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

pub mod json {
    //! A minimal JSON value tree plus renderer (consumed by the `serde_json`
    //! shim's `to_string`).

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Renders the value as compact JSON.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out);
            out
        }

        fn render_into(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Number(n) => {
                    if n.is_finite() {
                        if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                            out.push_str(&format!("{}", *n as i64));
                        } else {
                            out.push_str(&format!("{n}"));
                        }
                    } else {
                        // JSON has no NaN/Infinity; serde_json emits null.
                        out.push_str("null");
                    }
                }
                Value::String(s) => escape_into(s, out),
                Value::Array(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.render_into(out);
                    }
                    out.push(']');
                }
                Value::Object(entries) => {
                    out.push('{');
                    for (i, (k, v)) in entries.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        escape_into(k, out);
                        out.push(':');
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Serialization into a [`json::Value`] tree.
///
/// Real serde serializes through a visitor; the workspace only ever converts
/// values to JSON text, so the shim collapses the pipeline into one method.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> json::Value;
}

/// Error of [`Deserialize::from_value`]: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// A fresh error with `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Wraps the error with the field / variant it occurred under.
    pub fn under(self, context: &str) -> Self {
        DeError(format!("{context}: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Deserialization from a [`json::Value`] tree.
///
/// Real serde deserializes through a visitor; the workspace only ever
/// reconstructs values from parsed JSON, so the shim collapses the pipeline
/// into one method (the mirror image of [`Serialize::to_value`]).
pub trait Deserialize<'de>: Sized {
    /// Reconstructs the value from a JSON value tree.
    fn from_value(v: &json::Value) -> Result<Self, DeError>;
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &json::Value) -> Result<Self, DeError> {
                match v {
                    // Reject fractional and out-of-range values instead of
                    // silently truncating / saturating like a bare cast.
                    json::Value::Number(n)
                        if n.fract() == 0.0
                            && *n >= <$t>::MIN as f64
                            && *n <= <$t>::MAX as f64 =>
                    {
                        Ok(*n as $t)
                    }
                    other => Err(DeError(format!(
                        "expected {} integer, found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        })*
    };
}

macro_rules! impl_deserialize_float {
    ($($t:ty),*) => {
        $(impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &json::Value) -> Result<Self, DeError> {
                match v {
                    json::Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        "expected number for `{}`, found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        })*
    };
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("one char"))
            }
            other => Err(DeError(format!(
                "expected one-char string, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {other:?}"))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of {N}, found {got} items")))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError(format!("expected 2-array, found {other:?}"))),
        }
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        match v {
            json::Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError(format!("expected 3-array, found {other:?}"))),
        }
    }
}

// A raw `json::Value` deserializes as itself, so callers can parse JSON of
// unknown shape (`serde_json::from_str::<serde::json::Value>`) and walk the
// tree — the shim's stand-in for real serde_json's self-describing `Value`.
impl<'de> Deserialize<'de> for json::Value {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// `Duration` round-trips as `{secs, nanos}`, matching real serde's encoding.
impl Serialize for std::time::Duration {
    fn to_value(&self) -> json::Value {
        json::Value::Object(vec![
            (
                "secs".to_string(),
                json::Value::Number(self.as_secs() as f64),
            ),
            (
                "nanos".to_string(),
                json::Value::Number(self.subsec_nanos() as f64),
            ),
        ])
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn from_value(v: &json::Value) -> Result<Self, DeError> {
        let entries = match v {
            json::Value::Object(entries) => entries,
            other => {
                return Err(DeError(format!(
                    "expected {{secs, nanos}} object for Duration, found {other:?}"
                )))
            }
        };
        let field = |name: &str| -> Result<f64, DeError> {
            entries
                .iter()
                .find(|(k, _)| k.as_str() == name)
                .and_then(|(_, v)| match v {
                    json::Value::Number(n) => Some(*n),
                    _ => None,
                })
                .ok_or_else(|| DeError(format!("Duration is missing numeric `{name}`")))
        };
        Ok(std::time::Duration::new(
            field("secs")? as u64,
            field("nanos")? as u32,
        ))
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Number(*self as f64)
            }
        })*
    };
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> json::Value {
        json::Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;

    #[derive(Serialize)]
    struct Named {
        a: usize,
        b: Vec<(usize, usize)>,
        c: Option<String>,
    }

    #[derive(Serialize)]
    enum Mixed {
        Unit,
        One(usize),
        Pair { x: f64, y: f64 },
    }

    #[test]
    fn derived_struct_serializes_to_object() {
        let v = Named {
            a: 3,
            b: vec![(1, 2)],
            c: None,
        }
        .to_value();
        assert_eq!(v.render(), "{\"a\":3,\"b\":[[1,2]],\"c\":null}");
    }

    #[test]
    fn derived_enum_is_externally_tagged() {
        assert_eq!(Mixed::Unit.to_value().render(), "\"Unit\"");
        assert_eq!(Mixed::One(7).to_value().render(), "{\"One\":7}");
        assert_eq!(
            Mixed::Pair { x: 1.5, y: -2.0 }.to_value().render(),
            "{\"Pair\":{\"x\":1.5,\"y\":-2}}"
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Value::String("a\"b\\c\n".to_string()).render(),
            "\"a\\\"b\\\\c\\n\""
        );
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Value::Number(f64::NAN).render(), "null");
        assert_eq!(Value::Number(f64::INFINITY).render(), "null");
    }
}
