//! Offline shim for `rand_distr`: just the `Normal` distribution (the only
//! one the workspace uses), sampled with the Box–Muller transform.

use rand::RngCore;
use std::fmt;

/// Distributions sampling values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 is kept strictly positive so ln() stays finite.
        let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_match() {
        let n = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..40_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn zero_sigma_is_constant() {
        let n = Normal::new(5.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 5.0);
        }
    }
}
