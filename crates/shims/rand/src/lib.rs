//! Offline shim for `rand` (0.8-style API).
//!
//! Provides the exact surface the workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over
//! half-open ranges, and `seq::SliceRandom::choose_multiple`.  The generator
//! is SplitMix64 — statistically solid for simulation workloads and fully
//! deterministic per seed (which the workspace's tests rely on).

use std::ops::Range;

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[lo, hi)`.  `lo >= hi` panics, matching rand.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for the span
                // sizes used in this workspace.
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        })*
    };
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + (hi - lo) * rng.next_f64() as f32
    }
}

/// Types with a "standard" distribution for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value (unit interval for floats, full range for ints).
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64: one 64-bit state word, passes BigCrush when used as here
    /// (full 64-bit outputs), and cheap enough to seed per call site.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Chooses `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;

        /// Chooses one element uniformly, or `None` for an empty slice.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let n = self.len();
            let amount = amount.min(n);
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (n - i);
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            let n = self.len();
            for i in (1..n).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let data: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let picked: Vec<usize> = data.choose_multiple(&mut rng, 4).cloned().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
    }

    #[test]
    fn choose_multiple_clamps_to_len() {
        let data = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(data.choose_multiple(&mut rng, 10).count(), 3);
    }
}
