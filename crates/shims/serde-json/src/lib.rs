//! Offline shim for `serde_json`: JSON text output over the `serde` shim's
//! value tree.  Only `to_string` is provided — nothing in the workspace
//! parses JSON.

use std::fmt;

/// Error type mirroring `serde_json::Error`'s role in signatures.  The shim
/// serializer is total, so this is never actually produced.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_vec_of_floats() {
        assert_eq!(super::to_string(&vec![1.0f64, 2.5]).unwrap(), "[1,2.5]");
    }
}
