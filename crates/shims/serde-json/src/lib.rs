//! Offline shim for `serde_json`: JSON text in and out over the `serde`
//! shim's value tree.  [`to_string`] renders a [`serde::Serialize`] value;
//! [`from_str`] parses JSON text and reconstructs a [`serde::Deserialize`]
//! value, which is what lets runtime configs round-trip through scenario
//! files.

use serde::json::Value;
use std::fmt;

/// Error type mirroring `serde_json::Error`: a parse or reconstruction
/// failure with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render())
}

/// Converts `value` into the shim's JSON value tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from the shim's JSON value tree.
pub fn from_value<T: for<'de> serde::Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(|e| Error(e.0))
}

/// Parses JSON text into a `T`.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    from_value(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("expected `{word}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: an escaped low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                self.pos += 1; // past `\`; hex4 takes the `u`
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("bad low surrogate".into()));
                                }
                                char::from_u32(0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00))
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error(format!("bad \\u escape {code:#x}")))?);
                            continue; // hex4 already advanced past the digits
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Consumes the `u` and 4 hex digits of a `\u` escape (cursor on the
    /// `u`), returning the code unit.
    fn hex4(&mut self) -> Result<u32, Error> {
        self.pos += 1; // past `u`
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_vec_of_floats() {
        assert_eq!(super::to_string(&vec![1.0f64, 2.5]).unwrap(), "[1,2.5]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<String>("\"\\ud83e\\udd80\"").unwrap(), "🦀");
    }

    #[test]
    fn parses_nested_containers() {
        let v: Vec<(usize, f64)> = from_str("[[1, 2.5], [3, -4e1]]").unwrap();
        assert_eq!(v, vec![(1, 2.5), (3, -40.0)]);
    }

    #[test]
    fn round_trips_derived_struct() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Cfg {
            window: usize,
            label: String,
            scale: Option<f64>,
        }
        let cfg = Cfg {
            window: 4,
            label: "a \"quoted\" name".to_string(),
            scale: None,
        };
        let text = to_string(&cfg).unwrap();
        assert_eq!(from_str::<Cfg>(&text).unwrap(), cfg);
    }

    #[test]
    fn round_trips_derived_enum() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        enum Kind {
            Unit,
            One(f64),
            Pair { x: f64, y: f64 },
        }
        for k in [Kind::Unit, Kind::One(2.5), Kind::Pair { x: 1.0, y: -2.0 }] {
            let text = to_string(&k).unwrap();
            assert_eq!(from_str::<Kind>(&text).unwrap(), k);
        }
    }

    #[test]
    fn round_trips_duration() {
        let d = std::time::Duration::from_millis(1234);
        let text = to_string(&d).unwrap();
        assert_eq!(text, "{\"secs\":1,\"nanos\":234000000}");
        assert_eq!(from_str::<std::time::Duration>(&text).unwrap(), d);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("maybe").is_err());
    }

    #[test]
    fn rejects_lossy_integer_conversions() {
        // A bare cast would silently truncate / saturate these.
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<usize>("2.7").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<i8>("-200").is_err());
        assert_eq!(from_str::<f64>("2.7").unwrap(), 2.7);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
    }
}
