//! Offline shim for `criterion`.
//!
//! Implements the benchmarking API surface the workspace's `benches/` use —
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer: each benchmark body runs `sample_size` times and the
//! mean/min are printed.  No statistics, plots or comparisons; the point is
//! that `cargo bench` runs and reports real numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: format!("{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running it `sample_size` times (after one warm-up call).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.elapsed.push(t0.elapsed());
        }
    }
}

fn report(label: &str, elapsed: &[Duration]) {
    if elapsed.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = elapsed.iter().sum();
    let mean = total / elapsed.len() as u32;
    let min = elapsed.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        elapsed.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.elapsed);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.elapsed);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, like real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. `--bench`); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut calls = 0usize;
        group.sample_size(3);
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // One warm-up + three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("conv", 64).id, "conv/64");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }
}
