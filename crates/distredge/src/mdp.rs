//! The layer-volume splitting problem as a Markov Decision Process
//! (paper §IV-C1).
//!
//! * **State** `s_l = (T_{l-1}, H_l, C_l, F_l, S_l)` — the accumulated
//!   latencies of all service providers after the previous layer-volume,
//!   plus the configuration (height, depth, filter, stride) of the current
//!   volume's last layer (Eq. 7).
//! * **Action** `a_l = (x_1, …, x_{|D|-1})` — cut points on the height of
//!   the volume's last layer (Eq. 6), produced by mapping the sorted raw
//!   actor output from `[-1, 1]` onto `[0, H_l]` (Eq. 9).
//! * **Reward** — zero for intermediate volumes, `1/T` at the end of the
//!   episode where `T` is the end-to-end execution latency (Eq. 8).
//!
//! The accumulated latencies come from the same stepper the simulator uses,
//! driven by either profiled predictions (training "estimated by the
//! profiling results") or the ground truth (training "directly measured with
//! real execution").

use crate::Result;
use cnn_model::{LayerVolume, Model, PartitionScheme, VolumeSplit};
use edgesim::{
    advance_volume, finish_image, Cluster, ClusterState, DataLocation, ExecutionPlan, PartCompute,
    VolumeAssignment,
};
use serde::{Deserialize, Serialize};

/// Scale (ms) used to normalise accumulated latencies in the observation.
const LATENCY_SCALE_MS: f64 = 100.0;

/// One step outcome of the environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// Observation after the step (state `s_{l+1}`).
    pub next_state: Vec<f64>,
    /// Reward `r_l`.
    pub reward: f64,
    /// Whether the episode ended (all volumes split).
    pub done: bool,
}

/// The OSDS training / decision environment.
pub struct SplitEnv<'a> {
    model: &'a Model,
    cluster: &'a Cluster,
    compute: &'a dyn PartCompute,
    volumes: Vec<LayerVolume>,
    head_needed: bool,
    // Per-episode runtime state.
    state: ClusterState,
    location: DataLocation,
    current: usize,
    splits: Vec<VolumeSplit>,
    last_latency_ms: Option<f64>,
}

impl<'a> SplitEnv<'a> {
    /// Creates an environment for one (model, cluster, partition scheme)
    /// triple, with latency feedback from `compute`.
    pub fn new(
        model: &'a Model,
        cluster: &'a Cluster,
        compute: &'a dyn PartCompute,
        scheme: &PartitionScheme,
    ) -> Self {
        let volumes = scheme.volumes();
        let n = cluster.len();
        Self {
            model,
            cluster,
            compute,
            volumes,
            head_needed: !model.head_layers().is_empty(),
            state: ClusterState::new(0.0, n),
            location: DataLocation::Requester,
            current: 0,
            splits: Vec::new(),
            last_latency_ms: None,
        }
    }

    /// Number of service providers.
    pub fn num_devices(&self) -> usize {
        self.cluster.len()
    }

    /// Dimensionality of the observation vector.
    pub fn state_dim(&self) -> usize {
        self.num_devices() + 4
    }

    /// Dimensionality of the (raw) action vector.
    pub fn action_dim(&self) -> usize {
        self.num_devices().saturating_sub(1)
    }

    /// Number of layer-volumes (= episode length).
    pub fn num_volumes(&self) -> usize {
        self.volumes.len()
    }

    /// Resets the episode and returns the initial observation `s_1`.
    pub fn reset(&mut self) -> Vec<f64> {
        self.state = ClusterState::new(0.0, self.num_devices());
        self.location = DataLocation::Requester;
        self.current = 0;
        self.splits.clear();
        self.last_latency_ms = None;
        self.observe()
    }

    /// The current observation.
    pub fn observe(&self) -> Vec<f64> {
        let mut s = Vec::with_capacity(self.state_dim());
        for t in self.state.accumulated_latencies() {
            s.push(t / LATENCY_SCALE_MS);
        }
        let volume = self.volumes[self.current.min(self.volumes.len() - 1)];
        let last = &self.model.layers()[volume.end - 1];
        s.push(last.output.h as f64 / 100.0);
        s.push(last.output.c as f64 / 1000.0);
        s.push(last.filter() as f64 / 10.0);
        s.push(last.stride() as f64 / 4.0);
        s
    }

    /// Maps a raw actor output in `[-1, 1]^(|D|-1)` to a vertical split of a
    /// volume whose last layer has height `h` (Eq. 9: sort, then scale).
    pub fn map_action(raw: &[f64], h: usize) -> VolumeSplit {
        let mut sorted = raw.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite actions"));
        let cuts = sorted
            .iter()
            .map(|&a| {
                let clamped = a.clamp(-1.0, 1.0);
                ((clamped + 1.0) / 2.0 * h as f64).round() as usize
            })
            .collect();
        VolumeSplit::new(cuts, h)
    }

    /// Applies the (raw) action for the current layer-volume and advances the
    /// episode.
    pub fn step(&mut self, raw_action: &[f64]) -> Result<StepOutcome> {
        assert!(
            self.current < self.volumes.len(),
            "step() called on a finished episode; call reset()"
        );
        let volume = self.volumes[self.current];
        let h = volume.last_output_height(self.model);
        let split = Self::map_action(raw_action, h);
        let parts = cnn_model::PartPlan::plan_all(self.model, volume, &split)?;
        let assignment = VolumeAssignment { parts };
        advance_volume(
            self.model,
            self.cluster,
            self.compute,
            &assignment,
            &mut self.location,
            &mut self.state,
        );
        self.splits.push(split);
        self.current += 1;

        let done = self.current == self.volumes.len();
        let reward = if done {
            let head_device = if self.head_needed {
                assignment
                    .parts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, p)| p.output_rows.1 - p.output_rows.0)
                    .map(|(i, _)| i)
            } else {
                None
            };
            let fin = finish_image(
                self.model,
                self.cluster,
                self.compute,
                &assignment,
                &self.state,
                head_device,
            );
            let total_ms = fin.finish_ms - self.state.image_start_ms;
            self.last_latency_ms = Some(total_ms);
            // Eq. 8 rewards 1/T; expressing T in seconds gives a reward on
            // the same scale as IPS, which keeps critic targets well-scaled.
            1e3 / total_ms.max(1e-3)
        } else {
            0.0
        };
        Ok(StepOutcome {
            next_state: self.observe(),
            reward,
            done,
        })
    }

    /// The split decisions taken so far in this episode.
    pub fn splits(&self) -> &[VolumeSplit] {
        &self.splits
    }

    /// End-to-end latency of the completed episode (ms), if finished.
    pub fn episode_latency_ms(&self) -> Option<f64> {
        self.last_latency_ms
    }

    /// Evaluates a full set of split decisions (one per volume) without
    /// touching the episode state; used to score baseline or stored
    /// strategies with the same latency oracle the agent trains against.
    pub fn evaluate_splits(&self, splits: &[VolumeSplit]) -> Result<f64> {
        let scheme = PartitionScheme::new(
            self.model,
            self.volumes
                .iter()
                .map(|v| v.start)
                .chain(std::iter::once(self.model.distributable_len()))
                .collect(),
        )?;
        let plan = ExecutionPlan::from_splits(self.model, &scheme, splits, self.num_devices())?;
        let report = edgesim::simulate(
            self.model,
            self.cluster,
            self.compute,
            &plan,
            edgesim::SimOptions {
                num_images: 1,
                start_ms: 0.0,
            },
        );
        Ok(report.mean_latency_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnn_model::LayerOp;
    use device_profile::{DeviceSpec, DeviceType};
    use netsim::LinkConfig;
    use tensor::Shape;

    fn model() -> Model {
        Model::new(
            "t",
            Shape::new(3, 64, 64),
            &[
                LayerOp::conv(16, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::conv(32, 3, 1, 1),
                LayerOp::pool(2, 2),
                LayerOp::fc(10),
            ],
        )
        .unwrap()
    }

    fn cluster() -> Cluster {
        Cluster::uniform(
            vec![
                DeviceSpec::new("xavier", DeviceType::Xavier),
                DeviceSpec::new("nano", DeviceType::Nano),
            ],
            LinkConfig::constant(100.0),
        )
    }

    #[test]
    fn dimensions() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::new(&m, vec![0, 2, 4]).unwrap();
        let env = SplitEnv::new(&m, &c, &compute, &scheme);
        assert_eq!(env.state_dim(), 6);
        assert_eq!(env.action_dim(), 1);
        assert_eq!(env.num_volumes(), 2);
    }

    #[test]
    fn action_mapping_is_sorted_and_bounded() {
        let split = SplitEnv::map_action(&[0.9, -0.9, 0.0], 100);
        assert_eq!(split.cuts(), &[5, 50, 95]);
        let extreme = SplitEnv::map_action(&[-5.0, 5.0], 64);
        assert_eq!(extreme.cuts(), &[0, 64]);
    }

    #[test]
    fn episode_walks_all_volumes_and_rewards_at_end() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::new(&m, vec![0, 2, 4]).unwrap();
        let mut env = SplitEnv::new(&m, &c, &compute, &scheme);
        let s0 = env.reset();
        assert_eq!(s0.len(), env.state_dim());
        assert!(
            s0[..2].iter().all(|&v| v == 0.0),
            "no latency accumulated yet"
        );

        let r1 = env.step(&[0.0]).unwrap();
        assert!(!r1.done);
        assert_eq!(r1.reward, 0.0);
        assert!(
            r1.next_state[..2].iter().any(|&v| v > 0.0),
            "latencies accumulated"
        );

        let r2 = env.step(&[0.2]).unwrap();
        assert!(r2.done);
        assert!(r2.reward > 0.0);
        assert!(env.episode_latency_ms().unwrap() > 0.0);
        assert_eq!(env.splits().len(), 2);
    }

    #[test]
    fn reward_is_inverse_latency() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::single_volume(&m);
        let mut env = SplitEnv::new(&m, &c, &compute, &scheme);
        env.reset();
        let out = env.step(&[0.0]).unwrap();
        let t = env.episode_latency_ms().unwrap();
        assert!((out.reward - 1e3 / t).abs() < 1e-9);
    }

    #[test]
    fn better_split_earns_higher_reward() {
        // Giving (almost) everything to the fast Xavier beats giving
        // everything to the slow Nano.
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::single_volume(&m);

        let mut env = SplitEnv::new(&m, &c, &compute, &scheme);
        env.reset();
        // Cut near +1 => device 0 (Xavier) gets nearly all rows.
        let fast = env.step(&[0.95]).unwrap().reward;

        env.reset();
        // Cut near -1 => device 1 (Nano) gets nearly all rows.
        let slow = env.step(&[-0.95]).unwrap().reward;
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn reset_clears_episode() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::single_volume(&m);
        let mut env = SplitEnv::new(&m, &c, &compute, &scheme);
        env.reset();
        let _ = env.step(&[0.0]).unwrap();
        assert_eq!(env.splits().len(), 1);
        env.reset();
        assert_eq!(env.splits().len(), 0);
        assert!(env.episode_latency_ms().is_none());
    }

    #[test]
    fn evaluate_splits_matches_episode_latency() {
        let m = model();
        let c = cluster();
        let compute = c.ground_truth_compute();
        let scheme = PartitionScheme::new(&m, vec![0, 2, 4]).unwrap();
        let mut env = SplitEnv::new(&m, &c, &compute, &scheme);
        env.reset();
        env.step(&[0.3]).unwrap();
        env.step(&[0.3]).unwrap();
        let episode = env.episode_latency_ms().unwrap();
        let evaluated = env.evaluate_splits(env.splits()).unwrap();
        assert!(
            (episode - evaluated).abs() / episode < 0.05,
            "episode {episode} vs evaluated {evaluated}"
        );
    }
}
